"""Reporting helper shared by every benchmark.

The paper contains no numeric tables (its figures are architecture
diagrams), so each benchmark both *prints* the quantitative rows it
reproduces and *writes* them to ``benchmarks/results/<exp_id>.txt`` so
the output survives pytest's capture.  EXPERIMENTS.md summarizes these
files against the paper's qualitative claims.

Benchmarks that produce structured numbers additionally persist them
via :func:`report_json` as ``benchmarks/results/BENCH_<id>.json`` —
stable-key, machine-readable files that downstream tooling (dashboards,
regression diffing) can consume without parsing the text tables.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def report(exp_id: str, title: str, lines: list[str]) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    header = f"=== {exp_id}: {title} ==="
    body = "\n".join([header, *lines, ""])
    print("\n" + body)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(body)


def report_json(exp_id: str, payload: dict) -> Path:
    """Persist a machine-readable result block.

    Writes ``benchmarks/results/BENCH_<exp_id>.json`` with sorted keys
    and a trailing newline, so reruns with identical numbers produce
    byte-identical files (diff-friendly in review).  Returns the path.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{exp_id}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def fmt_row(*cells: object, widths: tuple[int, ...] | None = None) -> str:
    """Fixed-width row formatting for result tables."""
    if widths is None:
        widths = tuple(18 for _ in cells)
    parts = []
    for cell, width in zip(cells, widths):
        if isinstance(cell, float):
            parts.append(f"{cell:>{width}.4f}")
        else:
            parts.append(f"{str(cell):>{width}}")
    return "  ".join(parts)
