"""Reporting helper shared by every benchmark.

The paper contains no numeric tables (its figures are architecture
diagrams), so each benchmark both *prints* the quantitative rows it
reproduces and *writes* them to ``benchmarks/results/<exp_id>.txt`` so
the output survives pytest's capture.  EXPERIMENTS.md summarizes these
files against the paper's qualitative claims.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def report(exp_id: str, title: str, lines: list[str]) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    header = f"=== {exp_id}: {title} ==="
    body = "\n".join([header, *lines, ""])
    print("\n" + body)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(body)


def fmt_row(*cells: object, widths: tuple[int, ...] | None = None) -> str:
    """Fixed-width row formatting for result tables."""
    if widths is None:
        widths = tuple(18 for _ in cells)
    parts = []
    for cell, width in zip(cells, widths):
        if isinstance(cell, float):
            parts.append(f"{cell:>{width}.4f}")
        else:
            parts.append(f"{str(cell):>{width}}")
    return "  ".join(parts)
