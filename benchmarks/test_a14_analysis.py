"""A14 — incremental analysis: cold vs warm vs one-file edit.

The analysis tentpole claims the content-hash cache makes the
whole-program pass cheap enough to run on every edit.  Three timed
configurations over a pristine copy of ``src/repro`` (plus the
observability doc RA005 audits against):

1. **cold** — empty cache: parse every file, build the call graph, run
   all eleven rules, persist the cache document;
2. **warm** — nothing changed: the report must rehydrate with *zero*
   files analyzed, byte-identical to the cold text/JSON output, at
   least 5x faster (in practice two orders of magnitude);
3. **incremental** — one leaf file edited: only the file and its
   transitive dependents re-analyze; the cache hit count stays high.

Results land in ``benchmarks/results/BENCH_A14.json``.
"""

import shutil
import time
from pathlib import Path

from benchmarks._report import fmt_row, report, report_json
from repro.analysis import Analyzer, default_rules
from repro.analysis.cache import AnalysisCache

REPO = Path(__file__).resolve().parent.parent

#: Warm replay must beat a full pass by at least this factor; CI
#: asserts the same floor on the real tree.
SPEEDUP_FLOOR = 5.0

#: A leaf module whose edit should dirty only a small dependent set.
EDIT_TARGET = "src/repro/util/rng.py"


def _copy_tree(tmp_path: Path) -> Path:
    root = tmp_path / "repo"
    shutil.copytree(REPO / "src" / "repro", root / "src" / "repro")
    (root / "docs").mkdir()
    shutil.copy(REPO / "docs" / "observability.md",
                root / "docs" / "observability.md")
    return root


def _timed_run(analyzer: Analyzer, root: Path, cache: AnalysisCache):
    started = time.perf_counter()
    report_obj = analyzer.run([root / "src" / "repro"], root=root,
                              cache=cache)
    return report_obj, time.perf_counter() - started


def test_a14_incremental_analysis(tmp_path):
    root = _copy_tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    analyzer = Analyzer(default_rules(root=root))

    cold, cold_s = _timed_run(analyzer, root, cache)
    assert cold.ok(strict=True), cold.render_text()
    assert cold.stats["cache_hits"] == 0

    warm, warm_s = _timed_run(analyzer, root, cache)
    assert warm.stats["files_analyzed"] == 0
    assert warm.stats["cache_hits"] == cold.files_scanned
    assert warm.render_text() == cold.render_text()
    assert warm.to_json() == cold.to_json()
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm cache only {speedup:.1f}x faster ({warm_s:.3f}s vs "
        f"{cold_s:.3f}s cold)")

    target = root / EDIT_TARGET
    target.write_text(target.read_text(encoding="utf-8")
                      + "\n\nA14_TOUCH = 1\n", encoding="utf-8")
    incremental, incremental_s = _timed_run(analyzer, root, cache)
    reanalyzed = incremental.stats["files_analyzed"]
    assert incremental.ok(strict=True), incremental.render_text()
    assert 1 <= reanalyzed < cold.files_scanned
    assert incremental.stats["cache_hits"] == (
        cold.files_scanned - reanalyzed)

    rows = [
        fmt_row("configuration", "wall_s", "files_analyzed", "cache_hits"),
        fmt_row("cold", cold_s, cold.stats["files_analyzed"], 0),
        fmt_row("warm", warm_s, 0, warm.stats["cache_hits"]),
        fmt_row("edit 1 file", incremental_s, reanalyzed,
                incremental.stats["cache_hits"]),
        "",
        f"warm speedup: {speedup:.1f}x (floor {SPEEDUP_FLOOR}x); "
        f"reports byte-identical across all runs",
    ]
    report("A14", "incremental whole-program analysis", rows)
    report_json("A14", {
        "files": cold.files_scanned,
        "rules": len(cold.rules_run),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "incremental_s": round(incremental_s, 4),
        "warm_speedup_x": round(speedup, 1),
        "speedup_floor_x": SPEEDUP_FLOOR,
        "edit_target": EDIT_TARGET,
        "files_reanalyzed_after_edit": reanalyzed,
        "byte_identical_outputs": True,
    })
