"""A1 — redundant multi-service invocation and result combination (§2.1).

Paper claims reproduced:
* invoking several NLU services on the same document and assigning
  "a higher degree of confidence to entities ... identified by more
  services" yields precision/recall at least as good as any single
  provider, and strictly better recall than the weakest;
* the same comparison machinery measures how good each provider is
  (the paper's "comparing the output of these services").
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import RichClient, build_world
from repro.core.aggregation import MultiServiceCombiner

PROVIDERS = ("lexica-prime", "glotta", "wordsmith-lite")
DOCS = 50


@pytest.fixture(scope="module")
def analyses_with_gold():
    world = build_world(seed=61, corpus_size=DOCS)
    client = RichClient(world.registry)
    per_document = []
    for doc in world.corpus.documents:
        analyses = {
            provider: client.invoke(provider, "analyze", {"text": doc.text},
                                    use_cache=False).value
            for provider in PROVIDERS
        }
        per_document.append((doc, analyses))
    client.close()
    return per_document


def prf(found: set, gold: set) -> tuple[float, float, float]:
    true_positive = len(found & gold)
    precision = true_positive / len(found) if found else 1.0
    recall = true_positive / len(gold) if gold else 1.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return precision, recall, f1


def test_agreement_voting_vs_single_providers(analyses_with_gold):
    tallies = {provider: [0, 0, 0] for provider in PROVIDERS}  # tp, fp, fn
    combined_tally = [0, 0, 0]
    union_tally = [0, 0, 0]

    def add(tally, found, gold):
        tally[0] += len(found & gold)
        tally[1] += len(found - gold)
        tally[2] += len(gold - found)

    for doc, analyses in analyses_with_gold:
        gold = set(doc.gold_entities)
        for provider in PROVIDERS:
            found = {entity["id"] for entity in analyses[provider]["entities"]
                     if entity["disambiguated"]}
            add(tallies[provider], found, gold)
        combined = MultiServiceCombiner.combine_entities(analyses,
                                                         min_confidence=0.5)
        add(combined_tally, {entry["id"] for entry in combined}, gold)
        union = MultiServiceCombiner.combine_entities(analyses)
        add(union_tally, {entry["id"] for entry in union}, gold)

    def metrics(tally):
        tp, fp, fn = tally
        precision = tp / (tp + fp) if tp + fp else 1.0
        recall = tp / (tp + fn) if tp + fn else 1.0
        f1 = 2 * precision * recall / (precision + recall)
        return precision, recall, f1

    rows = [fmt_row("strategy", "precision", "recall", "F1")]
    measured = {}
    for provider in PROVIDERS:
        measured[provider] = metrics(tallies[provider])
        rows.append(fmt_row(provider, *measured[provider]))
    measured["majority (>=2 of 3)"] = metrics(combined_tally)
    measured["union (any provider)"] = metrics(union_tally)
    rows.append(fmt_row("majority (>=2 of 3)", *measured["majority (>=2 of 3)"]))
    rows.append(fmt_row("union (any provider)", *measured["union (any provider)"]))
    report("A1.voting", f"entity extraction over {DOCS} documents", rows)

    weakest_recall = measured["wordsmith-lite"][1]
    assert measured["union (any provider)"][1] > weakest_recall
    assert measured["union (any provider)"][1] >= measured["lexica-prime"][1]
    assert measured["majority (>=2 of 3)"][0] >= 0.99  # agreement is precise


def test_confidence_correlates_with_correctness(analyses_with_gold):
    """Entities found by more services are more likely to be real."""
    from collections import defaultdict

    buckets = defaultdict(lambda: [0, 0])  # confidence -> [correct, total]
    for doc, analyses in analyses_with_gold:
        gold = set(doc.gold_entities)
        for entry in MultiServiceCombiner.combine_entities(analyses):
            bucket = buckets[round(entry["confidence"], 2)]
            bucket[1] += 1
            bucket[0] += entry["id"] in gold
    rows = [fmt_row("confidence", "entities", "correct fraction")]
    fractions = {}
    for confidence in sorted(buckets):
        correct, total = buckets[confidence]
        fractions[confidence] = correct / total
        rows.append(fmt_row(confidence, total, correct / total))
    report("A1.confidence", "agreement confidence vs correctness", rows)
    assert fractions[max(fractions)] >= max(
        fractions[conf] for conf in fractions if conf < max(fractions))


def test_provider_comparison_report(analyses_with_gold):
    """The SDK as an evaluation harness: per-provider quality scores."""
    rows = [fmt_row("provider", "entity F1", "sentiment acc")]
    summary = {}
    for provider in PROVIDERS:
        f1_total = sentiment_total = sentiment_n = 0.0
        for doc, analyses in analyses_with_gold:
            score = MultiServiceCombiner.score_against_gold(
                analyses[provider], list(doc.gold_entities), doc.gold_sentiment)
            f1_total += score["f1"]
            if "sentiment_accuracy" in score:
                sentiment_total += score["sentiment_accuracy"]
                sentiment_n += 1
        summary[provider] = (f1_total / len(analyses_with_gold),
                             sentiment_total / max(sentiment_n, 1))
        rows.append(fmt_row(provider, *summary[provider]))
    report("A1.providers", "provider quality comparison vs gold", rows)
    assert summary["lexica-prime"][0] > summary["wordsmith-lite"][0]
    assert summary["lexica-prime"][1] > summary["wordsmith-lite"][1]


def test_bench_combination(benchmark, analyses_with_gold):
    """pytest-benchmark: combining three providers' entity lists."""
    _, analyses = analyses_with_gold[0]
    combined = benchmark(MultiServiceCombiner.combine_entities, analyses)
    assert combined
