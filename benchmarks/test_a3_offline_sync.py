"""A3 — disconnected operation, resynchronization, local spell check (§3).

Paper claims reproduced:
* the PKB keeps serving reads and accepting writes while offline
  (local storage + cache), and replays queued writes on reconnect;
* the local spell checker beats the remote service on latency (zero
  network time) and on money (the remote one charges per call);
* work done offline is never lost.
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import PersonalKnowledgeBase, RichClient, build_world
from repro.crypto.cipher import StreamCipher, derive_key
from repro.kb.secure import SecureRemoteStore
from repro.kb.spellcheck import LocalSpellChecker
from repro.kb.sync import OfflineSyncStore
from repro.simnet.connectivity import ScriptedConnectivity
from repro.util.errors import NotFoundError

# Online [0, 100), offline [100, 200), online again afterwards.
OUTAGE = ScriptedConnectivity([100.0, 200.0])


@pytest.fixture()
def env():
    world = build_world(seed=71, corpus_size=40, connectivity=OUTAGE)
    client = RichClient(world.registry)
    cipher = StreamCipher(derive_key("a3", iterations=500))
    sync = OfflineSyncStore(remote=SecureRemoteStore(
        client, "store-standard", cipher))
    yield world, client, sync
    client.close()


def test_connectivity_trace_replay(env):
    """Drive a write/read workload across the outage window."""
    world, client, sync = env
    timeline = []

    def snapshot(label):
        timeline.append(fmt_row(
            f"t={world.clock.now():7.1f}s", label,
            f"pending={sync.pending_count}", widths=(14, 40, 12)))

    sync.put("note-1", "written online")
    snapshot("put note-1 (online, pushed immediately)")

    world.clock.advance(110.0 - world.clock.now())  # into the outage
    sync.put("note-2", "written offline")
    sync.put("note-3", "also offline")
    snapshot("two puts while offline (queued)")
    assert sync.get("note-2") == "written offline"  # local read works
    snapshot("offline read of note-2 served locally")
    assert sync.sync() == 0  # still offline: nothing replays
    snapshot("sync attempt while offline: nothing applied")

    world.clock.advance(210.0 - world.clock.now())  # reconnected
    applied = sync.sync()
    snapshot(f"reconnected: sync replayed {applied} writes")

    report("A3.trace", "offline/online write-read-sync trace", [
        fmt_row("time", "event", "queue", widths=(14, 40, 12)),
        *timeline,
    ])
    assert applied == 2
    assert sync.pending_count == 0
    assert sync.remote.get("note-2") == "written offline"


def test_nothing_lost_across_outage(env):
    world, client, sync = env
    kb = PersonalKnowledgeBase(client=client, remote=sync)
    kb.add_fact("journal", "repro:entry", "pre-outage", disambiguate=False)
    kb.backup_remote("kb")
    world.clock.advance(150.0 - world.clock.now())  # offline
    kb.add_fact("journal", "repro:entry", "mid-outage", disambiguate=False)
    kb.backup_remote("kb")  # queued
    world.clock.advance(250.0 - world.clock.now())  # back online
    sync.sync()
    replica = PersonalKnowledgeBase(client=client, remote=sync)
    replica.restore_remote("kb")
    facts = {t.object for t in replica.graph.match("journal", "repro:entry", None)}
    report("A3.durability", "facts recorded across the outage", [
        fmt_row("facts in replica", len(facts)),
        "mid-outage work survived the disconnection",
    ])
    assert facts == {"pre-outage", "mid-outage"}


def test_local_vs_remote_spellcheck(env):
    """'The spell checker included with the knowledge base is generally
    faster as it avoids the overheads of remote communication.  Some
    online spell checkers also cost money.'"""
    world, client, sync = env
    local = LocalSpellChecker.from_texts(
        (doc.text for doc in world.corpus.documents), world.gazetteer)
    words = ["excellnt", "anounced", "reslts", "compani", "markt",
             "investr", "groth", "declin", "scandl", "recal"]

    start = world.clock.now()
    local_fixes = [local.correct_word(word) for word in words]
    local_time = world.clock.now() - start

    start = world.clock.now()
    cost_before = client.quota.total_cost()
    remote_fixes = []
    for word in words:
        value = client.invoke("orthografix", "suggest", {"word": word},
                              use_cache=False).value
        remote_fixes.append(value["suggestions"][0] if value["suggestions"]
                            else word)
    remote_time = world.clock.now() - start
    remote_cost = client.quota.total_cost() - cost_before

    agreement = sum(1 for a, b in zip(local_fixes, remote_fixes) if a == b)
    report("A3.spellcheck", f"local vs remote spell check ({len(words)} words)", [
        fmt_row("checker", "sim time (s)", "cost ($)", "agreement"),
        fmt_row("local (PKB)", local_time, 0.0, f"{agreement}/{len(words)}"),
        fmt_row("remote service", remote_time, remote_cost, "-"),
    ])
    assert local_time == 0.0
    assert remote_time > 0.0
    assert remote_cost > 0.0
    assert agreement >= len(words) - 1  # same algorithm, same dictionary


def test_remote_spellcheck_dies_offline_local_does_not(env):
    world, client, sync = env
    world.clock.advance(150.0 - world.clock.now())  # offline window
    local = LocalSpellChecker.from_texts(
        (doc.text for doc in world.corpus.documents), world.gazetteer)
    assert local.correct_word("excellnt") == "excellent"
    from repro.simnet.errors import ConnectivityError

    with pytest.raises(ConnectivityError):
        client.invoke("orthografix", "suggest", {"word": "excellnt"},
                      use_cache=False)


def test_bench_local_spellcheck(benchmark, env):
    world, client, sync = env
    local = LocalSpellChecker.from_texts(
        (doc.text for doc in world.corpus.documents), world.gazetteer)
    assert benchmark(local.correct_word, "excellnt") == "excellent"
