"""F2.async — synchronous vs asynchronous invocation (Figure 2; §2, §2.1).

Paper claims reproduced:
* asynchronous calls let the application keep executing while a remote
  operation is in flight (callbacks via ListenableFuture);
* parallel invocation of several services takes ~max instead of ~sum
  of their latencies;
* thread pools are bounded, so a burst of calls cannot spawn unbounded
  threads (§2.1's corner-case concern).

These benches run on a scaled real-time clock (RealClock) because
genuinely concurrent calls need real threads; latencies are still
reported in simulated seconds.
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import RichClient, build_world
from repro.core.futures import CallbackExecutor
from repro.util.clock import RealClock

# 1 simulated second = 250 real ms.  The scale is chosen so the scaled
# sleeps (simulated network/service latency) dominate the real CPU time
# of the NLU analysis itself, which the GIL serializes regardless.
TIME_SCALE = 0.25
CALLS = 8


@pytest.fixture()
def rt_world():
    return build_world(seed=17, corpus_size=40,
                       clock=RealClock(time_scale=TIME_SCALE))


def test_parallel_vs_sequential_wall_clock(rt_world):
    client = RichClient(rt_world.registry,
                        executor=CallbackExecutor(max_workers=CALLS))
    texts = [doc.text for doc in rt_world.corpus.documents[:CALLS]]
    calls = [("lexica-prime", "analyze", {"text": text}) for text in texts]

    start = client.clock.now()
    for service, operation, payload in calls:
        client.invoke(service, operation, payload, use_cache=False)
    sequential = client.clock.now() - start

    start = client.clock.now()
    results = client.invoke_all(calls, use_cache=False)
    parallel = client.clock.now() - start

    per_call = [result.latency for result in results]
    report("F2.async.parallel", f"{CALLS} NLU calls: sequential vs parallel", [
        fmt_row("mode", "elapsed (sim s)"),
        fmt_row("sequential sync", sequential),
        fmt_row("parallel (thread pool)", parallel),
        fmt_row("sum of latencies", sum(per_call)),
        fmt_row("max of latencies", max(per_call)),
        f"speedup: {sequential / parallel:.1f}x",
    ])
    assert all(not isinstance(result, Exception) for result in results)
    assert parallel < sequential / 2  # ~max, not ~sum
    client.close()


def test_async_call_does_not_block_application(rt_world):
    """The paper's store-to-cloud-database example: fire the put, keep
    computing, get notified by the callback."""
    client = RichClient(rt_world.registry)
    notifications = []
    future = client.invoke_async(
        "store-bulk", "put", {"key": "report", "value": "x" * 50_000})
    future.add_listener(
        lambda completed: notifications.append(completed.get().service))
    # The application continues immediately; the store call needs
    # ~0.3 simulated seconds, so nothing has completed yet.
    assert not future.is_done() or notifications  # either still running or done
    progress = sum(range(10_000))  # foreground work proceeds
    assert progress > 0
    result = future.get(timeout=30)
    assert result.value["stored"] == "report"
    assert notifications == ["store-bulk"]
    report("F2.async.callback", "async store with completion callback", [
        fmt_row("store latency (sim s)", result.latency),
        "application continued executing while the store was in flight",
        "callback fired exactly once on completion",
    ])
    client.close()


def test_bounded_pool_absorbs_bursts(rt_world):
    """60 calls through a 4-worker pool: all complete, none dropped."""
    client = RichClient(rt_world.registry,
                        executor=CallbackExecutor(max_workers=4))
    text = rt_world.corpus.documents[0].text
    futures = [
        client.invoke_async("wordsmith-lite", "analyze",
                            {"text": f"{text} variant {index}"}, use_cache=False)
        for index in range(60)
    ]
    results = [future.get(timeout=60) for future in futures]
    assert len(results) == 60
    report("F2.async.bounded", "60-call burst through a 4-worker pool", [
        fmt_row("submitted", 60),
        fmt_row("completed", len(results)),
        fmt_row("pool size", 4),
    ])
    client.close()


def test_bench_async_dispatch_overhead(benchmark, rt_world):
    """pytest-benchmark: submit + await one already-cached async call."""
    client = RichClient(rt_world.registry)
    text = rt_world.corpus.documents[0].text
    client.invoke("glotta", "analyze", {"text": text})

    def dispatch():
        return client.invoke_async("glotta", "analyze", {"text": text}).get(
            timeout=10)

    result = benchmark(dispatch)
    assert result.cached
    client.close()
