"""F2.cache — client-side caching (Figure 2; §2 caching claims).

Paper claims reproduced:
* a cache hit avoids the remote call entirely (latency → ~0, cost → 0);
* hit ratio grows with cache capacity under a skewed (Zipf) workload;
* TTLs bound staleness when the remote value changes (the §2
  consistency caveat).
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import RichClient, build_world
from repro.core.caching import ServiceCache
from repro.util.rng import SeededRng


@pytest.fixture(scope="module")
def cache_world():
    return build_world(seed=7, corpus_size=120)


def test_cache_hit_vs_remote_latency(cache_world):
    client = RichClient(cache_world.registry)
    texts = [doc.text for doc in cache_world.corpus.documents[:20]]
    cold_latencies = []
    warm_latencies = []
    cold_cost = warm_cost = 0.0
    for text in texts:
        first = client.invoke("lexica-prime", "analyze", {"text": text})
        second = client.invoke("lexica-prime", "analyze", {"text": text})
        cold_latencies.append(first.latency)
        warm_latencies.append(second.latency)
        cold_cost += first.cost
        warm_cost += second.cost
    mean_cold = sum(cold_latencies) / len(cold_latencies)
    mean_warm = sum(warm_latencies) / len(warm_latencies)
    report("F2.cache.hit", "cache hit vs remote call (20 documents)", [
        fmt_row("path", "mean latency (ms)", "total cost ($)"),
        fmt_row("remote (miss)", mean_cold * 1000, cold_cost),
        fmt_row("cache (hit)", mean_warm * 1000, warm_cost),
        "speedup: cache hits are "
        + ("infinitely" if mean_warm == 0 else f"{mean_cold / mean_warm:.0f}x")
        + " faster in simulated time (zero network round trip)",
    ])
    assert mean_warm == 0.0  # hits never touch the network
    assert warm_cost == 0.0
    client.close()


def test_hit_ratio_vs_capacity(cache_world):
    """Zipf request stream over 120 cached search queries."""
    queries = [f"{doc.title}" for doc in cache_world.corpus.documents]
    rows = [fmt_row("capacity", "hit ratio", "remote calls")]
    measured = {}
    for capacity in (4, 16, 64, 256):
        rng = SeededRng(99)  # identical request stream for every capacity
        client = RichClient(
            cache_world.registry,
            cache=ServiceCache(capacity=capacity),
        )
        remote_before = client.monitor.call_count("goggle")
        for _ in range(600):
            query = queries[rng.zipf_index(len(queries), exponent=1.1)]
            client.invoke("goggle", "search", {"query": query, "limit": 5})
        ratio = client.cache.stats.hit_ratio
        measured[capacity] = ratio
        rows.append(fmt_row(capacity, ratio,
                            client.monitor.call_count("goggle") - remote_before))
        client.close()
    report("F2.cache.capacity", "hit ratio vs cache capacity (Zipf workload)", rows)
    assert measured[16] > measured[4]
    assert measured[256] > measured[16]
    assert measured[256] > 0.8  # the whole working set fits


def test_ttl_bounds_staleness(cache_world):
    """A cached read can be obsolete after a remote update; the TTL
    bounds how long."""
    client = RichClient(
        cache_world.registry,
        cache=ServiceCache(capacity=64, ttl=10.0, clock=cache_world.clock),
    )
    # Another writer (bypassing this client's cache invalidation) updates
    # the value behind our back.
    other_writer = RichClient(cache_world.registry)

    client.invoke("store-standard", "put", {"key": "cfg", "value": "v1"})
    assert client.invoke("store-standard", "get", {"key": "cfg"}).value["value"] == "v1"
    other_writer.invoke("store-standard", "put", {"key": "cfg", "value": "v2"})

    stale = client.invoke("store-standard", "get", {"key": "cfg"})
    cache_world.clock.advance(11.0)  # beyond the TTL
    fresh = client.invoke("store-standard", "get", {"key": "cfg"})
    report("F2.cache.ttl", "TTL-bounded staleness after a concurrent update", [
        fmt_row("read", "cached", "value"),
        fmt_row("within TTL", str(stale.cached), stale.value["value"]),
        fmt_row("after TTL", str(fresh.cached), fresh.value["value"]),
    ])
    assert stale.cached and stale.value["value"] == "v1"   # the §2 caveat
    assert not fresh.cached and fresh.value["value"] == "v2"
    client.close()
    other_writer.close()


def test_bench_cache_lookup_overhead(benchmark, cache_world):
    """pytest-benchmark: the SDK-side cost of a cache hit."""
    client = RichClient(cache_world.registry)
    text = cache_world.corpus.documents[0].text
    client.invoke("glotta", "analyze", {"text": text})

    result = benchmark(client.invoke, "glotta", "analyze", {"text": text})
    assert result.cached
    client.close()
