"""A6 — speech recognition through the SDK (extension).

The paper names speech recognition among the cognitive services its
SDK manages.  Measured here:

* per-provider word error rate (WER) on a simulated noisy channel —
  the quality spread the ranking machinery consumes;
* ROVER-style multi-provider combination: voting transcripts from
  several ASR services beats the best single provider (§2.1's
  combine-the-outputs claim, for speech);
* noise sweep: the gap between providers widens as the channel
  degrades.
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import RichClient, build_world
from repro.services.speech import generate_utterances, rover_vote, word_error_rate

PROVIDERS = ("dictaphone-pro", "mumblecorder")


@pytest.fixture(scope="module")
def speech_env():
    world = build_world(seed=91, corpus_size=40)
    client = RichClient(world.registry)
    yield world, client
    client.close()


def transcribe_all(client, provider, utterances):
    hypotheses = []
    for utterance in utterances:
        words = client.invoke(provider, "transcribe",
                              {"signal": utterance.signal_words},
                              use_cache=False).value["words"]
        hypotheses.append(words)
    return hypotheses


def mean_wer(hypotheses, utterances):
    return sum(
        word_error_rate(hypothesis, utterance.gold_words)
        for hypothesis, utterance in zip(hypotheses, utterances)
    ) / len(utterances)


def test_provider_wer_and_rover(speech_env):
    world, client = speech_env
    utterances = generate_utterances(
        [doc.text for doc in world.corpus.documents[:25]],
        seed=3, char_error=0.10)
    raw_wer = mean_wer([u.signal_words for u in utterances], utterances)
    per_provider = {}
    all_hypotheses = {}
    for provider in PROVIDERS:
        hypotheses = transcribe_all(client, provider, utterances)
        all_hypotheses[provider] = hypotheses
        per_provider[provider] = mean_wer(hypotheses, utterances)
    voted = [
        rover_vote([all_hypotheses[provider][index] for provider in PROVIDERS])
        for index in range(len(utterances))
    ]
    rover_wer = mean_wer(voted, utterances)

    rows = [fmt_row("transcriber", "mean WER")]
    rows.append(fmt_row("raw signal (no ASR)", raw_wer))
    for provider in PROVIDERS:
        rows.append(fmt_row(provider, per_provider[provider]))
    rows.append(fmt_row("ROVER vote (both)", rover_wer))
    report("A6.wer", "word error rate, 25 utterances at 10% char noise", rows)

    assert per_provider["dictaphone-pro"] < per_provider["mumblecorder"]
    assert per_provider["dictaphone-pro"] < raw_wer
    assert rover_wer <= per_provider["dictaphone-pro"] + 0.01


def test_noise_sweep(speech_env):
    world, client = speech_env
    texts = [doc.text for doc in world.corpus.documents[25:40]]
    rows = [fmt_row("char noise", "raw WER", "premium WER", "budget WER")]
    premium_curve = []
    for noise in (0.05, 0.10, 0.20):
        utterances = generate_utterances(texts, seed=5, char_error=noise)
        raw = mean_wer([u.signal_words for u in utterances], utterances)
        premium = mean_wer(
            transcribe_all(client, "dictaphone-pro", utterances), utterances)
        budget = mean_wer(
            transcribe_all(client, "mumblecorder", utterances), utterances)
        premium_curve.append(premium)
        rows.append(fmt_row(f"{noise:.0%}", raw, premium, budget))
        assert premium < raw       # decoding always helps
        assert premium < budget    # the quality gap persists at every level
    report("A6.noise", "WER vs channel noise", rows)
    # Harder channels are harder for everyone: WER rises with noise.
    assert premium_curve == sorted(premium_curve)


def test_speech_ranked_like_any_service(speech_env):
    """ASR providers enter the same monitoring/ranking machinery."""
    from repro.core.ranking import Weights

    world, client = speech_env
    utterances = generate_utterances(
        [doc.text for doc in world.corpus.documents[:8]], seed=7)
    for provider in PROVIDERS:
        for utterance in utterances:
            response = client.invoke(provider, "transcribe",
                                     {"signal": utterance.signal_words},
                                     use_cache=False)
            wer = word_error_rate(response.value["words"], utterance.gold_words)
            client.monitor.rate_quality(provider, 1.0 - wer)
    quality_first = client.rank_services(
        "speech", weights=Weights(response_time=0, cost=0, quality=1))
    speed_first = client.rank_services(
        "speech", weights=Weights(response_time=1, cost=0, quality=0))
    report("A6.ranking", "ASR ranking under different weights", [
        fmt_row("weights", "best"),
        fmt_row("quality-dominant", quality_first[0][0]),
        fmt_row("latency-dominant", speed_first[0][0]),
    ])
    assert quality_first[0][0] == "dictaphone-pro"
    assert speed_first[0][0] == "mumblecorder"


def test_bench_transcription(benchmark, speech_env):
    world, client = speech_env
    utterance = generate_utterances(
        [world.corpus.documents[0].text], seed=9)[0]
    result = benchmark(
        client.invoke, "mumblecorder", "transcribe",
        {"signal": utterance.signal_words}, use_cache=False)
    assert result.value["words"]
