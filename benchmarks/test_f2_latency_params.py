"""F2.latparam — latency parameters, prediction and the s1/s2 crossover (§2).

Paper claims reproduced:
* "the time for storing an object of size a will generally increase
  with a", with different services growing differently;
* "service s1 may have the lowest latency for storing small objects,
  while s2 may have the lowest latency for storing large objects";
* the SDK regresses latency on the stored size and predicts per-request
  latency, recovering the crossover and routing every size class to the
  truly fastest store.
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import RichClient, Weights, build_world

STORES = ("store-small-fast", "store-bulk", "store-standard")
TRAIN_SIZES = (100, 500, 1_000, 5_000, 10_000, 20_000, 50_000, 100_000)
LATENCY_ONLY = Weights(response_time=1, cost=0, quality=0)


@pytest.fixture(scope="module")
def trained():
    world = build_world(seed=3, corpus_size=10)
    client = RichClient(world.registry)
    for size in TRAIN_SIZES:
        for store in STORES:
            client.invoke(store, "put",
                          {"key": f"train-{size}", "value": "x" * size})
    return world, client


def test_latency_grows_with_size(trained):
    world, client = trained
    rows = [fmt_row("store", "lat @1KB (ms)", "lat @100KB (ms)")]
    for store in STORES:
        small = client.predictor.predict(store, {"size": 1_000})
        large = client.predictor.predict(store, {"size": 100_000})
        rows.append(fmt_row(store, small * 1000, large * 1000))
        assert large > small
    report("F2.latparam.growth", "predicted latency vs object size", rows)


def test_regression_recovers_true_model(trained):
    world, client = trained
    rows = [fmt_row("store", "true µs/B", "fitted µs/B", "r^2")]
    for store in STORES:
        truth = world.service(store).latency
        fitted = client.predictor.model_summary(store)
        rows.append(fmt_row(store, truth.slope * 1e6, fitted["slope"] * 1e6,
                            fitted["r_squared"]))
        assert fitted["slope"] == pytest.approx(truth.slope, rel=0.25)
        assert fitted["r_squared"] > 0.8
    report("F2.latparam.fit", "fitted regression vs ground-truth latency model",
           rows)


def test_crossover_recovered(trained):
    world, client = trained
    predicted = client.predictor.crossover("store-small-fast", "store-bulk")
    truth = world.service("store-small-fast").latency.crossover_with(
        world.service("store-bulk").latency)
    report("F2.latparam.crossover", "s1/s2 crossover: truth vs learned", [
        fmt_row("source", "crossover (bytes)"),
        fmt_row("analytic (ground truth)", truth),
        fmt_row("learned from history", predicted),
        f"relative error: {abs(predicted - truth) / truth:.1%}",
    ])
    assert predicted == pytest.approx(truth, rel=0.3)


def test_routing_picks_true_fastest_store(trained):
    """Selection accuracy across the size sweep: the learned router
    agrees with the ground-truth winner at every probed size."""
    world, client = trained
    rows = [fmt_row("object size (B)", "predicted best", "true best")]
    agreements = 0
    probes = (200, 2_000, 8_000, 15_000, 40_000, 200_000)
    for size in probes:
        chosen = client.best_service("storage", latency_params={"size": float(size)},
                                     weights=LATENCY_ONLY)
        true_best = min(
            STORES,
            key=lambda store: world.service(store).latency.deterministic(
                {"size": size}),
        )
        agreements += chosen == true_best
        rows.append(fmt_row(size, chosen, true_best))
    rows.append(f"agreement: {agreements}/{len(probes)}")
    report("F2.latparam.routing", "size-aware routing vs ground truth", rows)
    assert agreements == len(probes)


def test_routing_beats_any_fixed_store(trained):
    """End-to-end payoff: adaptive routing beats committing to any one
    store across a mixed size workload."""
    world, client = trained
    from repro.util.rng import SeededRng

    rng = SeededRng(77)
    sizes = [int(10 ** rng.uniform(2, 5.3)) for _ in range(60)]

    def total_latency_fixed(store):
        return sum(
            world.service(store).latency.deterministic({"size": size})
            for size in sizes
        )

    adaptive = 0.0
    for size in sizes:
        best = client.best_service("storage", latency_params={"size": float(size)},
                                   weights=LATENCY_ONLY)
        adaptive += world.service(best).latency.deterministic({"size": size})

    rows = [fmt_row("policy", "total latency (s)")]
    fixed_totals = {}
    for store in STORES:
        fixed_totals[store] = total_latency_fixed(store)
        rows.append(fmt_row(f"always {store}", fixed_totals[store]))
    rows.append(fmt_row("SDK adaptive routing", adaptive))
    report("F2.latparam.payoff", "mixed workload: adaptive vs fixed store", rows)
    assert adaptive <= min(fixed_totals.values()) * 1.02


def test_bench_prediction_lookup(benchmark, trained):
    """pytest-benchmark: one latency prediction from history."""
    _, client = trained
    value = benchmark(client.predictor.predict, "store-standard", {"size": 12_345})
    assert value > 0
