"""A13 — sharded storage: parallel fan-out crossover and SQLite scale.

Two quantitative claims for the storage tentpole:

1. **Parallel scatter beats a single store past a crossover size.**
   The same native numeric top-k query (range filter + ORDER BY +
   LIMIT, compiled to each shard's ``scan_numeric``) is timed against
   ``ShardedGraph(1, sqlite)`` and ``ShardedGraph(N, sqlite)`` on a
   ladder of triple counts.  Both sides run identical SQLite C scans —
   the only variable is fan-out across the worker pool — so the
   reported crossover isolates parallelism, not engine differences.
   SQLite releases the GIL inside its scans, which is what makes the
   threads real; the in-memory family is also timed as context to show
   pure-Python shard scans *cannot* win under the GIL.

2. **A SQLite-backed KB handles a graph beyond comfortable in-memory
   size, byte-identically.**  A file-backed KB is loaded with more
   triples than the in-memory reference, its on-disk footprint is
   compared with the tracemalloc cost of holding the same triples in
   RAM, and a query suite must answer byte-for-byte the same on both.

Results land in ``benchmarks/results/BENCH_A13.json``.  The default
run is a smoke-sized ladder (CI-friendly); set ``A13_FULL=1`` for the
full ladder, where the crossover assertion is enforced.
"""

import os
import time
import tracemalloc

from benchmarks._report import fmt_row, report, report_json
from repro.kb import PersonalKnowledgeBase
from repro.stores.backends.sqlite import SqliteTripleStore
from repro.stores.rdf.graph import Graph
from repro.stores.rdf.query import RangeFilter, select
from repro.stores.rdf.shard import ShardedGraph

FULL = os.environ.get("A13_FULL") == "1"
#: Scatter wall-clock wins need real cores to land the per-shard C
#: scans on; on a single-core host the fan-out can only tie, so the
#: speedup assertion is gated on this.
CORES = os.cpu_count() or 1
SHARDS = 4
REPEATS = 5 if FULL else 3
LADDER = [4_000, 16_000, 64_000, 160_000] if FULL else [2_000, 8_000]
KB_TRIPLES = 120_000 if FULL else 12_000


def _triples(count: int):
    for i in range(count):
        yield (f"repro:reading{i}", "repro:value", (i * 7919) % count * 0.5)


def _query(graph) -> list:
    """The benchmarked query: numeric range + descending top-100."""
    patterns = [("?s", "repro:value", "?v")]
    filters = [RangeFilter("?v", 100.0, None)]
    runner = getattr(graph, "select", None)
    if callable(runner):
        return runner(patterns, filters=filters, order_by="?v",
                      descending=True, limit=100)
    return select(graph, patterns, filters=filters, order_by="?v",
                  descending=True, limit=100)


def _best_time(graph) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        _query(graph)
        best = min(best, time.perf_counter() - started)
    return best


def _build(count: int, shards: int, sqlite: bool):
    factory = (lambda index: SqliteTripleStore()) if sqlite else None
    graph = ShardedGraph(shards=shards, backend_factory=factory,
                         parallel_threshold=0)
    graph.add_all(_triples(count))
    return graph


def test_a13_parallel_scatter_crossover_and_sqlite_scale(tmp_path):
    # -- claim 1: the crossover ladder ---------------------------------
    ladder_rows = []
    crossover = None
    for count in LADDER:
        single = _build(count, 1, sqlite=True)
        sharded = _build(count, SHARDS, sqlite=True)
        assert _query(single) == _query(sharded)  # identical bytes first
        t_single = _best_time(single)
        t_sharded = _best_time(sharded)
        memory_single = Graph()
        memory_single.add_all(_triples(count))
        t_memory = _best_time(memory_single)
        memory_sharded = _build(count, SHARDS, sqlite=False)
        t_memory_sharded = _best_time(memory_sharded)
        single.close()
        sharded.close()
        memory_sharded.close()
        speedup = t_single / t_sharded
        if crossover is None and t_sharded < t_single:
            crossover = count
        ladder_rows.append({
            "triples": count,
            "sqlite_single_ms": round(t_single * 1000, 3),
            "sqlite_sharded_ms": round(t_sharded * 1000, 3),
            "sqlite_speedup": round(speedup, 3),
            "memory_single_ms": round(t_memory * 1000, 3),
            "memory_sharded_ms": round(t_memory_sharded * 1000, 3),
        })

    # -- claim 2: SQLite KB beyond comfortable in-memory size -----------
    kb = PersonalKnowledgeBase(data_dir=tmp_path, storage="sqlite",
                               shards=SHARDS)
    kb.graph.add_all(_triples(KB_TRIPLES))
    disk_bytes = sum(
        path.stat().st_size for path in (tmp_path / "triples").glob("*"))

    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    in_memory = Graph()
    in_memory.add_all(_triples(KB_TRIPLES))
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    ram_bytes = sum(stat.size_diff
                    for stat in after.compare_to(before, "filename"))

    reference_kb = PersonalKnowledgeBase()
    reference_kb.graph.add_all(_triples(KB_TRIPLES))
    suite = [
        dict(patterns=[("?s", "repro:value", "?v")],
             filters=[RangeFilter("?v", 50.0, 200.0)], order_by="?v",
             limit=250),
        dict(patterns=[("repro:reading17", "repro:value", "?v")]),
        dict(patterns=[("?s", "repro:value", "?v")], order_by="?v",
             descending=True, limit=50),
    ]
    for query in suite:
        assert kb.query(**query) == reference_kb.query(**query)
    kb.graph.close()

    # -- report ---------------------------------------------------------
    lines = [fmt_row("triples", "sqlite 1-shard", f"sqlite {SHARDS}-shard",
                     "speedup", "memory 1", f"memory {SHARDS}")]
    for row in ladder_rows:
        lines.append(fmt_row(
            row["triples"], f"{row['sqlite_single_ms']:.2f} ms",
            f"{row['sqlite_sharded_ms']:.2f} ms",
            f"{row['sqlite_speedup']:.2f}x",
            f"{row['memory_single_ms']:.2f} ms",
            f"{row['memory_sharded_ms']:.2f} ms"))
    lines.append(f"crossover (sharded wins): "
                 f"{crossover if crossover else 'not reached on this ladder'}"
                 f" [{CORES} core(s) available]")
    lines.append(f"sqlite KB: {KB_TRIPLES} triples, "
                 f"{disk_bytes / 1e6:.1f} MB on disk vs "
                 f"{ram_bytes / 1e6:.1f} MB resident in-memory")
    report("A13", "sharded storage: fan-out crossover + SQLite scale", lines)
    report_json("A13", {
        "experiment": "A13.sharded-storage",
        "shards": SHARDS,
        "cores": CORES,
        "full": FULL,
        "ladder": ladder_rows,
        "crossover_triples": crossover,
        "sqlite_kb": {
            "triples": KB_TRIPLES,
            "disk_bytes": disk_bytes,
            "in_memory_bytes": ram_bytes,
            "query_suite_identical": True,
        },
    })

    # Correctness invariants always hold; the parallel-speedup claim is
    # only enforceable on the full ladder AND with real cores to fan
    # out onto — a single-core host can at best tie (the numbers are
    # still reported so the crossover is visible where it exists).
    assert all(row["sqlite_sharded_ms"] > 0 for row in ladder_rows)
    if FULL and CORES >= 2:
        assert crossover is not None, "sharded never beat single-shard"
        assert ladder_rows[-1]["sqlite_speedup"] > 1.2
