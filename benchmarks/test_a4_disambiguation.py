"""A4 — named entity disambiguation (§3).

Paper claims reproduced:
* naive string matching concludes that "United States of America" and
  "USA" are different things; service-backed disambiguation maps every
  alias to one unique country ID (with DBpedia/YAGO URLs);
* user synonym files handle domains without disambiguation services
  (the paper's disease-names example);
* canonicalization prevents the "proliferation of redundant database
  entries": measured as unique subjects created per logical entity.
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import PersonalKnowledgeBase, RichClient, build_world
from repro.kb.disambiguation import (
    EntityDisambiguator,
    ExactMatchStrategy,
    ServiceBackedStrategy,
    SynonymFileStrategy,
)
from repro.util.rng import SeededRng


@pytest.fixture(scope="module")
def env():
    world = build_world(seed=73, corpus_size=20)
    client = RichClient(world.registry)
    yield world, client
    client.close()


def alias_stream(world, mentions=300, seed=9):
    """A realistic ingest stream: entity mentions using random aliases."""
    rng = SeededRng(seed)
    entities = [entity for entity in world.gazetteer
                if entity.entity_type in ("Country", "Company", "Disease")]
    stream = []
    gold = []
    for _ in range(mentions):
        entity = rng.choice(entities)
        surface = rng.choice(entity.all_surface_forms())
        stream.append(surface)
        gold.append(entity.entity_id)
    return stream, gold


def test_strategy_accuracy_comparison(env):
    world, client = env
    stream, gold = alias_stream(world)
    strategies = {
        "exact string match": EntityDisambiguator([ExactMatchStrategy({
            entity.name: entity.entity_id for entity in world.gazetteer})]),
        "service-backed": EntityDisambiguator([
            ServiceBackedStrategy(client, "lexica-prime")]),
        "synonyms + service": EntityDisambiguator([
            SynonymFileStrategy({
                alias: entity.entity_id
                for entity in world.gazetteer.entities_of_type("Disease")
                for alias in entity.aliases}),
            ServiceBackedStrategy(client, "lexica-prime"),
        ]),
    }
    rows = [fmt_row("strategy", "resolved", "correct", "accuracy",
                    widths=(22, 10, 10, 10))]
    accuracy = {}
    for label, disambiguator in strategies.items():
        correct = resolved = 0
        for surface, expected in zip(stream, gold):
            result = disambiguator.resolve(surface)
            if result is not None:
                resolved += 1
                correct += result.entity_id == expected
        accuracy[label] = correct / len(stream)
        rows.append(fmt_row(label, resolved, correct, accuracy[label],
                            widths=(22, 10, 10, 10)))
    report("A4.accuracy", f"disambiguation accuracy over {len(stream)} mentions",
           rows)
    assert accuracy["service-backed"] > accuracy["exact string match"] + 0.2
    assert accuracy["synonyms + service"] >= accuracy["service-backed"]


def test_redundant_entry_proliferation(env):
    """How many distinct KB subjects does each strategy create for the
    same 300-mention stream?  (Lower is better; the gold number is the
    count of logical entities.)"""
    world, client = env
    stream, gold = alias_stream(world)
    logical_entities = len(set(gold))
    rows = [fmt_row("strategy", "distinct subjects", "ideal",
                    widths=(22, 18, 8))]
    measured = {}
    for label, disambiguator in (
        ("exact string match", EntityDisambiguator([ExactMatchStrategy({
            entity.name: entity.entity_id for entity in world.gazetteer})])),
        ("service-backed", EntityDisambiguator([
            ServiceBackedStrategy(client, "lexica-prime")])),
    ):
        kb = PersonalKnowledgeBase(client=client, disambiguator=disambiguator)
        for surface in stream:
            kb.add_fact(surface, "repro:mentioned", "true")
        subjects = {t.subject for t in kb.graph.match(None, "repro:mentioned", None)}
        measured[label] = len(subjects)
        rows.append(fmt_row(label, len(subjects), logical_entities,
                            widths=(22, 18, 8)))
    report("A4.proliferation", "distinct KB subjects per strategy", rows)
    assert measured["service-backed"] == logical_entities
    assert measured["exact string match"] > logical_entities * 1.5


def test_us_alias_bundle(env):
    """The paper's worked example, verbatim."""
    world, client = env
    disambiguator = EntityDisambiguator([
        ServiceBackedStrategy(client, "lexica-prime")])
    aliases = ["USA", "US", "United States", "America", "the States",
               "United States of America", "U.S.", "U.S.A."]
    rows = [fmt_row("surface", "entity id", "dbpedia link", widths=(26, 10, 50))]
    resolved_ids = set()
    for alias in aliases:
        resolved = disambiguator.resolve(alias)
        resolved_ids.add(resolved.entity_id)
        rows.append(fmt_row(alias, resolved.entity_id,
                            resolved.links["dbpedia"], widths=(26, 10, 50)))
    report("A4.us_example", "every US surface form -> one entity + URL bundle",
           rows)
    assert resolved_ids == {"Q30"}


def test_caching_amortizes_disambiguation_cost(env):
    world, client = env
    stream, _ = alias_stream(world, mentions=300, seed=10)
    calls_before = client.monitor.call_count("lexica-prime")
    disambiguator = EntityDisambiguator([
        ServiceBackedStrategy(client, "lexica-prime")])
    for surface in stream:
        disambiguator.resolve(surface)
    remote_calls = client.monitor.call_count("lexica-prime") - calls_before
    distinct = len(set(stream))
    report("A4.caching", "remote disambiguation calls vs mentions", [
        fmt_row("mentions processed", len(stream)),
        fmt_row("distinct surface forms", distinct),
        fmt_row("remote service calls", remote_calls),
    ])
    assert remote_calls <= distinct  # each distinct string resolved once


def test_bench_disambiguation_lookup(benchmark, env):
    world, client = env
    disambiguator = EntityDisambiguator([
        ServiceBackedStrategy(client, "lexica-prime")])
    disambiguator.resolve("USA")  # warm the cache
    resolved = benchmark(disambiguator.resolve, "USA")
    assert resolved.entity_id == "Q30"
