"""F5 — analysis results → RDF store → inferred knowledge (Figure 5).

Paper claims reproduced:
* regression results (slope, r², trend, forecast) are stored as RDF
  statements;
* rule inference over those statements derives facts "beyond that
  produced by just the mathematical analysis itself" — counted here;
* the inferred facts convert back into relational/CSV form;
* RDFS reasoning scales to thousands of statements (throughput row).
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import PersonalKnowledgeBase, RichClient, build_world
from repro.services.datasources import StockDataService
from repro.stores.rdf.graph import RDFS, REPRO


@pytest.fixture(scope="module")
def analyzed_kb():
    world = build_world(seed=47, corpus_size=10)
    client = RichClient(world.registry)
    kb = PersonalKnowledgeBase(client=client)
    companies = [entity for entity in world.gazetteer.entities_of_type("Company")]
    for entity in companies:
        symbol = StockDataService.symbol_for(entity.name)
        history = client.invoke("tickerfeed", "history",
                                {"symbol": symbol, "days": 180}).value
        kb.pipeline.analyze_series(entity.entity_id, history["days"],
                                   history["closes"],
                                   series_name=f"stock:{symbol}",
                                   entity_type="Company")
    yield world, client, kb, companies
    client.close()


def test_analysis_results_materialized_as_rdf(analyzed_kb):
    world, client, kb, companies = analyzed_kb
    statements_per_series = len(kb.graph) / len(companies)
    rows = [
        fmt_row("series analyzed", len(companies)),
        fmt_row("RDF statements stored", len(kb.graph)),
        fmt_row("statements per series", statements_per_series),
    ]
    report("F5.materialize", "regression results stored as RDF statements", rows)
    for entity in companies:
        predicates = {t.predicate for t in kb.graph.match(entity.entity_id, None, None)}
        assert {REPRO.slope, REPRO.r_squared, REPRO.trend,
                REPRO.forecast_next} <= predicates


def test_inference_derives_new_knowledge(analyzed_kb):
    world, client, kb, companies = analyzed_kb
    before = len(kb.graph)
    derived = kb.pipeline.infer()
    recommendations = kb.pipeline.recommendations()
    rows = [
        fmt_row("facts before inference", before),
        fmt_row("facts derived by rules", derived),
        fmt_row("companies with recommendations", len(recommendations)),
        "",
        fmt_row("company", "trend", "recommendation"),
    ]
    for entity in companies:
        trend = kb.graph.match(entity.entity_id, REPRO.trend, None)[0].object
        rows.append(fmt_row(entity.name, trend,
                            recommendations.get(entity.entity_id, "-")))
    report("F5.infer", "facts inferred beyond the mathematical analysis", rows)
    assert derived > 0
    assert recommendations
    # Every recommendation is consistent with the underlying trend.
    for entity_id, recommendation in recommendations.items():
        trend = kb.graph.match(entity_id, REPRO.trend, None)[0].object
        if recommendation == "investment-candidate":
            assert trend == "rising"
        if recommendation == "watch-list":
            assert trend == "falling"


def test_inferred_facts_convert_to_table(analyzed_kb):
    """'As the RDF store infers new facts, these facts can be converted
    to other formats.'"""
    world, client, kb, companies = analyzed_kb
    kb.pipeline.infer()
    from repro.stores.rdf.graph import RDF, Triple

    # Tag every company row as part of a virtual 'portfolio' table, then
    # pivot all its (including inferred) facts back into rows.
    for entity in companies:
        kb.graph.add(Triple(entity.entity_id, RDF.type, REPRO("table/portfolio")))
    table = kb.rdf_to_table("portfolio")
    csv_text = kb.export_table_csv("portfolio")
    report("F5.convert", "inferred facts pivoted back to relational/CSV", [
        fmt_row("columns", len(table.column_names)),
        fmt_row("rows", len(table)),
        fmt_row("CSV bytes", len(csv_text)),
        "columns include: " + ", ".join(sorted(table.column_names)[:8]) + ", ...",
    ])
    assert "recommendation" in table.column_names or any(
        "recommendation" in name for name in table.column_names)
    assert len(table) == len(companies)


def test_rdfs_reasoning_scale(analyzed_kb):
    """Throughput of the RDFS reasoner over a growing class hierarchy."""
    world, client, kb, companies = analyzed_kb
    import time

    from repro.stores.rdf.graph import Graph
    from repro.stores.rdf.reasoner import RdfsReasoner
    from repro.stores.rdf.graph import RDF

    rows = [fmt_row("instances", "input triples", "entailed", "wall ms")]
    for instances in (200, 800, 2_000):
        graph = Graph()
        depth = 8
        for level in range(depth):
            graph.add((f"class-{level}", RDFS.subClassOf, f"class-{level + 1}"))
        for index in range(instances):
            graph.add((f"item-{index}", RDF.type, "class-0"))
        started = time.perf_counter()
        entailed = RdfsReasoner(rules=("rdfs9", "rdfs11")).apply(graph)
        elapsed_ms = (time.perf_counter() - started) * 1000
        rows.append(fmt_row(instances, instances + depth, entailed, elapsed_ms))
        assert entailed == instances * depth + (depth * (depth - 1)) // 2
    report("F5.scale", "RDFS materialization throughput", rows)


def test_bench_forward_inference(benchmark, analyzed_kb):
    """pytest-benchmark: one forward pass over the analyzed graph."""
    world, client, kb, companies = analyzed_kb

    def infer_fresh():
        fresh = PersonalKnowledgeBase()
        fresh.graph.add_all(list(kb.graph))
        fresh.pipeline.graph = fresh.graph
        return fresh.pipeline.infer()

    assert benchmark(infer_fresh) >= 0
