"""OBS.overhead — tracing/metrics cost on the cache-hit fast path.

The observability subsystem instruments the Rich SDK's hottest path: a
cache hit, which involves no simulated network at all.  This benchmark
measures the real (wall-clock) cost of that instrumentation by timing
identical cache-hit workloads against a client with the default
:class:`~repro.obs.Observability` bundle and one with
``Observability.disabled()``, and asserts the overhead stays under 10%.

The fast path stays cheap by design: a standalone cache hit emits *no*
span (only pre-bound counter increments and the monitor record it
already paid for); full spans appear only around remote calls and
inside active traces.
"""

import time

from benchmarks._report import fmt_row, report
from repro import RichClient, build_world
from repro.obs import Observability

ITERATIONS = 2000
ROUNDS = 7
MAX_OVERHEAD = 0.10

PAYLOAD = {"text": "Acme Corp shares rallied in Paris."}


def _cache_hit_client(enabled: bool) -> RichClient:
    world = build_world(seed=42, corpus_size=30)
    obs = None if enabled else Observability.disabled()
    client = RichClient(world.registry, obs=obs)
    # Prime the cache so every timed invoke is a pure hit.
    client.invoke("lexica-prime", "analyze", PAYLOAD)
    return client


def _time_hits(client: RichClient, iterations: int) -> float:
    invoke = client.invoke
    start = time.perf_counter()
    for _ in range(iterations):
        invoke("lexica-prime", "analyze", PAYLOAD)
    return time.perf_counter() - start


def test_cache_hit_overhead_under_budget():
    traced = _cache_hit_client(enabled=True)
    untraced = _cache_hit_client(enabled=False)
    try:
        # Warm both paths (imports, branch predictors, dict caches).
        _time_hits(traced, 200)
        _time_hits(untraced, 200)

        # Interleaved rounds, best-of: the minimum is the least-noisy
        # estimate of the true per-call cost on a shared machine.
        traced_best = min(_time_hits(traced, ITERATIONS) for _ in range(ROUNDS))
        untraced_best = min(_time_hits(untraced, ITERATIONS)
                            for _ in range(ROUNDS))
    finally:
        traced.close()
        untraced.close()

    per_call_traced = traced_best / ITERATIONS * 1e6
    per_call_untraced = untraced_best / ITERATIONS * 1e6
    overhead = traced_best / untraced_best - 1.0

    report("OBS.overhead", "observability cost on the cache-hit path", [
        fmt_row("path", "per call (us)", widths=(24, 14)),
        fmt_row("obs disabled", per_call_untraced, widths=(24, 14)),
        fmt_row("obs enabled", per_call_traced, widths=(24, 14)),
        fmt_row("overhead", f"{overhead * 100:.1f}%", widths=(24, 14)),
        f"budget: < {MAX_OVERHEAD * 100:.0f}%",
    ])

    # A standalone cache hit emits no spans at all: only the priming
    # remote call's sdk.invoke + transport.call pair was collected.
    assert len(traced.obs.collector) == 2
    assert overhead < MAX_OVERHEAD, (
        f"cache-hit instrumentation overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% budget "
        f"({per_call_traced:.2f}us vs {per_call_untraced:.2f}us)")
