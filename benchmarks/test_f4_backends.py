"""F4.stores — the PKB's storage backends (Figure 4; §3).

Paper claims reproduced:
* data can be stored and retrieved through files/CSV, a key-value
  store, a relational database and an RDF triple store;
* all four hold the same dataset faithfully (round-trips agree);
* local storage is orders of magnitude cheaper in (simulated) time
  than a remote cloud store — the reason §2 suggests storing locally
  and only occasionally pushing to the cloud.
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import PersonalKnowledgeBase, RichClient, build_world
from repro.stores.converters import table_to_csv_text
from repro.stores.kvstore import FileKeyValueStore, InMemoryKeyValueStore
from repro.stores.rdf.graph import Graph
from repro.stores.converters import table_to_triples, triples_to_rows, rows_to_table


def dataset(rows: int):
    header = ["key", "category", "value"]
    data = [[f"row-{index:05d}", f"cat-{index % 7}", float(index) * 1.5]
            for index in range(rows)]
    return header, data


@pytest.fixture(scope="module")
def remote_client():
    world = build_world(seed=23, corpus_size=10)
    client = RichClient(world.registry)
    yield world, client
    client.close()


def test_all_backends_roundtrip(tmp_path):
    header, data = dataset(200)
    table = rows_to_table("facts", header, data)

    # Relational.
    assert table.select(columns=["value"], where={"key": "row-00007"}) == [
        {"value": 10.5}]
    # CSV.
    from repro.stores.csvio import read_csv_text

    csv_header, csv_rows = read_csv_text(table_to_csv_text(table))
    assert csv_header == header and csv_rows == data
    # KV (file-backed).
    kv = FileKeyValueStore(tmp_path / "kv.json")
    for row in data:
        kv.put(row[0], {"category": row[1], "value": row[2]})
    assert kv.get("row-00007") == {"category": "cat-0", "value": 10.5}
    # RDF.
    graph = Graph(table_to_triples(table, subject_column="key"))
    rdf_header, rdf_rows = triples_to_rows(graph, "facts")
    by_key = {row[rdf_header.index("key")]: row for row in rdf_rows}
    assert by_key["row-00007"][rdf_header.index("value")] == 10.5

    report("F4.stores.roundtrip", "one dataset, four storage forms", [
        fmt_row("backend", "records", "faithful"),
        fmt_row("relational table", len(table), "yes"),
        fmt_row("CSV text", len(csv_rows), "yes"),
        fmt_row("file KV store", len(kv), "yes"),
        fmt_row("RDF triples", len(graph), "yes"),
    ])


@pytest.mark.parametrize("record_count", [50, 200, 800])
def test_local_vs_remote_storage_time(remote_client, record_count):
    """Simulated time to persist N records locally vs on a cloud store."""
    world, client = remote_client
    header, data = dataset(record_count)

    start = client.clock.now()
    kv = InMemoryKeyValueStore()
    for row in data:
        kv.put(row[0], {"category": row[1], "value": row[2]})
    local_elapsed = client.clock.now() - start  # no network: 0 sim time

    start = client.clock.now()
    client.invoke("store-standard", "put",
                  {"key": f"batch-{record_count}",
                   "value": [dict(zip(header, row)) for row in data]})
    remote_batched = client.clock.now() - start

    start = client.clock.now()
    for row in data[:20]:  # a taste of per-record remote puts
        client.invoke("store-standard", "put",
                      {"key": f"{record_count}:{row[0]}",
                       "value": dict(zip(header, row))})
    remote_per_record = (client.clock.now() - start) / 20 * record_count

    report(f"F4.stores.local_remote.{record_count}",
           f"persisting {record_count} records: local vs remote (sim s)", [
               fmt_row("strategy", "elapsed (s)"),
               fmt_row("local KV", local_elapsed),
               fmt_row("remote, one batch", remote_batched),
               fmt_row("remote, per record (extrapolated)", remote_per_record),
           ])
    assert local_elapsed == 0.0
    assert remote_batched < remote_per_record


def test_kb_holds_all_forms_simultaneously(remote_client, tmp_path):
    world, client = remote_client
    kb = PersonalKnowledgeBase(client=client, data_dir=tmp_path / "kb")
    header, data = dataset(100)
    csv_text = table_to_csv_text(rows_to_table("facts", header, data))
    kb.ingest_csv_text("facts", csv_text)
    kb.table_to_rdf("facts", subject_column="key")
    kb.kv.put("facts-origin", "benchmark")
    snapshot = kb.snapshot()
    report("F4.stores.kb", "one PKB holding the dataset in every form", [
        fmt_row("form", "size"),
        fmt_row("relational rows", len(kb.database.table("facts"))),
        fmt_row("RDF statements", len(kb.graph)),
        fmt_row("KV entries", len(kb.kv)),
        fmt_row("snapshot bytes", len(str(snapshot))),
    ])
    assert len(kb.database.table("facts")) == 100
    assert len(kb.graph) == 400  # 100 rows x (3 columns + rdf:type)


def test_bench_relational_select(benchmark):
    header, data = dataset(2_000)
    table = rows_to_table("facts", header, data)
    result = benchmark(table.select, where={"category": "cat-3"},
                       order_by="value", descending=True, limit=10)
    assert len(result) == 10


def test_bench_rdf_pattern_match(benchmark):
    header, data = dataset(2_000)
    graph = Graph(table_to_triples(rows_to_table("facts", header, data),
                                   subject_column="key"))
    result = benchmark(graph.match, None, "repro:category", "cat-3")
    assert len(result) > 100
