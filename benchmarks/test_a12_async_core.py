"""A12 — event-loop core concurrency ceiling vs the thread-pool core.

The asyncio rebuild of the invocation hot path exists for exactly one
quantitative claim: a single process can hold **10,000+ invocations in
flight simultaneously** on one event loop, where the thread-pool core
is ceilinged at its worker count (one OS thread per in-flight call).

Method: every call targets ``store-standard.put``, whose
``SizeDependentLatency`` is *deterministic* for fixed-size payloads, so
all calls hold the wire open for the same scaled-real duration.  A
wrapper around the service entry point counts concurrent in-flight
calls; the async side must overlap all 10k, the sync side can never
exceed its pool size.  Peak traced memory is reported per in-flight
call to substantiate "flat memory" (coroutine frames, not thread
stacks).

Results land in ``benchmarks/results/BENCH_A12.json`` via
:func:`benchmarks._report.report_json`.
"""

import asyncio
import threading
import tracemalloc

from benchmarks._report import fmt_row, report, report_json
from repro import RichClient, build_world
from repro.core.futures import CallbackExecutor
from repro.util.clock import RealClock

SEED = 12
ASYNC_CALLS = 10_000
ASYNC_TARGET = 10_000
#: store-standard.put latency is ~0.08 simulated s; x50 makes every
#: call hold the wire ~4 real s — far longer than launching 10k tasks
#: takes, so the full burst overlaps.
ASYNC_TIME_SCALE = 50.0
SYNC_CALLS = 192
SYNC_POOL = 64
SYNC_TIME_SCALE = 1.0


def _payload(index: int) -> dict:
    # Zero-padded keys keep every request byte-identical in size, so
    # the size-dependent latency model gives every call one duration.
    return {"key": f"doc-{index:06d}", "value": "x" * 64}


def _measure_async() -> dict:
    world = build_world(seed=SEED, corpus_size=10,
                        clock=RealClock(time_scale=ASYNC_TIME_SCALE))
    client = RichClient(world.registry)
    service = world.service("store-standard")
    original = service.ainvoke
    state = {"inflight": 0, "peak": 0}

    async def counting(operation, payload, timeout=None):
        state["inflight"] += 1
        state["peak"] = max(state["peak"], state["inflight"])
        try:
            return await original(operation, payload, timeout=timeout)
        finally:
            state["inflight"] -= 1

    service.ainvoke = counting

    async def burst():
        start = client.clock.now()
        tasks = [
            asyncio.ensure_future(client.aio.ainvoke(
                "store-standard", "put", _payload(index),
                use_cache=False, coalesce=False))
            for index in range(ASYNC_CALLS)
        ]
        results = await asyncio.gather(*tasks)
        return results, client.clock.now() - start

    tracemalloc.start()
    threads_before = threading.active_count()
    results, elapsed = asyncio.run(burst())
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    client.close()
    assert all(result.value["stored"] for result in results)
    return {
        "calls": ASYNC_CALLS,
        "peak_inflight": state["peak"],
        "elapsed_simulated_s": elapsed,
        "peak_traced_mib": peak_bytes / 2**20,
        "bytes_per_inflight_call": peak_bytes / ASYNC_CALLS,
        "extra_threads": threading.active_count() - threads_before,
    }


def _measure_sync() -> dict:
    world = build_world(seed=SEED, corpus_size=10,
                        clock=RealClock(time_scale=SYNC_TIME_SCALE))
    client = RichClient(world.registry,
                        executor=CallbackExecutor(max_workers=SYNC_POOL))
    service = world.service("store-standard")
    original = service.invoke
    lock = threading.Lock()
    state = {"inflight": 0, "peak": 0}

    def counting(operation, payload, timeout=None):
        with lock:
            state["inflight"] += 1
            state["peak"] = max(state["peak"], state["inflight"])
        try:
            return original(operation, payload, timeout=timeout)
        finally:
            with lock:
                state["inflight"] -= 1

    service.invoke = counting
    start = client.clock.now()
    results = client.invoke_all(
        [("store-standard", "put", _payload(index))
         for index in range(SYNC_CALLS)],
        use_cache=False)
    elapsed = client.clock.now() - start
    client.close()
    assert all(not isinstance(result, Exception) for result in results)
    return {
        "calls": SYNC_CALLS,
        "pool_size": SYNC_POOL,
        "peak_inflight": state["peak"],
        "elapsed_simulated_s": elapsed,
    }


def test_event_loop_core_sustains_10k_inflight_invocations():
    async_run = _measure_async()
    sync_run = _measure_sync()

    report("A12.async-core",
           "in-flight invocation ceiling: event loop vs thread pool", [
               fmt_row("core", "calls", "peak in-flight"),
               fmt_row("event loop", async_run["calls"],
                       async_run["peak_inflight"]),
               fmt_row("thread pool", sync_run["calls"],
                       sync_run["peak_inflight"]),
               f"thread-pool ceiling: {sync_run['pool_size']} workers",
               f"async peak traced memory: "
               f"{async_run['peak_traced_mib']:.1f} MiB "
               f"({async_run['bytes_per_inflight_call']:.0f} B per call)",
               f"async extra threads: {async_run['extra_threads']}",
           ])
    report_json("A12", {
        "experiment": "A12.async-core",
        "seed": SEED,
        "async": {
            "calls": async_run["calls"],
            "peak_inflight": async_run["peak_inflight"],
            "elapsed_simulated_s": round(
                async_run["elapsed_simulated_s"], 6),
            "peak_traced_mib": round(async_run["peak_traced_mib"], 3),
            "bytes_per_inflight_call": round(
                async_run["bytes_per_inflight_call"]),
            "extra_threads": async_run["extra_threads"],
        },
        "sync": {
            "calls": sync_run["calls"],
            "pool_size": sync_run["pool_size"],
            "peak_inflight": sync_run["peak_inflight"],
            "elapsed_simulated_s": round(sync_run["elapsed_simulated_s"], 6),
        },
    })

    # The tentpole claim: 10k+ truly concurrent in-flight invocations
    # in one process, on one loop, with no extra threads.
    assert async_run["peak_inflight"] >= ASYNC_TARGET
    assert async_run["extra_threads"] == 0
    # The thread-pool core cannot exceed its worker count.
    assert sync_run["peak_inflight"] <= SYNC_POOL
    # Flat memory: well under 64 KiB per in-flight call (a thread
    # stack alone defaults to megabytes).
    assert async_run["bytes_per_inflight_call"] < 65536
