"""A8 — coalescing + micro-batching multiply duplicate-heavy throughput.

The paper's Rich SDK reduces redundant service calls with caching; this
extension attacks the two redundancies a cache cannot touch: identical
requests that are *concurrently* in flight (single-flight coalescing)
and distinct requests that could share one wire round trip (micro-
batching against services whose catalog entry declares a batch
endpoint).  Measured on a duplicate-heavy workload: the batched +
folded path needs a small fraction of the baseline's simulated time —
far beyond the required 2x — because folded duplicates cost nothing
and each batch charges one round trip whose compute latency is the max
(not the sum) of its items.  Admission control is demonstrated
alongside: with the only permit held, the gateway sheds the request as
a 429 with a retry-after hint instead of queueing it into a melted
thread pool.
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import RichClient, build_world
from repro.core.admission import AdmissionController, AdmissionLimit
from repro.core.gateway import SdkGateway

REQUESTS = 160
UNIQUE_TEXTS = 20
SERVICE = "glotta"  # batch_max_size=16 in the catalog


def _workload() -> list[dict]:
    texts = [f"Globex quarterly bulletin number {index} was excellent."
             for index in range(UNIQUE_TEXTS)]
    return [{"text": texts[index % UNIQUE_TEXTS]} for index in range(REQUESTS)]


def _measure_baseline(world, client, payloads) -> tuple[float, int]:
    start = world.clock.now()
    for payload in payloads:
        client.invoke(SERVICE, "analyze", payload,
                      use_cache=False, coalesce=False)
    return world.clock.now() - start, world.transport.stats.calls


def _measure_batched(world, client, payloads) -> tuple[float, int]:
    start = world.clock.now()
    results = client.invoke_many(SERVICE, "analyze", payloads,
                                 use_cache=False)
    assert len(results) == len(payloads)
    assert not any(isinstance(result, Exception) for result in results)
    return world.clock.now() - start, world.transport.stats.calls


def test_batched_throughput_beats_sequential_by_2x():
    payloads = _workload()

    base_world = build_world(seed=77, corpus_size=30)
    base_client = RichClient(base_world.registry)
    base_seconds, base_calls = _measure_baseline(
        base_world, base_client, payloads)
    base_client.close()

    fast_world = build_world(seed=77, corpus_size=30)
    fast_client = RichClient(fast_world.registry)
    fast_seconds, fast_calls = _measure_batched(
        fast_world, fast_client, payloads)

    base_rps = REQUESTS / base_seconds
    fast_rps = REQUESTS / fast_seconds
    speedup = fast_rps / base_rps

    snapshot = fast_client.obs.metrics.snapshot()
    coalesce_hits = snapshot["coalesce_hits_total"]["values"][0]["value"]
    batch_hist = snapshot["batch_size"]["values"][0]
    mean_batch = batch_hist["sum"] / batch_hist["count"]

    rows = [fmt_row("path", "sim seconds", "wire calls", "req/s")]
    rows.append(fmt_row("sequential, no reuse", base_seconds,
                        base_calls, base_rps))
    rows.append(fmt_row("invoke_many (fold+batch)", fast_seconds,
                        fast_calls, fast_rps))
    rows.append(fmt_row("throughput speedup", speedup))
    rows.append(fmt_row("coalesce_hits (folded dups)", coalesce_hits))
    rows.append(fmt_row("batch flushes", batch_hist["count"]))
    rows.append(fmt_row("mean batch size", mean_batch))
    report("a8.throughput",
           f"{REQUESTS} requests over {UNIQUE_TEXTS} unique texts "
           f"({SERVICE})", rows)
    fast_client.close()

    # The acceptance bar is 2x; fold+batch clears it with a wide margin.
    assert speedup >= 2.0
    assert coalesce_hits == REQUESTS - UNIQUE_TEXTS
    assert fast_calls < base_calls / 2


def test_admission_control_sheds_at_the_gateway():
    world = build_world(seed=77, corpus_size=30)
    admission = AdmissionController(world.clock, limits={
        SERVICE: AdmissionLimit(max_concurrent=1, max_queue=0,
                                queue_timeout=0.5),
    })
    client = RichClient(world.registry, admission=admission)
    gateway = SdkGateway(client)

    # One request holds the only permit (a stuck upstream call); every
    # arrival behind it must be refused at the front door.
    bulkhead = admission.bulkhead_for(SERVICE)
    bulkhead.acquire()
    envelopes = [
        gateway.handle({
            "method": "invoke",
            "params": {"service": SERVICE, "operation": "analyze",
                       "payload": {"text": f"burst {index}"},
                       "use_cache": False},
        })
        for index in range(8)
    ]
    bulkhead.release()
    recovered = gateway.handle({
        "method": "invoke",
        "params": {"service": SERVICE, "operation": "analyze",
                   "payload": {"text": "after release"},
                   "use_cache": False},
    })

    snapshot = client.obs.metrics.snapshot()
    shed = snapshot["admission_shed_total"]["values"][0]["value"]
    rows = [fmt_row("metric", "value")]
    rows.append(fmt_row("requests while saturated", len(envelopes)))
    rows.append(fmt_row("429 envelopes returned",
                        sum(1 for e in envelopes if e["status"] == 429)))
    rows.append(fmt_row("admission_shed counter", shed))
    rows.append(fmt_row("retry_after hint (s)",
                        envelopes[0].get("retry_after", 0.0)))
    rows.append(fmt_row("status after release", recovered["status"]))
    report("a8.admission",
           "bulkhead saturated: overload refused as 429, not queued", rows)
    client.close()

    assert all(envelope["status"] == 429 for envelope in envelopes)
    assert all(envelope["error_type"] == "AdmissionRejectedError"
               for envelope in envelopes)
    assert shed == len(envelopes)
    assert recovered["status"] == 200
