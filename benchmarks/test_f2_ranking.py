"""F2.rank — service scoring and ranking (Figure 2; Equations 1 and 2).

Paper claims reproduced:
* the SDK ranks services of similar functionality from collected
  (latency, cost, quality) data; lowest score = most desirable;
* user-supplied weights swing the decision (latency-dominant picks the
  fast/cheap provider, quality-dominant picks the premium one);
* Equation 1, Equation 2 and custom formulas are all supported and can
  disagree, which is why all three exist.
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import RichClient, Weights, build_world
from repro.core.aggregation import MultiServiceCombiner

PROVIDERS = ("lexica-prime", "glotta", "wordsmith-lite")


@pytest.fixture(scope="module")
def trained_client():
    world = build_world(seed=13, corpus_size=80)
    client = RichClient(world.registry)
    # Collect monitoring data: every provider analyzes 50 documents and
    # is quality-rated against the gold annotations (entity F1 and
    # entity-sentiment accuracy both count).
    for provider in PROVIDERS:
        for doc in world.corpus.documents[:50]:
            analysis = client.invoke(provider, "analyze", {"text": doc.text},
                                     use_cache=False).value
            score = MultiServiceCombiner.score_against_gold(
                analysis, list(doc.gold_entities), doc.gold_sentiment)
            quality = (score["f1"] + score.get("sentiment_accuracy", 1.0)) / 2
            client.monitor.rate_quality(provider, quality)
    yield client
    client.close()


def test_collected_estimates(trained_client):
    estimates = trained_client.ranker.estimates(list(PROVIDERS))
    rows = [fmt_row("service", "r (ms)", "c ($)", "q (F1)")]
    by_name = {}
    for estimate in estimates:
        by_name[estimate.service] = estimate
        rows.append(fmt_row(estimate.service, estimate.response_time * 1000,
                            estimate.cost, estimate.quality))
    report("F2.rank.estimates", "collected (r, c, q) per NLU provider", rows)
    # The configured trade-off is measurable: premium is slower,
    # pricier and better.
    assert by_name["lexica-prime"].response_time > by_name["wordsmith-lite"].response_time
    assert by_name["lexica-prime"].cost > by_name["wordsmith-lite"].cost
    assert by_name["lexica-prime"].quality > by_name["wordsmith-lite"].quality


def test_weight_sweep_swings_the_winner(trained_client):
    sweeps = [
        ("latency-dominant", Weights(response_time=1, cost=0, quality=0)),
        ("cost-dominant", Weights(response_time=0, cost=1, quality=0)),
        ("quality-dominant", Weights(response_time=0, cost=0, quality=1)),
        ("balanced", Weights(response_time=1, cost=50, quality=0.3)),
    ]
    rows = [fmt_row("weights", "ranking (best first)", widths=(18, 60))]
    winners = {}
    for label, weights in sweeps:
        ranked = trained_client.rank_services("nlu", weights=weights)
        winners[label] = ranked[0][0]
        rows.append(fmt_row(label, " > ".join(name for name, _ in ranked),
                            widths=(18, 60)))
    report("F2.rank.weights", "ranking under different weight vectors", rows)
    assert winners["latency-dominant"] == "wordsmith-lite"
    assert winners["cost-dominant"] == "wordsmith-lite"
    assert winners["quality-dominant"] == "lexica-prime"


def test_equation1_vs_equation2_vs_custom(trained_client):
    weights = Weights(response_time=1.0, cost=1.0, quality=1.0)
    rows = [fmt_row("formula", "scores (service=score)", widths=(12, 80))]
    rankings = {}
    for formula in ("weighted", "normalized"):
        ranked = trained_client.rank_services("nlu", weights=weights,
                                              formula=formula)
        rankings[formula] = [name for name, _ in ranked]
        rows.append(fmt_row(
            formula,
            ", ".join(f"{name}={score:.4f}" for name, score in ranked),
            widths=(12, 80)))

    def quality_per_dollar(estimate, candidates):
        return -(estimate.quality / max(estimate.cost, 1e-9))

    ranked = trained_client.rank_services("nlu", formula=quality_per_dollar)
    rankings["custom"] = [name for name, _ in ranked]
    rows.append(fmt_row("custom", ", ".join(f"{n}={s:.1f}" for n, s in ranked),
                        widths=(12, 80)))
    report("F2.rank.formulas", "Eq.1 vs Eq.2 vs custom (quality per dollar)", rows)
    # All three produce full rankings; scores ascend (lower = better).
    for ranking in rankings.values():
        assert len(ranking) == 3


def test_normalized_scores_commensurable(trained_client):
    """Equation 2's point: raw scores are dominated by whichever
    dimension has the largest magnitude; normalized terms are not."""
    estimates = trained_client.ranker.estimates(list(PROVIDERS))
    max_r = max(e.response_time for e in estimates)
    max_c = max(e.cost for e in estimates)
    # Raw latency (~0.1s) dwarfs raw cost (~0.002$): Eq.1 with unit
    # weights is effectively latency-only.
    assert max_r / max_c > 10
    scored = [
        trained_client.ranker.score(estimate, estimates, "normalized",
                                    Weights(1, 1, 0))
        for estimate in estimates
    ]
    assert all(0.0 <= score <= 2.0 for score in scored)


def test_bench_ranking_computation(benchmark, trained_client):
    """pytest-benchmark: ranking three services from history."""
    ranked = benchmark(trained_client.rank_services, "nlu")
    assert len(ranked) == 3
