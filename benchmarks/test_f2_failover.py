"""F2.fail — retry and ranked failover (Figure 2; §2.1).

Paper claims reproduced:
* retrying an unresponsive service a user-chosen number of times turns
  transient failures into successes;
* failing over down the ranking keeps the application running even
  when whole services are down;
* success rate under injected failures: no-retry < retry < retry+failover.
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import RichClient, build_world
from repro.core.retry import AllServicesFailedError, FailoverInvoker, RetryPolicy
from repro.services.base import RandomFailures
from repro.simnet.errors import NetworkError

TEXT_POOL_SIZE = 60


def run_workload(world, client, strategy: str, retries: int, failure_rate: float):
    """Run 60 analyze calls under a failure-injection regime."""
    for service in world.services_of_kind("nlu"):
        service.failures = RandomFailures(failure_rate)
    client.failover = FailoverInvoker(
        default_policy=RetryPolicy(max_attempts=retries), clock=client.clock)
    successes = attempts_total = 0
    for doc in world.corpus.documents[:TEXT_POOL_SIZE]:
        try:
            if strategy == "failover":
                result = client.invoke_with_failover(
                    "nlu", "analyze", {"text": doc.text}, use_cache=False)
                attempts_total += len(result.attempts)
            else:
                from repro.core.retry import invoke_with_retry

                invoke_with_retry(
                    lambda text=doc.text: client.invoke(
                        "glotta", "analyze", {"text": text}, use_cache=False),
                    RetryPolicy(max_attempts=retries),
                    clock=client.clock,
                )
                attempts_total += 1
            successes += 1
        except (NetworkError, AllServicesFailedError, Exception):
            pass
    for service in world.services_of_kind("nlu"):
        from repro.services.base import NeverFails

        service.failures = NeverFails()
    return successes / TEXT_POOL_SIZE


@pytest.mark.parametrize("failure_rate", [0.3])
def test_success_rate_by_strategy(failure_rate):
    world = build_world(seed=31, corpus_size=TEXT_POOL_SIZE)
    client = RichClient(world.registry)
    rows = [fmt_row("strategy", "success rate", widths=(30, 14))]
    measured = {}
    for label, strategy, retries in (
        ("single call, no retry", "single", 1),
        ("retry x3 (one service)", "single", 3),
        ("retry x3 + ranked failover", "failover", 3),
    ):
        rate = run_workload(world, client, strategy, retries, failure_rate)
        measured[label] = rate
        rows.append(fmt_row(label, rate, widths=(30, 14)))
    report("F2.fail.strategies",
           f"success rate at {failure_rate:.0%} per-call failure rate", rows)
    assert measured["retry x3 (one service)"] > measured["single call, no retry"]
    assert measured["retry x3 + ranked failover"] >= 0.99
    client.close()


def test_failure_rate_sweep():
    """Failover keeps success ~1.0 well past the point where bare calls
    collapse."""
    world = build_world(seed=37, corpus_size=TEXT_POOL_SIZE)
    client = RichClient(world.registry)
    rows = [fmt_row("failure rate", "no retry", "retry+failover")]
    for failure_rate in (0.1, 0.3, 0.5, 0.7):
        bare = run_workload(world, client, "single", 1, failure_rate)
        robust = run_workload(world, client, "failover", 3, failure_rate)
        rows.append(fmt_row(f"{failure_rate:.0%}", bare, robust))
        assert robust >= bare
        if failure_rate >= 0.5:
            assert robust > bare + 0.2  # the gap widens where it matters
    report("F2.fail.sweep", "success rate vs injected failure rate", rows)
    client.close()


def test_retry_latency_cost():
    """Reliability is not free: each retry adds latency (backoff charged
    to the simulation clock)."""
    world = build_world(seed=41, corpus_size=10)
    client = RichClient(world.registry)
    from repro.services.base import NeverFails, ScriptedFailures

    service = world.service("glotta")
    service.failures = ScriptedFailures({0, 1})  # first two calls fail
    start = client.clock.now()
    from repro.core.retry import invoke_with_retry

    invoke_with_retry(
        lambda: client.invoke("glotta", "analyze",
                              {"text": "IBM had excellent results."},
                              use_cache=False),
        RetryPolicy(max_attempts=3, backoff=0.5),
        clock=client.clock,
    )
    elapsed = client.clock.now() - start
    service.failures = NeverFails()
    report("F2.fail.latency", "latency cost of retrying (2 failures, backoff 0.5s)", [
        fmt_row("metric", "value"),
        fmt_row("total elapsed (s)", elapsed),
        fmt_row("backoff charged (s)", 0.5 + 1.0),
    ])
    assert elapsed >= 1.5  # the two backoff waits really passed
    client.close()


def test_bench_failover_invocation(benchmark):
    """pytest-benchmark: ranked failover with a healthy top choice."""
    world = build_world(seed=43, corpus_size=10)
    client = RichClient(world.registry)
    result = benchmark(
        client.invoke_with_failover, "nlu", "analyze",
        {"text": "IBM had excellent results."})
    assert result.value["entities"]
    client.close()
