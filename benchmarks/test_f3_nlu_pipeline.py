"""F3 — the NLU support pipeline (Figure 3).

Paper claims reproduced:
* search → fetch → store → per-document NLU (one request per URL) →
  aggregation across all returned documents;
* multiple search engines see different slices of the web, so the
  multi-engine union covers more than any single engine;
* aggregated per-entity sentiment reveals "how favorably ... entities
  are represented on the Web" and agrees with the corpus gold labels;
* keyword/entity frequencies identify what a result set is about.
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import RichClient, WebSearchAnalyzer, build_world

QUERY = "excellent results announced"


@pytest.fixture(scope="module")
def pipeline():
    world = build_world(seed=19, corpus_size=150)
    client = RichClient(world.registry)
    analyzer = WebSearchAnalyzer(client)
    yield world, client, analyzer
    client.close()


def test_engine_coverage_union(pipeline):
    world, client, analyzer = pipeline
    rows = [fmt_row("engine", "crawl size", "results for query")]
    per_engine = {}
    for engine in ("goggle", "bung", "yahu"):
        results = analyzer.search(QUERY, engine=engine, limit=15).value["results"]
        per_engine[engine] = {hit["url"] for hit in results}
        rows.append(fmt_row(engine, world.service(engine).crawl_size,
                            len(results)))
    merged = analyzer.multi_engine_search(QUERY, limit=15)
    rows.append(fmt_row("union (3 engines)", "-", len(merged)))
    report("F3.engines", "engine coverage and multi-engine union", rows)
    assert len(merged) >= max(len(urls) for urls in per_engine.values())
    assert len(merged) <= sum(len(urls) for urls in per_engine.values())


def test_full_pipeline_aggregates(pipeline):
    world, client, analyzer = pipeline
    aggregate = analyzer.analyze_search_results(
        QUERY, engine="goggle", limit=10, nlu_service="lexica-prime")
    rows = [fmt_row("entity", "docs", "mentions", "sentiment", "verdict")]
    for entry in aggregate.entity_sentiment_report()[:8]:
        sentiment = entry["mean_sentiment"]
        rows.append(fmt_row(
            entry["name"], entry["documents"], entry["mentions"],
            sentiment if sentiment is not None else "n/a",
            entry["favorability"]))
    rows.append("")
    rows.append(fmt_row("keyword", "count", "docs"))
    for keyword, count, docs in aggregate.top_keywords(6):
        rows.append(fmt_row(keyword, count, docs))
    report("F3.aggregate", f"aggregated analysis of {QUERY!r} (10 documents)", rows)
    assert aggregate.documents_analyzed == 10
    assert aggregate.top_entities()
    # Every analyzed document is archived with the query.
    assert len(analyzer.archive.document_urls()) >= 10
    assert analyzer.archive.searches(QUERY)


def test_entity_favorability_matches_gold(pipeline):
    """Across many documents, the aggregated per-entity verdicts track
    the corpus's gold stances."""
    world, client, analyzer = pipeline
    aggregate = analyzer.analyze_texts(
        [doc.text for doc in world.corpus.documents[:60]],
        nlu_service="lexica-prime")
    # Gold: majority stance per entity over the same 60 documents.
    from collections import defaultdict

    gold_totals = defaultdict(int)
    for doc in world.corpus.documents[:60]:
        for entity_id, stance in doc.gold_sentiment.items():
            gold_totals[entity_id] += stance
    agreements = judged = 0
    for entry in aggregate.entity_sentiment_report():
        gold = gold_totals.get(entry["entity"], 0)
        if gold == 0 or entry["mean_sentiment"] is None:
            continue
        if abs(entry["mean_sentiment"]) < 0.1:
            continue
        judged += 1
        agreements += (entry["mean_sentiment"] > 0) == (gold > 0)
    accuracy = agreements / judged
    report("F3.favorability", "aggregated favorability vs gold stances", [
        fmt_row("entities judged", judged),
        fmt_row("verdicts agreeing with gold", agreements),
        fmt_row("accuracy", accuracy),
    ])
    assert judged >= 10
    assert accuracy >= 0.8


def test_one_request_per_document(pipeline):
    """NLU APIs 'generally only support analysis of a single document
    at a time' — the SDK therefore issues exactly one call per URL."""
    world, client, analyzer = pipeline
    before = client.monitor.call_count("glotta")
    analyzer.analyze_search_results(
        "thrives market", engine="bung", limit=6, nlu_service="glotta")
    nlu_calls = client.monitor.call_count("glotta") - before
    searched = analyzer.archive.searches("thrives market")[-1]
    report("F3.percall", "one NLU request per returned document", [
        fmt_row("documents returned", len(searched["result_urls"])),
        fmt_row("NLU service calls", nlu_calls),
    ])
    assert nlu_calls == len(searched["result_urls"])


def test_bench_document_analysis(benchmark, pipeline):
    """pytest-benchmark: one full NLU engine pass over one document."""
    world, client, analyzer = pipeline
    engine = world.service("lexica-prime").engine
    text = world.corpus.documents[0].text
    analysis = benchmark(engine.analyze, text)
    assert analysis["entities"]
