"""F1 — the whole system (Figure 1): one application, many services.

Runs a complete cognitive data-analytics application through the Rich
SDK — web search, page fetches, three NLU providers, knowledge-base
lookups, market data, geo data, visual recognition and cloud storage —
and reports the cross-service picture Figure 1 depicts: what was
called, what it cost, how the SDK's features (caching, ranking,
monitoring) shaped the run.  The ablation row contrasts the same
workload with every SDK feature disabled.
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import PersonalKnowledgeBase, RichClient, WebSearchAnalyzer, Weights, build_world
from repro.core.caching import ServiceCache
from repro.kb.disambiguation import EntityDisambiguator, ServiceBackedStrategy
from repro.services.datasources import StockDataService
from repro.services.vision import generate_images


def run_application(world, client) -> dict:
    """The full scenario; returns headline numbers."""
    analyzer = WebSearchAnalyzer(client)
    kb = PersonalKnowledgeBase(
        client=client,
        disambiguator=EntityDisambiguator(
            [ServiceBackedStrategy(client, "lexica-prime")]),
    )
    # 1. Research each of three companies on the web.
    for company in ("IBM", "Acme Analytics", "Hooli"):
        aggregate = analyzer.analyze_search_results(
            f"{company} results", limit=4, nlu_service="glotta")
        for row in aggregate.entity_sentiment_report():
            if row["mean_sentiment"] is not None:
                kb.add_fact(row["name"], "repro:web_favorability",
                            row["favorability"])
        # 2. Facts + market data per company.
        kb.ingest_entity(company, sources=["dbpedia-sim", "wikidata-sim"])
        history = client.invoke(
            "tickerfeed", "history",
            {"symbol": StockDataService.symbol_for(company), "days": 90}).value
        entity = world.gazetteer.resolve(company)
        kb.pipeline.analyze_series(entity.entity_id, history["days"],
                                   history["closes"], entity_type="Company")
    derived = kb.pipeline.infer()
    # 3. Some geo context and a visual-recognition task.
    client.invoke("geosphere", "climate", {"place": "New York City"})
    for image in generate_images(count=5, seed=3):
        client.invoke("visionary", "classify", {"descriptor": image.descriptor})
    # 4. Back the whole knowledge base up to the best-ranked store.
    best_store = client.best_service(
        "storage", latency_params={"size": 50_000.0},
        weights=Weights(response_time=1, cost=0, quality=0))
    client.invoke(best_store, "put", {"key": "kb-backup", "value": kb.snapshot()})
    return {
        "facts": len(kb.graph),
        "derived": derived,
        "recommendations": len(kb.pipeline.recommendations()),
        "backup_store": best_store,
    }


def test_full_application(world):
    client = RichClient(world.registry)
    start = client.clock.now()
    outcome = run_application(world, client)
    elapsed = client.clock.now() - start

    rows = [fmt_row("service", "calls", "mean lat (ms)", "spend ($)")]
    for summary in client.service_summaries():
        if summary["calls"]:
            rows.append(fmt_row(
                summary["service"], summary["calls"],
                (summary["mean_latency"] or 0) * 1000,
                client.quota.cost(summary["service"])))
    rows.append("")
    rows.append(fmt_row("total simulated time (s)", elapsed))
    rows.append(fmt_row("total spend ($)", client.quota.total_cost()))
    rows.append(fmt_row("KB facts", outcome["facts"]))
    rows.append(fmt_row("facts derived by inference", outcome["derived"]))
    rows.append(fmt_row("backup routed to", outcome["backup_store"]))
    report("F1.application", "full analytics application through the SDK", rows)

    kinds_touched = {world.service(name).kind
                     for name in client.monitor.services()}
    assert {"nlu", "search", "web", "knowledge", "marketdata", "geodata",
            "vision", "storage"} <= kinds_touched
    assert outcome["derived"] > 0
    assert outcome["recommendations"] > 0
    client.close()


def test_sdk_features_pay_for_themselves(world):
    """The same application twice more: warm cache vs no cache."""
    cached_client = RichClient(world.registry)
    run_application(world, cached_client)  # cold pass to warm the cache
    start_time = cached_client.clock.now()
    start_cost = cached_client.quota.total_cost()
    run_application(world, cached_client)  # warm pass
    warm_time = cached_client.clock.now() - start_time
    warm_cost = cached_client.quota.total_cost() - start_cost
    cached_client.close()

    bare_client = RichClient(world.registry, cache=ServiceCache(capacity=1))
    start_time = bare_client.clock.now()
    start_cost = bare_client.quota.total_cost()
    run_application(world, bare_client)
    bare_time = bare_client.clock.now() - start_time
    bare_cost = bare_client.quota.total_cost() - start_cost
    bare_client.close()

    report("F1.ablation", "repeat run: warm SDK cache vs no cache", [
        fmt_row("configuration", "sim time (s)", "spend ($)"),
        fmt_row("warm cache", warm_time, warm_cost),
        fmt_row("no cache", bare_time, bare_cost),
        f"caching saved {1 - warm_time / bare_time:.0%} of time and "
        f"{1 - warm_cost / bare_cost:.0%} of spend on the repeat run",
    ])
    assert warm_time < bare_time * 0.6
    assert warm_cost < bare_cost * 0.6


def test_bench_end_to_end_application(benchmark):
    """pytest-benchmark: the full application, real wall time."""
    world = build_world(seed=42, corpus_size=60)

    def run_once():
        client = RichClient(world.registry)
        outcome = run_application(world, client)
        client.close()
        return outcome

    outcome = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert outcome["facts"] > 0
