"""F3b — the image pipeline (§2.2's image paragraph, extension bench).

"Search engines can identify images matching a query; these images can
be passed to an image analysis service and/or stored locally."

Measured:

* tag noise vs classified truth: the image search's tags are ~15%
  wrong, and the visual recognition pass measurably cleans the result
  set (verdict accuracy above tag accuracy);
* multi-provider label voting accuracy by provider count;
* offline re-analysis of the locally stored descriptors needs no
  further search calls.
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import RichClient, build_world
from repro.core.imagery import ImageSearchAnalyzer

PROVIDERS = ("visionary", "peek", "glance")


@pytest.fixture(scope="module")
def imagery_env():
    world = build_world(seed=97, corpus_size=10)
    client = RichClient(world.registry)
    analyzer = ImageSearchAnalyzer(client)
    gold = {image.image_id: image.gold_label
            for image in world.service("pixfinder").images}
    yield world, client, analyzer, gold
    client.close()


def test_classification_cleans_tag_noise(imagery_env):
    world, client, analyzer, gold = imagery_env
    rows = [fmt_row("query", "hits", "tag accuracy", "verdict accuracy")]
    improved = 0
    for query in ("cat", "dog", "car"):
        result = analyzer.analyze_image_search(query, ("visionary",), limit=25)
        hits = result["images_analyzed"]
        if hits == 0:
            continue
        tag_accuracy = sum(
            1 for verdict in result["verdicts"]
            if gold[verdict["image_id"]] == query
        ) / hits
        verdict_accuracy = sum(
            1 for verdict in result["verdicts"]
            if verdict["label"] == gold[verdict["image_id"]]
        ) / hits
        improved += verdict_accuracy > tag_accuracy
        rows.append(fmt_row(query, hits, tag_accuracy, verdict_accuracy))
    report("F3b.tags", "image tags vs visual recognition verdicts", rows)
    assert improved >= 2  # classification beats the tags on most queries


def test_provider_count_vs_accuracy(imagery_env):
    world, client, analyzer, gold = imagery_env
    rows = [fmt_row("providers", "verdict accuracy")]
    accuracies = {}
    for count in (1, 2, 3):
        providers = PROVIDERS[:count]
        correct = total = 0
        for query in ("cat", "dog", "beach"):
            result = analyzer.analyze_image_search(query, providers, limit=20)
            for verdict in result["verdicts"]:
                total += 1
                correct += verdict["label"] == gold[verdict["image_id"]]
        accuracies[count] = correct / total
        rows.append(fmt_row(f"{count} ({'+'.join(providers)})",
                            accuracies[count]))
    report("F3b.voting", "label accuracy vs number of voting providers", rows)
    # The premium provider alone is strong; adding the budget providers
    # must at least not collapse accuracy (majority keeps it honest).
    assert accuracies[3] >= accuracies[1] - 0.1


def test_offline_reanalysis(imagery_env):
    world, client, analyzer, gold = imagery_env
    analyzer.analyze_image_search("mountain", ("visionary",), limit=15)
    search_calls = client.monitor.call_count("pixfinder")
    replay = analyzer.reanalyze_stored(("peek",))
    report("F3b.offline", "re-analysis from local image store", [
        fmt_row("images re-analyzed", replay["images_analyzed"]),
        fmt_row("new search calls", client.monitor.call_count("pixfinder")
                - search_calls),
    ])
    assert replay["images_analyzed"] > 0
    assert client.monitor.call_count("pixfinder") == search_calls


def test_bench_image_verdict(benchmark, imagery_env):
    world, client, analyzer, gold = imagery_env
    hit = analyzer.search_images("cat", limit=1)[0]
    verdict = benchmark(analyzer.classify_with_agreement, hit["descriptor"],
                        PROVIDERS)
    assert verdict["label"]
