"""A5 — extension ablations: load balancing and quality drift.

Two production-facing extensions of the paper's selection machinery:

* **load balancing** — always-best-pick vs spreading policies: sticky
  hashing maximizes cache locality; least-spend equalizes bills;
  weighted-score keeps weaker providers' monitoring history warm;
* **quality drift detection** — the rolling quality tracker notices a
  provider silently degrading and the reference-free agreement
  evaluator pinpoints the culprit without gold labels.
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import RichClient, build_world
from repro.core.loadbalancer import (
    LeastSpendBalancer,
    RoundRobinBalancer,
    StickyBalancer,
    WeightedScoreBalancer,
)
from repro.core.quality import AgreementEvaluator, RollingQualityTracker

PROVIDERS = ("lexica-prime", "glotta", "wordsmith-lite")


@pytest.fixture(scope="module")
def balancing_world():
    return build_world(seed=83, corpus_size=60)


def test_balancer_trade_offs(balancing_world):
    """The same 120-request stream (40 documents × 3 sweeps) under four
    routing policies."""
    world = balancing_world
    documents = [doc.text for doc in world.corpus.documents[:40]]

    def run(make_balancer):
        client = RichClient(world.registry)
        balancer = make_balancer(client)
        for _ in range(3):
            for text in documents:
                provider = balancer.choose(list(PROVIDERS), request_key=text)
                client.invoke(provider, "analyze", {"text": text})
        hit_ratio = client.cache.stats.hit_ratio
        spends = [client.quota.cost(name) for name in PROVIDERS]
        spread = max(spends) - min(spends)
        total = client.quota.total_cost()
        client.close()
        return hit_ratio, total, spread

    rows = [fmt_row("policy", "cache hit ratio", "total spend", "spend spread")]
    measured = {}
    for label, factory in (
        ("round robin", lambda client: RoundRobinBalancer()),
        ("sticky (hash affinity)", lambda client: StickyBalancer()),
        ("least spend", lambda client: LeastSpendBalancer(client.monitor)),
        ("weighted by rank", lambda client: WeightedScoreBalancer(
            client.ranker, seed=3)),
    ):
        measured[label] = run(factory)
        rows.append(fmt_row(label, *measured[label]))
    report("A5.balancers", "routing policies over an identical stream", rows)
    # Sticky keeps each document on one provider: best cache locality.
    assert measured["sticky (hash affinity)"][0] > measured["round robin"][0]
    # Least-spend equalizes the bills across providers.
    assert measured["least spend"][2] <= measured["round robin"][2] + 1e-9


def test_drift_detection_catches_degrading_provider(balancing_world):
    """glotta silently degrades mid-run; the tracker flags it."""
    world = balancing_world
    client = RichClient(world.registry)
    tracker = RollingQualityTracker(window=200, baseline=20, tolerance=0.1)
    evaluator = AgreementEvaluator()

    def observe_round(docs, degrade: bool):
        for doc in docs:
            analyses = {}
            for provider in PROVIDERS:
                value = client.invoke(provider, "analyze", {"text": doc.text},
                                      use_cache=False).value
                if degrade and provider == "glotta":
                    value = dict(value)
                    value["entities"] = []  # the provider breaks silently
                analyses[provider] = value
            for provider, score in evaluator.evaluate_all(analyses).items():
                tracker.observe(provider, score)

    healthy_docs = world.corpus.documents[:20]
    observe_round(healthy_docs, degrade=False)
    assert tracker.degraded_services(recent=10) == []
    observe_round(world.corpus.documents[20:40], degrade=True)
    degraded = tracker.degraded_services(recent=10)
    rows = [fmt_row("service", "baseline quality", "recent quality", "drifted")]
    for provider in PROVIDERS:
        drift = tracker.check_drift(provider, recent=10)
        rows.append(fmt_row(provider, drift.baseline_mean, drift.recent_mean,
                            str(drift.drifted)))
    report("A5.drift", "reference-free drift detection (no gold labels)", rows)
    assert [drift.service for drift in degraded] == ["glotta"]
    client.close()


def test_bench_balancer_choice(benchmark, balancing_world):
    client = RichClient(balancing_world.registry)
    balancer = WeightedScoreBalancer(client.ranker, seed=1)
    choice = benchmark(balancer.choose, list(PROVIDERS), request_key="doc-1")
    assert choice in PROVIDERS
    client.close()
