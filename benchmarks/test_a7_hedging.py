"""A7 — hedged requests cut the latency tail (extension).

The paper's latency-mitigation toolbox (caching, ranking, async) gets
the classic tail-at-scale addition: if the best-ranked service has not
answered within its own observed p95, fire the same request at the
runner-up and keep whichever answers first.  Measured: p50 is untouched
(hedges are rare), the p99 tail drops sharply, and the extra load is
bounded by the hedge rate (~the deadline percentile's complement).
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import RichClient, build_world
from repro.analytics.stats import percentile
from repro.core.hedging import HedgedInvoker
from repro.core.ranking import Weights
from repro.simnet.latency import LogNormalLatency
from repro.util.clock import RealClock

TIME_SCALE = 0.01
REQUESTS = 60
LATENCY_ONLY = Weights(response_time=1, cost=0, quality=0)


@pytest.fixture(scope="module")
def heavy_tail_env():
    world = build_world(seed=103, corpus_size=30,
                        clock=RealClock(time_scale=TIME_SCALE))
    # Give the fastest-median provider a vicious tail; the runner-up is
    # slightly slower at the median but tight.
    world.service("wordsmith-lite").latency = LogNormalLatency(
        median=0.05, sigma=1.8)
    world.service("glotta").latency = LogNormalLatency(median=0.09, sigma=0.15)
    client = RichClient(world.registry)
    # Warm the monitor so ranking and deadlines have history.
    for provider in ("wordsmith-lite", "glotta", "lexica-prime"):
        for doc in world.corpus.documents[:12]:
            client.invoke(provider, "analyze", {"text": doc.text},
                          use_cache=False)
    yield world, client
    client.close()


def test_hedging_cuts_the_tail(heavy_tail_env):
    world, client = heavy_tail_env
    texts = [f"Globex report number {index} was excellent."
             for index in range(REQUESTS)]

    plain_latencies = []
    primary = "wordsmith-lite"  # fastest median, heavy tail
    for text in texts:
        start = client.clock.now()
        client.invoke(primary, "analyze", {"text": text}, use_cache=False)
        plain_latencies.append(client.clock.now() - start)

    invoker = HedgedInvoker(client, deadline_percentile=0.75,
                            weights=LATENCY_ONLY)
    # Pin the primary/backup pair: the live ranking would adaptively
    # demote the heavy-tailed primary mid-experiment (itself a useful
    # behaviour, but not what this bench isolates).
    for text in texts:
        invoker.invoke("nlu", "analyze", {"text": f"hedged {text}"},
                       use_cache=False,
                       candidates=[primary, "glotta"])
    hedged_latencies = invoker.stats.latencies

    rows = [fmt_row("policy", "p50 (s)", "p95 (s)", "p99 (s)")]
    rows.append(fmt_row("best service, no hedge",
                        percentile(plain_latencies, 0.50),
                        percentile(plain_latencies, 0.95),
                        percentile(plain_latencies, 0.99)))
    rows.append(fmt_row("hedged (p75 deadline)",
                        percentile(hedged_latencies, 0.50),
                        percentile(hedged_latencies, 0.95),
                        percentile(hedged_latencies, 0.99)))
    rows.append(fmt_row("hedge rate", invoker.stats.hedge_rate))
    rows.append(fmt_row("hedge wins", invoker.stats.hedge_wins))
    report("A7.tail", f"tail latency over {REQUESTS} requests "
           "(heavy-tailed primary)", rows)

    assert percentile(hedged_latencies, 0.99) < percentile(plain_latencies, 0.99)
    assert invoker.stats.hedge_rate < 0.6   # hedges stay bounded
    assert invoker.stats.hedge_wins > 0     # and they genuinely save requests


def test_bench_hedged_invocation(benchmark, heavy_tail_env):
    world, client = heavy_tail_env
    invoker = HedgedInvoker(client, weights=LATENCY_ONLY)

    def run():
        return invoker.invoke("nlu", "analyze",
                              {"text": "Globex thrives."})

    result = benchmark.pedantic(run, rounds=5, iterations=1)
    assert result.value["sentiment"]
