"""A11 — multi-tenant fairness under an aggressor (extension).

A 100-tenant Zipf population offers background load while the most
popular tenant floods the server at 10x its natural share.  The same
seeded arrival schedule is played against the weighted-fair (DRR)
queue discipline the bulkheads use, and against a single FIFO queue as
the control.  Measured per discipline: a well-behaved *victim*
tenant's p99 latency (against its no-aggressor baseline), overall shed
rate, and Jain's fairness index over delivered fractions.

Fair scheduling keeps the victim's p99 within 2x its solo baseline and
the Jain index >= 0.9; the FIFO control is demonstrably unfair — the
victim queues behind the flood (p99 blows past 2x) and is shed at
double-digit rates.  Results are persisted machine-readably as
``benchmarks/results/BENCH_A11.json``.
"""

from benchmarks._report import fmt_row, report, report_json
from repro.loadgen import Aggressor, LoadSpec, run_spec

SEED = 11
TENANTS = 100
VICTIM_RANK = 25
VICTIM = f"t{VICTIM_RANK:05d}"
AGGRESSOR = Aggressor(rank=0, multiplier=10.0)


def _spec(discipline: str, aggressors: tuple = ()) -> LoadSpec:
    return LoadSpec(tenants=TENANTS, arrival_rate=400.0, duration=30.0,
                    seed=SEED, discipline=discipline, aggressors=aggressors)


def test_fair_scheduling_protects_victims_from_an_aggressor():
    baseline = run_spec(_spec("fair"))
    fair = run_spec(_spec("fair", (AGGRESSOR,)))
    fifo = run_spec(_spec("fifo", (AGGRESSOR,)))

    victim_base_p99 = baseline.tenant(VICTIM).latency_percentile(0.99)
    victim_fair = fair.tenant(VICTIM)
    victim_fifo = fifo.tenant(VICTIM)

    rows = [fmt_row("run", "arrivals", "shed rate", "jain",
                    "victim p99 (s)", "vs baseline")]
    for label, run, victim in (("fair, no aggressor", baseline,
                                baseline.tenant(VICTIM)),
                               ("fair, 10x aggressor", fair, victim_fair),
                               ("fifo, 10x aggressor", fifo, victim_fifo)):
        p99 = victim.latency_percentile(0.99)
        rows.append(fmt_row(label, run.total_arrivals,
                            run.shed_rate, run.fairness(), p99,
                            p99 / victim_base_p99))
    rows.append(fmt_row("victim shed rate (fair vs fifo)",
                        victim_fair.shed_rate, victim_fifo.shed_rate,
                        widths=(30, 18, 18)))
    report("A11.tenancy",
           f"{TENANTS} Zipf tenants, rank-0 aggressor at 10x (seed={SEED})",
           rows)

    report_json("A11", {
        "experiment": "A11.tenancy",
        "seed": SEED,
        "spec": {"tenants": TENANTS, "arrival_rate": 400.0,
                 "duration": 30.0, "aggressor_rank": AGGRESSOR.rank,
                 "aggressor_multiplier": AGGRESSOR.multiplier,
                 "victim": VICTIM},
        "victim": {
            "baseline_p99": round(victim_base_p99, 6),
            "fair_p99": round(victim_fair.latency_percentile(0.99), 6),
            "fifo_p99": round(victim_fifo.latency_percentile(0.99), 6),
            "fair_shed_rate": round(victim_fair.shed_rate, 6),
            "fifo_shed_rate": round(victim_fifo.shed_rate, 6),
        },
        "runs": {
            "fair_baseline": baseline.to_dict(),
            "fair_aggressor": fair.to_dict(),
            "fifo_aggressor": fifo.to_dict(),
        },
    })

    # Acceptance: fair scheduling bounds the victim's p99 at 2x its
    # solo baseline and keeps the population's Jain index >= 0.9.
    assert victim_fair.latency_percentile(0.99) <= 2.0 * victim_base_p99
    assert fair.fairness() >= 0.9

    # The FIFO control is demonstrably unfair: the victim queues behind
    # the flood and is shed at double-digit rates.
    assert victim_fifo.latency_percentile(0.99) > 2.0 * victim_base_p99
    assert victim_fifo.shed_rate > 10 * max(victim_fair.shed_rate, 0.005)


def test_weighted_shares_divide_saturated_capacity():
    """Backlogged tenants complete work proportionally to their weights."""
    weights = {0: 4.0, 1: 2.0, 2: 1.0, 3: 1.0}
    run = run_spec(LoadSpec(tenants=4, zipf_exponent=0.0,
                            arrival_rate=4_000.0, duration=10.0,
                            seed=SEED, discipline="fair", weights=weights,
                            tenant_queue_cap=8))
    completions = {rank: run.tenant(f"t{rank:05d}").completions
                   for rank in weights}
    unit = completions[2]

    rows = [fmt_row("tenant", "weight", "completions", "vs weight-1")]
    for rank, weight in weights.items():
        rows.append(fmt_row(f"t{rank:05d}", weight, completions[rank],
                            completions[rank] / unit))
    report("A11.weighted",
           f"4 saturated tenants at weights 4:2:1:1 (seed={SEED})", rows)

    # Each tenant's goodput tracks its declared weight within 15%.
    for rank, weight in weights.items():
        assert abs(completions[rank] / unit - weight) <= 0.15 * weight
