"""A9 — query planning and incremental materialization speedups.

Claims measured:
* the cost-based planner turns a worst-case-ordered 4-pattern join
  over ~10k triples from "expand everything, filter last" into
  "bind the single selective edge first" — ≥5x faster with byte-for-
  byte identical results;
* adding 100 facts to a materialized graph re-derives only their
  consequences (semi-naive delta), ≥5x faster than re-running the
  full fixpoint from scratch.
"""

import time

from benchmarks._report import fmt_row, report
from repro.stores.rdf.graph import Graph, RDF, RDFS
from repro.stores.rdf.materialize import MaterializedGraph
from repro.stores.rdf.plan import build_plan
from repro.stores.rdf.query import select
from repro.stores.rdf.reasoner import RdfsReasoner

PEOPLE = 1000
KNOWS_PER_PERSON = 9
CLASSES = 40
INSTANCES = 1200
DELTA_FACTS = 100


def _social_graph() -> Graph:
    """~10k triples: typed people, a dense knows-network, one employer."""
    graph = Graph()
    for index in range(PEOPLE):
        graph.add((f"p{index}", RDF.type, "Person"))
        for step in range(1, KNOWS_PER_PERSON + 1):
            graph.add((f"p{index}", "knows", f"p{(index + step * 7) % PEOPLE}"))
    graph.add(("p0", "worksAt", "acme"))
    return graph


def _canonical(bindings):
    return sorted(
        tuple(sorted(binding.items())) for binding in bindings
    )


def test_planned_join_beats_worst_case_order():
    graph = _social_graph()
    # Worst-case user order: the single selective pattern comes last,
    # so the naive engine expands the whole two-hop neighborhood first.
    patterns = [
        ("?x", RDF.type, "Person"),
        ("?x", "knows", "?y"),
        ("?y", "knows", "?z"),
        ("?x", "worksAt", "acme"),
    ]

    start = time.perf_counter()
    naive = select(graph, patterns, optimize=False)
    naive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    planned = select(graph, patterns)
    planned_seconds = time.perf_counter() - start

    assert _canonical(planned) == _canonical(naive)
    assert len(planned) == KNOWS_PER_PERSON ** 2
    speedup = naive_seconds / planned_seconds
    plan_order = build_plan(graph, patterns).pattern_order()
    rows = [
        fmt_row("graph triples", len(graph)),
        fmt_row("result rows", len(planned)),
        fmt_row("naive join (s)", naive_seconds),
        fmt_row("planned join (s)", planned_seconds),
        fmt_row("speedup (x)", speedup),
        fmt_row("plan order", "->".join(map(str, plan_order))),
    ]
    report("a9.planner", "planned vs worst-case-ordered 4-pattern join", rows)
    assert plan_order[0] == 3  # the single worksAt edge runs first
    assert speedup >= 5.0


def _taxonomy_facts() -> list[tuple]:
    """A 40-deep class chain plus instances typed across it."""
    facts = [
        (f"c{index}", RDFS.subClassOf, f"c{index + 1}")
        for index in range(CLASSES - 1)
    ]
    facts += [
        (f"x{index}", RDF.type, f"c{index % CLASSES}")
        for index in range(INSTANCES)
    ]
    return facts


def test_incremental_materialization_beats_full_refixpoint():
    reasoners = lambda: [RdfsReasoner(("rdfs9", "rdfs11"))]  # noqa: E731
    base = _taxonomy_facts()
    delta = [(f"new{index}", RDF.type, f"c{CLASSES // 2}")
             for index in range(DELTA_FACTS)]

    # Incremental: the view is already closed over the base facts;
    # only the 100 new triples' consequences are derived.
    view = MaterializedGraph(Graph(base), reasoners=reasoners())
    start = time.perf_counter()
    view.add_all(delta)
    delta_seconds = time.perf_counter() - start

    # Full: rebuild the fixpoint over base + delta from scratch.
    full_graph = Graph(base + delta)
    reasoner = reasoners()[0]
    start = time.perf_counter()
    reasoner.apply(full_graph)
    full_seconds = time.perf_counter() - start

    assert set(view.graph) == set(full_graph)
    speedup = full_seconds / delta_seconds
    rows = [
        fmt_row("base facts", len(base)),
        fmt_row("delta facts", len(delta)),
        fmt_row("materialized triples", len(view.graph)),
        fmt_row("full fixpoint (s)", full_seconds),
        fmt_row("delta fixpoint (s)", delta_seconds),
        fmt_row("speedup (x)", speedup),
    ]
    report("a9.materialize",
           "incremental vs full re-materialization (+100 facts)", rows)
    assert speedup >= 5.0
