"""A2 — persisting NLU analysis results (§2.2).

Paper claims reproduced:
* "each document only has to be analyzed once": repeated analysis of a
  corpus costs zero additional latency, money and quota;
* under a daily quota, caching stretches a fixed allowance across a
  much larger stream of (repeating) requests;
* persisted results survive a client restart via the KV store.
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import RichClient, build_world
from repro.core.caching import ServiceCache
from repro.services.base import Quota, QuotaExceededError
from repro.stores.kvstore import InMemoryKeyValueStore
from repro.util.rng import SeededRng

CORPUS = 40


@pytest.fixture()
def world():
    return build_world(seed=67, corpus_size=CORPUS)


def test_repeat_analysis_costs_nothing(world):
    client = RichClient(world.registry)
    texts = [doc.text for doc in world.corpus.documents]

    def sweep():
        start_time = client.clock.now()
        start_cost = client.quota.total_cost()
        for text in texts:
            client.invoke("lexica-prime", "analyze", {"text": text})
        return (client.clock.now() - start_time,
                client.quota.total_cost() - start_cost)

    first_time, first_cost = sweep()
    second_time, second_cost = sweep()
    report("A2.repeat", f"analyzing the same {CORPUS} documents twice", [
        fmt_row("pass", "sim time (s)", "cost ($)", "service calls"),
        fmt_row("first (cold)", first_time, first_cost, CORPUS),
        fmt_row("second (persisted)", second_time, second_cost, 0),
    ])
    assert second_time == 0.0
    assert second_cost == 0.0
    assert client.monitor.call_count("lexica-prime") == CORPUS
    client.close()


def test_quota_stretching(world):
    """A 25-call daily quota serves a 200-request stream with repeats."""
    world.service("lexica-prime").quota = Quota(limit=25, window=86_400.0)
    client = RichClient(world.registry)
    rng = SeededRng(5)
    texts = [doc.text for doc in world.corpus.documents[:25]]
    served = rejected = 0
    for _ in range(200):
        text = texts[rng.zipf_index(len(texts), exponent=0.9)]
        try:
            client.invoke("lexica-prime", "analyze", {"text": text})
            served += 1
        except QuotaExceededError:
            rejected += 1
    report("A2.quota", "200 requests against a 25-call daily quota", [
        fmt_row("outcome", "requests"),
        fmt_row("served (cache or quota)", served),
        fmt_row("rejected by quota", rejected),
        fmt_row("remote calls actually made",
                client.monitor.call_count("lexica-prime")),
    ])
    assert client.monitor.call_count("lexica-prime") <= 25
    assert served > 150  # far more requests served than the quota allows
    client.close()


def test_without_cache_the_quota_collapses(world):
    """Ablation: the identical stream with caching disabled."""
    world.service("lexica-prime").quota = Quota(limit=25, window=86_400.0)
    client = RichClient(world.registry)
    rng = SeededRng(5)
    texts = [doc.text for doc in world.corpus.documents[:25]]
    served = rejected = 0
    for _ in range(200):
        text = texts[rng.zipf_index(len(texts), exponent=0.9)]
        try:
            client.invoke("lexica-prime", "analyze", {"text": text},
                          use_cache=False)
            served += 1
        except QuotaExceededError:
            rejected += 1
    report("A2.quota_nocache", "the same stream without caching (ablation)", [
        fmt_row("served", served),
        fmt_row("rejected by quota", rejected),
    ])
    assert served == 25
    assert rejected == 175
    client.close()


def test_results_survive_restart(world):
    client = RichClient(world.registry)
    text = world.corpus.documents[0].text
    original = client.invoke("lexica-prime", "analyze", {"text": text})
    store = InMemoryKeyValueStore()
    saved = client.cache.save_to(store)
    client.close()

    reborn = RichClient(world.registry, cache=ServiceCache(capacity=1024))
    loaded = reborn.cache.load_from(store)
    replay = reborn.invoke("lexica-prime", "analyze", {"text": text})
    report("A2.restart", "persisted analysis across a client restart", [
        fmt_row("entries saved", saved),
        fmt_row("entries restored", loaded),
        fmt_row("replay served from cache", str(replay.cached)),
    ])
    assert replay.cached
    assert replay.value == original.value
    reborn.close()
