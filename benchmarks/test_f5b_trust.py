"""F5b — accuracy levels on facts and confidence-propagating inference.

This is the paper's §5 future work ("determining accuracy levels ...
using these accuracy levels during the process of inferring new facts,
and assigning accuracy levels to newly inferred facts"), implemented
and measured as an extension experiment:

* decision quality: thresholding recommendations by propagated
  confidence suppresses conclusions built on noisy regressions, while
  the plain (Figure-5) pipeline recommends indiscriminately;
* corroboration: a second source strengthens downstream conclusions;
* t-norm ablation: Gödel (min) vs product propagation.
"""

import pytest

from benchmarks._report import fmt_row, report
from repro import RichClient, build_world
from repro.kb.pipeline import AnalysisPipeline
from repro.kb.trust import TrustAwarePipeline
from repro.services.datasources import StockDataService
from repro.stores.rdf.graph import REPRO, Triple
from repro.stores.rdf.provenance import product_tnorm
from repro.util.rng import SeededRng


def synthetic_series(rng, trend_up: bool, noise: float, length: int = 60):
    """A series with known direction and controllable noise.

    At the high noise level the *fitted* slope has the wrong sign for a
    sizeable fraction of series, so an unfiltered pipeline makes real
    mistakes — the situation confidence thresholds exist for.
    """
    slope = 0.12 if trend_up else -0.12
    values = []
    level = 50.0
    for step in range(length):
        values.append(level + slope * step + rng.gauss(0, noise))
    return list(range(length)), values


@pytest.fixture(scope="module")
def labelled_portfolio():
    """40 companies with known true trends at two noise levels."""
    rng = SeededRng(131)
    portfolio = []
    for index in range(40):
        trend_up = index % 2 == 0
        noise = 0.4 if index % 4 < 2 else 30.0  # half clean, half very noisy
        xs, ys = synthetic_series(rng.child(f"s{index}"), trend_up, noise)
        portfolio.append((f"C_{index:02d}", trend_up, noise, xs, ys))
    return portfolio


def test_confidence_thresholding_improves_precision(labelled_portfolio):
    """Recommendations above the confidence bar are much more often
    *correct* (match the true trend) than unfiltered ones."""
    trusted = TrustAwarePipeline(confidence_floor=0.0)
    plain = AnalysisPipeline()
    for subject, trend_up, noise, xs, ys in labelled_portfolio:
        trusted.analyze_series(subject, xs, ys, entity_type="Company")
        plain.analyze_series(subject, xs, ys, entity_type="Company")
    trusted.infer()
    plain.infer()

    truth = {subject: "investment-candidate" if trend_up else "watch-list"
             for subject, trend_up, _, _, _ in labelled_portfolio}

    def precision(recommendations) -> tuple[int, int]:
        judged = correct = 0
        for subject, detail in recommendations.items():
            recommendation = (detail["recommendation"]
                              if isinstance(detail, dict) else detail)
            judged += 1
            correct += recommendation == truth[subject]
        return correct, judged

    plain_correct, plain_total = precision(plain.recommendations())
    rows = [fmt_row("policy", "recommendations", "correct", "precision")]
    rows.append(fmt_row("plain Figure-5 pipeline", plain_total, plain_correct,
                        plain_correct / plain_total))
    measured = {}
    for threshold in (0.0, 0.4, 0.6):
        correct, total = precision(trusted.recommendations(
            min_confidence=threshold))
        measured[threshold] = (correct / total if total else 1.0, total)
        rows.append(fmt_row(f"trusted, threshold {threshold:.1f}", total,
                            correct, correct / total if total else 1.0))
    report("F5b.threshold", "decision precision vs confidence threshold", rows)
    assert measured[0.6][0] > plain_correct / plain_total
    assert measured[0.6][0] >= 0.95
    assert 0 < measured[0.6][1] < plain_total  # it abstains on the noise


def test_corroboration_changes_the_screen(labelled_portfolio):
    subject, trend_up, noise, xs, ys = next(
        item for item in labelled_portfolio if item[2] > 1.0 and item[1])
    lone = TrustAwarePipeline()
    lone.analyze_series(subject, xs, ys, entity_type="Company")
    lone.infer()
    corroborated = TrustAwarePipeline()
    corroborated.analyze_series(subject, xs, ys, entity_type="Company")
    trend_before = corroborated.store.confidence(
        Triple(subject, REPRO.trend, "rising"))
    corroborated.assert_from_source(Triple(subject, REPRO.trend, "rising"),
                                    "user", confidence=0.9)
    trend_after = corroborated.store.confidence(
        Triple(subject, REPRO.trend, "rising"))
    corroborated.infer()
    lone_conf = lone.recommendations().get(subject, {}).get("confidence", 0.0)
    corr_conf = corroborated.recommendations()[subject]["confidence"]
    report("F5b.corroboration", "a second source strengthens conclusions", [
        fmt_row("quantity", "value"),
        fmt_row("trend confidence (regression only)", trend_before),
        fmt_row("trend confidence (+ analyst)", trend_after),
        fmt_row("recommendation confidence (lone)", lone_conf),
        fmt_row("recommendation confidence (corroborated)", corr_conf),
    ])
    assert trend_after > trend_before
    assert corr_conf > lone_conf


def test_tnorm_ablation(labelled_portfolio):
    """Product propagation decays long chains faster than Gödel/min."""
    subject, _, _, xs, ys = labelled_portfolio[0]
    results = {}
    for label, tnorm in (("godel(min)", None), ("product", product_tnorm)):
        pipeline = (TrustAwarePipeline() if tnorm is None
                    else TrustAwarePipeline(tnorm=tnorm))
        pipeline.analyze_series(subject, xs, ys, entity_type="Company")
        pipeline.infer()
        results[label] = pipeline.recommendations()[subject]["confidence"]
    report("F5b.tnorm", "confidence propagation: Gödel vs product", [
        fmt_row("t-norm", "recommendation confidence"),
        fmt_row("godel(min)", results["godel(min)"]),
        fmt_row("product", results["product"]),
    ])
    assert results["product"] <= results["godel(min)"]


def test_real_feed_screen():
    """The full trusted screen over the simulated market feed."""
    world = build_world(seed=101, corpus_size=10)
    client = RichClient(world.registry)
    pipeline = TrustAwarePipeline(confidence_floor=0.2)
    for entity in world.gazetteer.entities_of_type("Company"):
        history = client.invoke(
            "tickerfeed", "history",
            {"symbol": StockDataService.symbol_for(entity.name),
             "days": 150}).value
        pipeline.analyze_series(entity.entity_id, history["days"],
                                history["closes"], entity_type="Company")
    pipeline.infer()
    all_recs = pipeline.recommendations(min_confidence=0.0)
    confident = pipeline.recommendations(min_confidence=0.5)
    report("F5b.screen", "trusted investment screen (market feed)", [
        fmt_row("threshold", "recommendations"),
        fmt_row("0.00", len(all_recs)),
        fmt_row("0.50", len(confident)),
    ])
    assert 0 < len(confident) < len(all_recs)
    client.close()


def test_bench_confidence_inference(benchmark, labelled_portfolio):
    def run():
        pipeline = TrustAwarePipeline()
        for subject, _, _, xs, ys in labelled_portfolio:
            pipeline.analyze_series(subject, xs, ys, entity_type="Company")
        return pipeline.infer()

    assert benchmark(run) > 0
