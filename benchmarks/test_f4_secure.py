"""F4.secure — client-side encryption and compression (Figure 4; §3).

Paper claims reproduced:
* data is encrypted before it leaves the client, so an untrusted
  remote store never sees plaintext (and tampering is detected);
* compressing before upload reduces network bytes and the size-based
  storage bill "even if the cloud data store provides compression";
* the codec choice (zlib vs the from-scratch Huffman coder vs none) is
  an explicit trade-off, measured here as the DESIGN.md ablation.
"""

import json

import pytest

from benchmarks._report import fmt_row, report
from repro import RichClient, build_world
from repro.crypto.cipher import StreamCipher, derive_key
from repro.crypto.compression import HuffmanCodec, IdentityCodec, ZlibCodec
from repro.kb.secure import SecureRemoteStore


@pytest.fixture(scope="module")
def secure_env():
    world = build_world(seed=29, corpus_size=60)
    client = RichClient(world.registry)
    cipher = StreamCipher(derive_key("bench passphrase", iterations=1_000))
    yield world, client, cipher
    client.close()


def payload_of_size(world, target_chars: int) -> dict:
    """A realistic payload: corpus text up to roughly the target size."""
    text = " ".join(doc.text for doc in world.corpus.documents)
    return {"notes": text[:target_chars], "tags": ["confidential", "pkb"]}


def test_codec_ablation(secure_env):
    """Upload bytes and storage cost per codec, same 64 KiB payload."""
    world, client, cipher = secure_env
    payload = payload_of_size(world, 64_000)
    rows = [fmt_row("codec", "uploaded (B)", "ratio", "storage cost ($)")]
    uploaded = {}
    for codec in (IdentityCodec(), HuffmanCodec(), ZlibCodec()):
        store = SecureRemoteStore(client, "store-bulk", cipher, codec=codec,
                                  key_prefix=f"abl-{codec.name}/")
        cost_before = client.quota.cost("store-bulk")
        store.put("doc", payload)
        assert store.get("doc") == payload
        cost = client.quota.cost("store-bulk") - cost_before
        uploaded[codec.name] = store.stats.uploaded_bytes
        rows.append(fmt_row(codec.name, store.stats.uploaded_bytes,
                            store.stats.upload_ratio, cost))
    report("F4.secure.codecs", "codec ablation on a 64 KiB payload", rows)
    assert uploaded["zlib-6"] < uploaded["huffman"] < uploaded["identity"]


def test_bandwidth_and_cost_savings_by_size(secure_env):
    world, client, cipher = secure_env
    rows = [fmt_row("payload (B)", "wire bytes raw", "wire bytes zlib", "saved")]
    for size in (1_000, 10_000, 100_000):
        raw_store = SecureRemoteStore(client, "store-bulk", cipher,
                                      codec=IdentityCodec(),
                                      key_prefix=f"raw{size}/")
        zip_store = SecureRemoteStore(client, "store-bulk", cipher,
                                      key_prefix=f"zip{size}/")
        payload = payload_of_size(world, size)
        raw_store.put("p", payload)
        zip_store.put("p", payload)
        saved = 1 - zip_store.stats.uploaded_bytes / raw_store.stats.uploaded_bytes
        rows.append(fmt_row(size, raw_store.stats.uploaded_bytes,
                            zip_store.stats.uploaded_bytes, f"{saved:.0%}"))
        assert zip_store.stats.uploaded_bytes < raw_store.stats.uploaded_bytes
    report("F4.secure.savings", "compression savings vs payload size", rows)


def test_remote_store_sees_only_ciphertext(secure_env):
    world, client, cipher = secure_env
    store = SecureRemoteStore(client, "store-standard", cipher,
                              key_prefix="conf/")
    secret = {"diagnosis": "highly confidential", "ssn": "000-00-0000"}
    store.put("patient", secret)
    remote_raw = json.dumps(world.service("store-standard")._data["conf/patient"])
    leaked = [value for value in secret.values() if value in remote_raw]
    report("F4.secure.confidentiality", "what the remote store can read", [
        fmt_row("plaintext fields leaked", len(leaked)),
        fmt_row("remote value keys", ", ".join(
            sorted(world.service("store-standard")._data["conf/patient"]))),
    ])
    assert leaked == []
    assert store.get("patient") == secret


def test_tampering_detected_end_to_end(secure_env):
    world, client, cipher = secure_env
    from repro.crypto.cipher import DecryptionError

    store = SecureRemoteStore(client, "store-standard", cipher,
                              key_prefix="tamper/")
    store.put("ledger", {"balance": 100})
    # A malicious remote store flips one ciphertext character.
    envelope = world.service("store-standard")._data["tamper/ledger"]
    ciphertext = envelope["ciphertext"]
    flipped = "A" if ciphertext[5] != "A" else "B"
    envelope["ciphertext"] = ciphertext[:5] + flipped + ciphertext[6:]
    with pytest.raises(DecryptionError):
        store.get("ledger")
    report("F4.secure.tamper", "malicious remote mutation", [
        "one flipped ciphertext character -> DecryptionError before any",
        "plaintext is released (HMAC verification, encrypt-then-MAC)",
    ])


def test_encryption_overhead(secure_env):
    """The price of confidentiality: bytes and (simulated) time."""
    world, client, cipher = secure_env
    payload = payload_of_size(world, 50_000)
    plain = json.dumps(payload).encode()
    sealed_store = SecureRemoteStore(client, "store-bulk", cipher,
                                     key_prefix="ovh/")
    start = client.clock.now()
    client.invoke("store-bulk", "put", {"key": "plain", "value": payload})
    plain_time = client.clock.now() - start
    start = client.clock.now()
    sealed_store.put("sealed", payload)
    sealed_time = client.clock.now() - start
    report("F4.secure.overhead", "sealed vs plaintext upload (50 KB payload)", [
        fmt_row("path", "sim time (s)", "bytes"),
        fmt_row("plaintext put", plain_time, len(plain)),
        fmt_row("sealed put", sealed_time, sealed_store.stats.uploaded_bytes),
        "sealing SHRINKS the upload here: compression outweighs the "
        "nonce/tag/base64 overhead on text payloads",
    ])
    assert sealed_store.stats.uploaded_bytes < len(plain)


def test_bench_seal_unseal(benchmark, secure_env):
    world, client, cipher = secure_env
    from repro.crypto.envelope import seal, unseal

    payload = payload_of_size(world, 10_000)

    def roundtrip():
        return unseal(seal(payload, cipher), cipher)

    assert benchmark(roundtrip) == payload
