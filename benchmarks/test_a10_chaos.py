"""A10 — resilience under chaos: protections on vs. off (extension).

The chaos harness's worst case — an error burst rolling straight into a
network partition (`burst_partition`) — is run twice with the same
seeded fault schedule: once through the protected stack (end-to-end
deadlines, circuit breaker, grace-window stale serving) and once
through a naive caller (patient retry loops, no degradation).
Measured: served-answer rate, degraded fraction, p99 caller-observed
latency, and the invariant verdicts.  The protected stack keeps
serving inside its budget; the control overshoots its deadline by
seconds and fails the deadline invariant.
"""

from benchmarks._report import fmt_row, report, report_json
from repro.chaos.scenarios import run_scenario

SEED = 7


def test_protections_on_vs_off_under_burst_and_partition():
    protected = run_scenario("burst_partition", seed=SEED, protections=True)
    control = run_scenario("burst_partition", seed=SEED, protections=False)

    rows = [fmt_row("mode", "served rate", "degraded frac",
                    "p99 (s)", "verdict")]
    for label, result in (("protections on", protected),
                          ("protections off", control)):
        rows.append(fmt_row(
            label,
            result.metrics["success_rate"],
            result.metrics["degraded_fraction"],
            result.metrics["p99_latency"],
            "PASS" if result.passed else "FAIL"))
    overshoot = [check for check in control.report.results
                 if check.name == "deadline-honored"][0]
    rows.append(fmt_row("control deadline check", overshoot.detail,
                        widths=(24, 70)))
    rows.append(fmt_row("faults injected (on)",
                        int(protected.metrics["faults_injected"])))
    report("A10.chaos", "error burst + partition, seeded fault schedule "
           f"(seed={SEED})", rows)
    report_json("A10", {
        "experiment": "A10.chaos",
        "scenario": "burst_partition",
        "seed": SEED,
        "protected": {"passed": protected.passed, **protected.metrics},
        "control": {"passed": control.passed, **control.metrics},
    })

    # The protected stack keeps answering (fresh or explicitly degraded)
    # and honors every invariant.
    assert protected.passed
    assert protected.metrics["success_rate"] > 0.9
    assert protected.metrics["degraded"] > 0

    # The naive control overshoots its budget and fails the invariant.
    assert not control.passed
    assert "deadline-honored" in [f.name for f in control.report.failures()]
    assert control.metrics["p99_latency"] > protected.metrics["p99_latency"]


def test_degradation_is_bounded_not_invented():
    """Degraded answers stay within the declared staleness bound."""
    result = run_scenario("burst_partition", seed=SEED, protections=True)
    staleness = [check for check in result.report.results
                 if check.name == "bounded-staleness"][0]
    assert staleness.applicable and staleness.passed


def test_bench_chaos_scenario(benchmark):
    result = benchmark.pedantic(
        lambda: run_scenario("burst_partition", seed=SEED), rounds=3,
        iterations=1)
    assert result.passed
