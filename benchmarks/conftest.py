"""Shared fixtures for the benchmark suite."""

import pytest

from repro import RichClient, build_world


@pytest.fixture(scope="module")
def world():
    """A module-scoped world: benches in one file share state knowingly."""
    return build_world(seed=42, corpus_size=120)


@pytest.fixture(scope="module")
def client(world):
    rich_client = RichClient(world.registry)
    yield rich_client
    rich_client.close()
