#!/usr/bin/env python3
"""Speech and images through the Rich SDK.

The paper's cognitive services span "natural language processing,
speech recognition, and video recognition."  This example runs the two
media modalities end to end:

1. **speech** — simulated noisy utterances are transcribed by two ASR
   providers; their word error rates are measured against the gold
   transcripts, a ROVER vote combines them, and the winning transcript
   flows straight into the NLU layer (entities + sentiment);
2. **images** — an image search returns (noisily tagged) pictures for a
   query; three visual recognition providers vote on what each picture
   really shows; the aggregate reveals how polluted the tag-based
   search results were — and everything is stored locally for offline
   re-analysis.

Run:  python examples/cognitive_media.py
"""

from repro import RichClient, build_world
from repro.core.imagery import ImageSearchAnalyzer
from repro.services.speech import generate_utterances, rover_vote, word_error_rate


def main() -> None:
    world = build_world(seed=77, corpus_size=40)
    client = RichClient(world.registry)

    # ------------------------------------------------------------------
    print("=== Speech: noisy audio -> transcript -> NLU ===")
    # Note: ASR output is lowercase, so the briefing mentions the
    # company by its long name — short all-caps tickers like "IBM"
    # need case to disambiguate (a real ASR→NER pipeline caveat).
    briefing = ("Acme Analytics announced excellent quarterly results and "
                "analysts praised the innovative cloud strategy")
    utterance = generate_utterances([briefing], seed=2, char_error=0.12)[0]
    print(f"  gold:   {' '.join(utterance.gold_words)}")
    print(f"  signal: {' '.join(utterance.signal_words)}")

    hypotheses = {}
    for provider in ("dictaphone-pro", "mumblecorder"):
        response = client.invoke(provider, "transcribe",
                                 {"signal": utterance.signal_words})
        words = response.value["words"]
        hypotheses[provider] = words
        wer = word_error_rate(words, utterance.gold_words)
        print(f"  {provider:<16} WER={wer:.2f}  latency="
              f"{response.latency * 1000:.0f} ms")
    voted = rover_vote(list(hypotheses.values()))
    print(f"  {'ROVER vote':<16} WER="
          f"{word_error_rate(voted, utterance.gold_words):.2f}")

    analysis = client.invoke("lexica-prime", "analyze",
                             {"text": " ".join(voted)}).value
    entities = ", ".join(entity["name"] for entity in analysis["entities"])
    print(f"  NLU on the transcript: entities=[{entities}] "
          f"sentiment={analysis['sentiment']['label']}")

    # ------------------------------------------------------------------
    print("\n=== Images: search -> classify -> aggregate ===")
    analyzer = ImageSearchAnalyzer(client)
    providers = ("visionary", "peek", "glance")
    result = analyzer.analyze_image_search("cat", providers, limit=12)
    print(f"  query='cat': {result['images_analyzed']} images returned")
    print(f"  what they actually show: {result['label_distribution']}")
    print(f"  truly on-topic: {result['on_topic_fraction']:.0%} "
          f"(the rest were mistagged uploads)")
    for verdict in result["verdicts"][:4]:
        votes = ", ".join(f"{provider}:{label}"
                          for provider, label in verdict["votes"].items())
        print(f"    {verdict['image_id']}: {verdict['label']} "
              f"(agreement {verdict['confidence']:.2f}; {votes})")

    print("\n=== Offline replay from the local image store ===")
    replay = analyzer.reanalyze_stored(("visionary",))
    print(f"  re-analyzed {replay['images_analyzed']} stored images with a "
          f"different provider, zero new searches")

    print(f"\nTotal spend this session: ${client.quota.total_cost():.4f}")
    client.close()


if __name__ == "__main__":
    main()
