#!/usr/bin/env python3
"""Using the Rich SDK from "another language" via its gateway.

The paper: "In order to allow programs written in other languages to
access the rich SDK, the rich SDK can expose an HTTP interface."  This
example plays the part of a non-Python client: it speaks to the SDK
purely through JSON text envelopes (the literal wire format an HTTP
client would POST), never touching a Python object of the SDK.

Run:  python examples/gateway_client.py
"""

import json

from repro import RichClient, build_world
from repro.core.gateway import SdkGateway


def post(gateway: SdkGateway, method: str, **params) -> dict:
    """What an HTTP client does: serialize, send, parse."""
    request_text = json.dumps({"method": method, "params": params})
    response_text = gateway.handle_json(request_text)
    return json.loads(response_text)


def main() -> None:
    world = build_world(seed=5, corpus_size=60)
    gateway = SdkGateway(RichClient(world.registry))

    print("=== POST /invoke — analyze a document ===")
    response = post(
        gateway, "invoke",
        service="lexica-prime", operation="analyze",
        payload={"text": "Acme Analytics delivered excellent results; "
                         "analysts praised the innovative company."},
    )
    print(f"  status={response['status']}  "
          f"latency={response['result']['latency'] * 1000:.1f} ms")
    for entity in response["result"]["value"]["entities"]:
        print(f"  entity: {entity['name']} ({entity['type']})")

    print("\n=== POST /invoke again — the gateway's client caches ===")
    repeat = post(
        gateway, "invoke",
        service="lexica-prime", operation="analyze",
        payload={"text": "Acme Analytics delivered excellent results; "
                         "analysts praised the innovative company."},
    )
    print(f"  cached={repeat['result']['cached']}")

    print("\n=== POST /rank_services — who should I call? ===")
    for provider in ("lexica-prime", "glotta", "wordsmith-lite"):
        post(gateway, "invoke", service=provider, operation="analyze",
             payload={"text": world.corpus.documents[0].text}, use_cache=False)
    ranked = post(gateway, "rank_services", kind="nlu",
                  weights={"response_time": 1, "cost": 100, "quality": 0})
    for entry in ranked["result"]:
        print(f"  {entry['service']:<16} score={entry['score']:.4f}")

    print("\n=== POST /invoke_failover — resilience over the wire ===")
    from repro.services.base import ScriptedFailures

    best = ranked["result"][0]["service"]
    world.service(best).failures = ScriptedFailures(set(range(10)))
    response = post(
        gateway, "invoke_failover", kind="nlu", operation="analyze",
        payload={"text": "Globex thrives."}, use_cache=False,
        weights={"response_time": 1, "cost": 100, "quality": 0},
    )
    print(f"  served_by={response['result']['served_by']} "
          f"after {len(response['result']['attempts'])} attempts")

    print("\n=== Errors come back as statuses, never exceptions ===")
    for method, params in (
        ("invoke", {"service": "ghost", "operation": "op"}),
        ("invoke", {"service": "lexica-prime", "operation": "analyze",
                    "payload": {"text": "  "}}),
        ("warp", {}),
    ):
        response = post(gateway, method, **params)
        print(f"  {method}({params.get('service', '-')}) -> "
              f"{response['status']} {response.get('error_type', '')}")

    health = post(gateway, "health")
    print(f"\nGateway health: {health['result']}")
    gateway.client.close()


if __name__ == "__main__":
    main()
