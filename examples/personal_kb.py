#!/usr/bin/env python3
"""The Personalized Knowledge Base, end to end (§3 + Figure 5).

1. entity disambiguation — the paper's "USA / US / United States /
   America / the States" example, plus a user synonym file for disease
   names (a domain without good disambiguation services);
2. public-data ingestion from three knowledge services with divergent
   property-naming conventions, normalized at ingest;
3. CSV → relational → RDF conversion, RDFS reasoning over a class
   hierarchy, and SPARQL-like queries;
4. Figure 5: regress stock histories, store slope/trend/r² as RDF
   statements, run user rules to infer investment recommendations —
   "new knowledge beyond that produced by just the mathematical
   analysis itself" — then convert inferred facts back to CSV;
5. local spell checking and encrypted, compressed remote backup with
   offline-tolerant sync.

Run:  python examples/personal_kb.py
"""

from repro import PersonalKnowledgeBase, RichClient, build_world
from repro.crypto import StreamCipher, derive_key
from repro.kb import (
    EntityDisambiguator,
    LocalSpellChecker,
    OfflineSyncStore,
    SecureRemoteStore,
    ServiceBackedStrategy,
    SynonymFileStrategy,
)
from repro.services.datasources import StockDataService
from repro.stores.rdf.graph import RDFS


def main() -> None:
    world = build_world(seed=11, corpus_size=60)
    client = RichClient(world.registry)

    # -- 1. disambiguation ---------------------------------------------------
    disease_synonyms = SynonymFileStrategy.from_file_text(
        """
        # user-maintained synonyms for disease names
        grippe = D_influenza
        sugar diabetes = D_diabetes
        HTN = D_hypertension
        """
    )
    disambiguator = EntityDisambiguator(
        [disease_synonyms, ServiceBackedStrategy(client, "lexica-prime")]
    )
    kb = PersonalKnowledgeBase(
        client=client,
        disambiguator=disambiguator,
        spellchecker=LocalSpellChecker.from_texts(
            (doc.text for doc in world.corpus.documents), world.gazetteer
        ),
    )

    print("=== 1. One country, many names ===")
    report = disambiguator.canonicalize_stream(
        ["USA", "US", "United States", "America", "the States",
         "United States of America", "grippe", "HTN"]
    )
    print(f"  {report['distinct_surfaces']} distinct strings -> "
          f"{report['unique_entities']} unique entities")
    for surface, entity_id in report["mapping"].items():
        print(f"    {surface!r:<28} -> {entity_id}")

    # -- 2. ingest public data -------------------------------------------------
    print("\n=== 2. Ingest the US from three knowledge services ===")
    outcomes = kb.ingest_entity("US")
    for source, outcome in outcomes.items():
        print(f"  {source:<14} {outcome}")
    kb.add_fact("America", "repro:visited", "true")
    print(f"  facts about 'the States' (all aliases collapse): "
          f"{len(kb.facts_about('the States'))} statements")

    # -- 3. CSV -> relational -> RDF + reasoning ----------------------------------
    print("\n=== 3. Format conversion and RDFS reasoning ===")
    kb.ingest_csv_text(
        "readings",
        "city,month,temperature\nTokyo,1,5.1\nTokyo,7,26.9\nParis,1,4.5\nParis,7,20.2\n",
    )
    added = kb.table_to_rdf("readings")
    print(f"  readings table -> {added} RDF statements")
    # A small class hierarchy from the concept taxonomy:
    for child, parent in world.taxonomy.subclass_pairs():
        kb.graph.add((f"concept:{child}", RDFS.subClassOf, f"concept:{parent}"))
    inferred = kb.reason("rdfs")
    print(f"  RDFS reasoner materialized {inferred} entailed statements")
    hot = kb.query(
        [("?row", "repro:city", "?city"), ("?row", "repro:temperature", "?t")],
        variables=["?city", "?t"],
        filters=[lambda binding: binding["?t"] > 20],
    )
    print(f"  query: months above 20°C -> {hot}")

    # -- 4. Figure 5: analyze -> RDF -> infer -> export -----------------------------
    print("\n=== 4. Stock analysis feeding the inference engine ===")
    companies = ["IBM", "Acme Analytics", "Globex Corporation",
                 "Initech", "Hooli", "Cyberdyne Systems"]
    for company in companies:
        symbol = StockDataService.symbol_for(company)
        history = client.invoke("tickerfeed", "history",
                                {"symbol": symbol, "days": 120}).value
        entity = world.gazetteer.resolve(company)
        result = kb.pipeline.analyze_series(
            entity.entity_id, history["days"], history["closes"],
            series_name=f"stock:{symbol}", entity_type="Company",
        )
        print(f"  {company:<20} slope={result['slope']:+7.3f}/day "
              f"r²={result['r_squared']:.2f} trend={result['trend']}")
    new_facts = kb.pipeline.infer()
    print(f"  inference derived {new_facts} new facts; recommendations:")
    for subject, recommendation in sorted(kb.pipeline.recommendations().items()):
        name = world.gazetteer.get(subject).name
        print(f"    {name:<22} {recommendation}")

    # Inferred facts back out as CSV for external tools.
    csv_out = kb.export_table_csv("readings")
    print(f"  exported table as CSV ({len(csv_out.splitlines())} lines)")

    # -- 5. spell check + secure remote backup ---------------------------------------
    print("\n=== 5. Local spell check and encrypted remote backup ===")
    corrected = kb.correct_text("the compny anounced excellnt results")
    print(f"  corrections: {corrected['replacements']}")

    cipher = StreamCipher(derive_key("a strong passphrase", iterations=2_000))
    secure = SecureRemoteStore(client, "store-bulk", cipher)
    kb.remote = OfflineSyncStore(remote=secure)
    kb.backup_remote()
    print(f"  backup uploaded: {secure.stats.uploaded_bytes} bytes on the wire "
          f"for {secure.stats.plaintext_bytes} bytes of data "
          f"(compression saved {secure.stats.bytes_saved} bytes, "
          f"ratio {secure.stats.upload_ratio:.2f})")

    replica = PersonalKnowledgeBase(client=client,
                                    remote=OfflineSyncStore(remote=secure))
    replica.restore_remote()
    print(f"  restored on a second device: graph={len(replica.graph)} statements, "
          f"tables={replica.database.table_names()}")
    client.close()


if __name__ == "__main__":
    main()
