#!/usr/bin/env python3
"""Web sentiment monitor — the paper's §2.2 flagship use case.

"We have been using the rich SDK to determine how favorably people,
companies, and other entities are represented on the Web."

The scenario, end to end:

1. run the same query on several search engines and merge their
   results (engines crawl different slices of the web);
2. fetch every hit, archiving each document **with the query and the
   query time** (results drift, pages disappear);
3. pass each document to *multiple* NLU providers — one request per
   document, as real NLU APIs demand;
4. combine the providers' entity lists with agreement-based confidence
   and aggregate entity-level sentiment across all documents;
5. re-analyze the archived documents from disk, proving the analysis
   can be repeated later without the network.

Run:  python examples/web_sentiment_monitor.py
"""

import tempfile
from pathlib import Path

from repro import RichClient, WebSearchAnalyzer, build_world
from repro.core.aggregation import DocumentSetAggregator, MultiServiceCombiner
from repro.textproc.html import strip_html

QUERY = "company results announced"
NLU_PROVIDERS = ("lexica-prime", "glotta")


def main() -> None:
    world = build_world(seed=7, corpus_size=120)
    client = RichClient(world.registry)
    analyzer = WebSearchAnalyzer(client)

    print(f"=== Searching three engines for {QUERY!r} (news only) ===")
    urls = analyzer.multi_engine_search(QUERY, limit=8, news_only=True)
    for engine in ("goggle", "bung", "yahu"):
        crawl = world.service(engine).crawl_size
        print(f"  {engine:<8} crawl={crawl} pages")
    print(f"  merged unique results: {len(urls)}")

    print("\n=== Fetch, archive, analyze with two providers each ===")
    aggregator = DocumentSetAggregator()
    for url in urls:
        analyzer.fetch(url)  # archived with timestamp
        analyses = {
            provider: analyzer.analyze_url(url, provider)
            for provider in NLU_PROVIDERS
        }
        # Agreement-based confidence across providers (§2.1).
        combined_entities = MultiServiceCombiner.combine_entities(analyses)
        combined_sentiment = MultiServiceCombiner.combine_entity_sentiment(analyses)
        aggregator.add_analysis(
            {
                "entities": [
                    {**entity, "disambiguated": True} for entity in combined_entities
                ],
                "keywords": analyses[NLU_PROVIDERS[0]].get("keywords", []),
                "concepts": analyses[NLU_PROVIDERS[0]].get("concepts", []),
                "sentiment": analyses[NLU_PROVIDERS[0]].get("sentiment", {}),
                "entity_sentiment": combined_sentiment,
            }
        )

    print(f"  documents analyzed: {aggregator.documents_analyzed}")
    print("\n=== How favorably is each entity represented? ===")
    print(f"  {'entity':<24} {'type':<9} docs mentions  sentiment  verdict")
    for row in aggregator.entity_sentiment_report()[:10]:
        mean = row["mean_sentiment"]
        sentiment = f"{mean:+.2f}" if mean is not None else "  n/a"
        print(f"  {row['name']:<24} {row['type']:<9} "
              f"{row['documents']:>4} {row['mentions']:>8}  {sentiment:>9}  "
              f"{row['favorability']}")

    print("\n=== Most relevant keywords across the result set ===")
    for keyword, count, docs in aggregator.top_keywords(8):
        print(f"  {keyword:<16} count={count:<4} in {docs} documents")

    print("\n=== Replay offline from the local archive ===")
    with tempfile.TemporaryDirectory() as scratch:
        exported = analyzer.archive.export_to_directory(Path(scratch) / "snapshot")
        offline = analyzer.analyze_directory(Path(scratch) / "snapshot",
                                             nlu_service="lexica-prime")
        print(f"  exported {exported} archived documents to disk")
        print(f"  offline re-analysis covered {offline.documents_analyzed} documents; "
              f"top entity: {offline.top_entities(1)[0].name}")

    searches = analyzer.archive.searches(QUERY)
    print(f"\nArchive holds {len(searches)} searches for this query "
          f"(first at t={searches[0]['timestamp']:.2f}s) and "
          f"{len(analyzer.archive.document_urls())} documents.")
    print(f"Total spend: ${client.quota.total_cost():.4f} across "
          f"{sum(client.monitor.call_count(s) for s in client.monitor.services())} calls.")
    client.close()


if __name__ == "__main__":
    main()
