#!/usr/bin/env python3
"""Service selection: latency parameters, prediction and ranking.

Reproduces §2's storage-service story: "Service s1 may have the lowest
latency for storing small objects, while s2 may have the lowest latency
for storing large objects."  The SDK learns each service's latency *as
a function of object size* from its own monitoring history, fits a
regression, predicts per-request latency, finds the crossover, and
routes every request to the predicted-fastest store.  It then contrasts
Equation 1, Equation 2 and a custom formula for ranking.

Run:  python examples/service_selection.py
"""

from repro import RichClient, Weights, build_world

STORES = ("store-small-fast", "store-bulk", "store-standard")


def train(client: RichClient, sizes: list[int]) -> None:
    """Give the monitor (size, latency) observations for every store."""
    for size in sizes:
        payload_value = "x" * size
        for store in STORES:
            client.invoke(store, "put", {"key": f"train-{size}", "value": payload_value})


def main() -> None:
    world = build_world(seed=3)
    client = RichClient(world.registry)

    print("=== Training: store objects of many sizes on all three stores ===")
    train(client, sizes=[100, 500, 1_000, 5_000, 10_000, 20_000, 50_000, 100_000])
    for store in STORES:
        model = client.predictor.model_summary(store)
        print(f"  {store:<18} latency ≈ {model['intercept'] * 1000:7.1f} ms "
              f"+ {model['slope'] * 1e6:6.2f} µs/byte   (r²={model['r_squared']:.3f})")

    crossover = client.predictor.crossover("store-small-fast", "store-bulk")
    print(f"\nPredicted s1/s2 crossover: objects of ~{crossover / 1024:.1f} KiB")

    print("\n=== Routing by predicted latency ===")
    print(f"  {'object size':>12}  predicted-fastest store")
    for size in (200, 2_000, 8_000, 15_000, 40_000, 200_000):
        best = client.best_service(
            "storage", latency_params={"size": float(size)},
            weights=Weights(response_time=1.0, cost=0.0, quality=0.0),
        )
        print(f"  {size:>10} B  {best}")

    print("\n=== Ranking formulas (Equations 1 and 2, and a custom one) ===")
    params = {"size": 10_000.0}
    for formula in ("weighted", "normalized"):
        ranked = client.rank_services(
            "storage", latency_params=params, formula=formula,
            weights=Weights(response_time=1.0, cost=50.0, quality=0.0),
        )
        rows = ", ".join(f"{name}={score:.4f}" for name, score in ranked)
        print(f"  {formula:<10} {rows}")

    def cheapest_first(estimate, candidates):
        """Custom formula: ignore everything except monetary cost."""
        return estimate.cost

    ranked = client.rank_services("storage", latency_params=params,
                                  formula=cheapest_first)
    print(f"  custom     {', '.join(f'{name}={score:.6f}' for name, score in ranked)}")

    print("\n=== Weight sensitivity: latency-dominant vs cost-dominant ===")
    for label, weights in (
        ("latency-dominant", Weights(response_time=1.0, cost=0.0, quality=0.0)),
        ("cost-dominant", Weights(response_time=0.0, cost=1.0, quality=0.0)),
    ):
        best = client.best_service("storage", latency_params={"size": 50_000.0},
                                   weights=weights)
        print(f"  {label:<17} -> {best}")

    client.close()


if __name__ == "__main__":
    main()
