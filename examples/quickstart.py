#!/usr/bin/env python3
"""Quickstart: the Rich SDK in five minutes.

Builds the simulated world, then walks the SDK's headline features one
by one: plain invocation, caching, monitoring, ranking, failover,
asynchronous calls with callbacks, and a taste of the NLU layer.

Run:  python examples/quickstart.py
"""

from repro import RichClient, Weights, build_world
from repro.services.base import NeverFails, ScriptedFailures


def main() -> None:
    world = build_world(seed=42, corpus_size=60)
    client = RichClient(world.registry)

    print("=== 1. Invoke a cognitive service ===")
    text = ("IBM announced excellent quarterly results and analysts praised "
            "its innovative cloud strategy. Meanwhile Initech suffered a "
            "terrible setback after a product recall.")
    result = client.invoke("lexica-prime", "analyze", {"text": text})
    print(f"latency={result.latency * 1000:.1f} ms  cost=${result.cost:.4f}")
    for entity in result.value["entities"]:
        print(f"  entity: {entity['name']:<22} ({entity['type']}) "
              f"mentions={entity['count']}")
    print(f"  document sentiment: {result.value['sentiment']}")
    for entity_id, detail in result.value["entity_sentiment"].items():
        print(f"  entity sentiment: {entity_id:<10} {detail['label']:<9} "
              f"score={detail['score']:+.2f}")

    print("\n=== 2. Caching makes the second call free ===")
    repeat = client.invoke("lexica-prime", "analyze", {"text": text})
    print(f"cached={repeat.cached}  latency={repeat.latency * 1000:.1f} ms  "
          f"cost=${repeat.cost:.4f}")

    print("\n=== 3. Monitor every provider, then rank them ===")
    sample_docs = [doc.text for doc in world.corpus.documents[:8]]
    for provider in ("lexica-prime", "glotta", "wordsmith-lite"):
        for doc_text in sample_docs:
            client.invoke(provider, "analyze", {"text": doc_text}, use_cache=False)
    for summary in client.service_summaries():
        if summary["calls"]:
            print(f"  {summary['service']:<16} calls={summary['calls']:<3} "
                  f"mean latency={summary['mean_latency'] * 1000:6.1f} ms  "
                  f"mean cost=${summary['mean_cost']:.4f}")
    fast_and_cheap = Weights(response_time=1.0, cost=200.0, quality=0.0)
    print("  ranking (latency + cost):",
          [name for name, _ in client.rank_services("nlu", weights=fast_and_cheap)])

    print("\n=== 4. Failover when the best service goes down ===")
    world.service("wordsmith-lite").failures = ScriptedFailures(set(range(50)))
    served = client.invoke_with_failover(
        "nlu", "analyze", {"text": "Globex thrives."},
        weights=fast_and_cheap, use_cache=False,
    )
    print(f"  served by: {served.service} after "
          f"{len(served.attempts)} attempt(s) across services")
    world.service("wordsmith-lite").failures = NeverFails()  # service recovers

    print("\n=== 5. Asynchronous calls with a ListenableFuture callback ===")
    future = client.invoke_async(
        "store-standard", "put", {"key": "report-1", "value": {"status": "done"}}
    )
    future.add_listener(
        lambda completed: print(f"  [callback] store completed: "
                                f"{completed.get().value}")
    )
    future.get()

    print("\n=== 6. Search the (simulated) web and aggregate sentiment ===")
    from repro import WebSearchAnalyzer

    analyzer = WebSearchAnalyzer(client)
    aggregate = analyzer.analyze_search_results("excellent results", limit=6)
    for row in aggregate.entity_sentiment_report()[:5]:
        mean = row["mean_sentiment"]
        print(f"  {row['name']:<24} docs={row['documents']} "
              f"sentiment={mean:+.2f}" if mean is not None else
              f"  {row['name']:<24} docs={row['documents']}")

    print(f"\nTotal simulated time elapsed: {client.clock.now():.2f} s; "
          f"total spend: ${client.quota.total_cost():.4f}")
    client.close()


if __name__ == "__main__":
    main()
