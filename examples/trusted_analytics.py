#!/usr/bin/env python3
"""Accuracy-aware analytics — the paper's §5 future work, working.

"We would like ways of determining accuracy levels of data stored
within the personalized knowledge base, using these accuracy levels
during the process of inferring new facts, and assigning accuracy
levels to newly inferred facts."

This example builds an investment screen over the simulated market
feed where:

* each regression's trend fact carries a confidence equal to its r²;
* facts ingested from different sources carry per-source trust priors
  (a second, corroborating source strengthens a fact via noisy-OR);
* the rulebase propagates confidence (Gödel t-norm × rule strength);
* the final screen only surfaces recommendations above a confidence
  threshold — and can explain where each one came from.

Run:  python examples/trusted_analytics.py
"""

from repro import RichClient, build_world
from repro.kb.trust import TrustAwarePipeline
from repro.services.datasources import StockDataService
from repro.stores.rdf.graph import REPRO, Triple


def main() -> None:
    world = build_world(seed=101, corpus_size=20)
    client = RichClient(world.registry)
    pipeline = TrustAwarePipeline(confidence_floor=0.2)

    print("=== 1. Regress every company; confidence = goodness of fit ===")
    companies = world.gazetteer.entities_of_type("Company")
    print(f"  {'company':<22} {'trend':<8} {'r²':>6}  {'confidence':>10}")
    for entity in companies:
        symbol = StockDataService.symbol_for(entity.name)
        history = client.invoke("tickerfeed", "history",
                                {"symbol": symbol, "days": 150}).value
        result = pipeline.analyze_series(entity.entity_id, history["days"],
                                         history["closes"],
                                         entity_type="Company")
        print(f"  {entity.name:<22} {result['trend']:<8} "
              f"{result['r_squared']:>6.2f}  {result['trend_confidence']:>10.2f}")

    print("\n=== 2. Corroborate two trends from an analyst source ===")
    analyst_calls = {"C_acme": "rising", "C_hooli": "rising"}
    for entity_id, trend in analyst_calls.items():
        before = pipeline.store.confidence(Triple(entity_id, REPRO.trend, trend))
        after = pipeline.assert_from_source(
            Triple(entity_id, REPRO.trend, trend), "user", confidence=0.85)
        name = world.gazetteer.get(entity_id).name
        print(f"  {name}: trend confidence {before:.2f} -> {after:.2f} "
              f"(noisy-OR corroboration)")

    print("\n=== 3. Inference propagates the accuracy levels ===")
    derived = pipeline.infer()
    print(f"  rules derived {derived} new facts, each with its own confidence")

    print("\n=== 4. The screen, at two confidence thresholds ===")
    for threshold in (0.0, 0.55):
        screen = pipeline.recommendations(min_confidence=threshold)
        names = {world.gazetteer.get(subject).name: detail
                 for subject, detail in screen.items()}
        print(f"  threshold {threshold:.2f}: {len(screen)} recommendations")
        for name, detail in sorted(names.items()):
            print(f"    {name:<22} {detail['recommendation']:<22} "
                  f"confidence={detail['confidence']:.2f}")

    print("\n=== 5. Explain one conclusion ===")
    subject = max(pipeline.recommendations(), key=lambda s:
                  pipeline.recommendations()[s]["confidence"])
    name = world.gazetteer.get(subject).name
    recommendation = pipeline.recommendations()[subject]["recommendation"]
    explanation = pipeline.explain(Triple(subject, REPRO.recommendation,
                                          recommendation))
    trend_triple = pipeline.store.match(subject, REPRO.trend, None)[0][0]
    print(f"  {name} -> {recommendation}")
    print(f"    conclusion confidence: {explanation['confidence']}")
    print(f"    derived by: {explanation['sources']}")
    print(f"    from trend fact {trend_triple.object!r} with confidence "
          f"{pipeline.store.confidence(trend_triple):.2f} "
          f"(sources: {sorted(pipeline.store.sources(trend_triple))})")
    client.close()


if __name__ == "__main__":
    main()
