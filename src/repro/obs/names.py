"""Single source of truth for metric and span names.

Every instrument the SDK registers and every span it opens takes its
name from a constant defined here — never a string literal at the call
site.  The RA005 analysis rule (``python -m repro.analysis``) enforces
both directions: call sites must reference this module, and every
constant defined here must appear in ``docs/observability.md``, so the
names operators alert on cannot drift from either the code or the docs.

Constants are plain module-level ``UPPER_CASE = "literal"`` assignments
on purpose: the rule reads this file with ``ast`` and only recognizes
that shape (no f-strings, no concatenation), keeping the registry
trivially greppable.
"""

from __future__ import annotations

# -- SDK invocation path (monitor choke point) ---------------------------------
SDK_INVOCATIONS_TOTAL = "sdk_invocations_total"
SDK_INVOCATION_LATENCY_SECONDS = "sdk_invocation_latency_seconds"

# -- cache ---------------------------------------------------------------------
CACHE_HITS_TOTAL = "cache_hits_total"
CACHE_MISSES_TOTAL = "cache_misses_total"
CACHE_EVICTIONS_TOTAL = "cache_evictions_total"
CACHE_EXPIRATIONS_TOTAL = "cache_expirations_total"
CACHE_INVALIDATIONS_TOTAL = "cache_invalidations_total"
CACHE_STALE_SERVES_TOTAL = "cache_stale_serves_total"

# -- request coalescing --------------------------------------------------------
COALESCE_FLIGHTS_TOTAL = "coalesce_flights_total"
COALESCE_HITS_TOTAL = "coalesce_hits_total"
COALESCE_CANCELLED_TOTAL = "coalesce_cancelled_total"

# -- micro-batching ------------------------------------------------------------
BATCH_FLUSHES_TOTAL = "batch_flushes_total"
BATCH_ITEMS_TOTAL = "batch_items_total"
BATCH_SIZE = "batch_size"

# -- admission control ---------------------------------------------------------
ADMISSION_INFLIGHT = "admission_inflight"
ADMISSION_QUEUE_DEPTH = "admission_queue_depth"
ADMISSION_ADMITTED_TOTAL = "admission_admitted_total"
ADMISSION_SHED_TOTAL = "admission_shed_total"
ADMISSION_QUEUE_WAIT_SECONDS_TOTAL = "admission_queue_wait_seconds_total"

# -- tenancy -------------------------------------------------------------------
TENANT_REQUESTS_TOTAL = "tenant_requests_total"
TENANT_REJECTED_TOTAL = "tenant_rejected_total"
TENANT_COST_TOTAL = "tenant_cost_total"
ADMISSION_FAIR_GRANTS_TOTAL = "admission_fair_grants_total"

# -- retry / failover ----------------------------------------------------------
RETRY_BACKOFF_SECONDS_TOTAL = "retry_backoff_seconds_total"
FAILOVER_EXHAUSTED_TOTAL = "failover_exhausted_total"

# -- deadlines / degradation ---------------------------------------------------
DEADLINE_EXPIRED_TOTAL = "deadline_expired_total"
DEGRADED_RESPONSES_TOTAL = "degraded_responses_total"

# -- circuit breaker -----------------------------------------------------------
CIRCUIT_TRANSITIONS_TOTAL = "circuit_transitions_total"
CIRCUIT_REJECTED_TOTAL = "circuit_rejected_total"

# -- chaos harness -------------------------------------------------------------
CHAOS_FAULTS_INJECTED_TOTAL = "chaos_faults_injected_total"

# -- hedging -------------------------------------------------------------------
HEDGE_REQUESTS_TOTAL = "hedge_requests_total"
HEDGES_FIRED_TOTAL = "hedges_fired_total"
HEDGE_WINS_TOTAL = "hedge_wins_total"

# -- simulated transport -------------------------------------------------------
TRANSPORT_CALLS_TOTAL = "transport_calls_total"
TRANSPORT_BYTES_SENT_TOTAL = "transport_bytes_sent_total"
TRANSPORT_BYTES_RECEIVED_TOTAL = "transport_bytes_received_total"
TRANSPORT_TIMEOUTS_TOTAL = "transport_timeouts_total"
TRANSPORT_OFFLINE_FAILURES_TOTAL = "transport_offline_failures_total"

# -- storage backends / sharding -----------------------------------------------
KB_SHARD_SCANS_TOTAL = "kb_shard_scans_total"
KB_SHARD_FANOUT_MS = "kb_shard_fanout_ms"
STORAGE_BACKEND_OPS_TOTAL = "storage_backend_ops_total"

# -- knowledge base / reasoning ------------------------------------------------
KB_QUERIES_TOTAL = "kb_queries_total"
KB_SERIES_ANALYZED_TOTAL = "kb_series_analyzed_total"
KB_FACTS_INFERRED_TOTAL = "kb_facts_inferred_total"
KB_INFER_FULL_TOTAL = "kb_infer_full_total"
KB_INFER_DELTA_TOTAL = "kb_infer_delta_total"
RDF_MATERIALIZE_DELTA_TOTAL = "rdf_materialize_delta_total"
RDF_MATERIALIZE_FULL_TOTAL = "rdf_materialize_full_total"
RDF_QUERY_CACHE_HITS_TOTAL = "rdf_query_cache_hits_total"
RDF_QUERY_CACHE_MISSES_TOTAL = "rdf_query_cache_misses_total"

# -- span names ----------------------------------------------------------------
SPAN_SDK_INVOKE = "sdk.invoke"
SPAN_SDK_INVOKE_BATCH = "sdk.invoke_batch"
SPAN_SDK_INVOKE_WITH_FAILOVER = "sdk.invoke_with_failover"
SPAN_SDK_HEDGED_INVOKE = "sdk.hedged_invoke"
SPAN_FAILOVER_ATTEMPT = "failover.attempt"
SPAN_TRANSPORT_CALL = "transport.call"
SPAN_KB_QUERY = "kb.query"
SPAN_KB_SHARD_SCAN = "kb.shard.scan"
SPAN_KB_INFER = "kb.infer"
SPAN_KB_ANALYZE_SERIES = "kb.analyze_series"
SPAN_CHAOS_SCENARIO = "chaos.scenario"


def all_names() -> dict[str, str]:
    """Every registered constant: ``CONSTANT_NAME -> value``."""
    return {key: value for key, value in globals().items()
            if key.isupper() and isinstance(value, str)}


def all_values() -> frozenset[str]:
    """The set of registered metric and span name strings."""
    return frozenset(all_names().values())
