"""Spans and tracing for the Rich SDK hot path.

A :class:`Span` is one timed operation (an SDK invocation, a failover
attempt, a transport round trip); spans nest into traces via
parent/child links so a slow call can be decomposed into *where* the
time went — cache probe, retry backoff, simulated wire, hedge wait.

Design points:

* **Timing comes from the SDK's** :class:`~repro.util.clock.Clock`
  abstraction, so spans measure *simulated* seconds under a
  :class:`ManualClock` (deterministic tests) and scaled wall seconds
  under a :class:`RealClock` — the same units every other collector in
  the system reports.
* **Context propagation uses contextvars**, and
  :class:`repro.core.futures.CallbackExecutor` submits work inside a
  copied context, so a span started before ``invoke_async`` is still
  the parent of spans created on a pool thread.
* **Collection is bounded**: the :class:`SpanCollector` keeps the most
  recent ``capacity`` completed spans and counts what it dropped, so a
  long-running client cannot leak memory through its own telemetry.
* **Zero-latency cache hits are counted, not traced**, unless they
  occur inside an active trace (then they appear as zero-duration
  child spans).  This keeps the cache-hit fast path within the
  overhead budget asserted by ``benchmarks/test_obs_overhead.py``.

Span ids are small process-local counters (``t…`` for traces, ``s…``
for spans) rather than random UUIDs: deterministic under a seeded
single-threaded run and much cheaper to mint.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from collections.abc import Mapping
from contextlib import contextmanager
from contextvars import ContextVar

from repro.util.clock import Clock, SYSTEM_CLOCK

#: Attribute key marking what a span's time should be attributed to
#: (see :mod:`repro.obs.attribution`).
CATEGORY_ATTRIBUTE = "obs.category"

_CURRENT_SPAN: ContextVar["Span | None"] = ContextVar(
    "repro_obs_current_span", default=None)


class SpanEvent:
    """A timestamped point annotation inside a span."""

    __slots__ = ("name", "timestamp", "attributes")

    def __init__(self, name: str, timestamp: float,
                 attributes: Mapping[str, object] | None = None) -> None:
        self.name = name
        self.timestamp = timestamp
        self.attributes = dict(attributes) if attributes else {}

    def to_dict(self) -> dict:
        return {"name": self.name, "timestamp": self.timestamp,
                "attributes": self.attributes}


class Span:
    """One timed, attributed operation within a trace."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start_time",
                 "end_time", "attributes", "events", "status", "error",
                 "_clock")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: str | None, start_time: float,
                 attributes: Mapping[str, object] | None = None,
                 clock: Clock | None = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_time = start_time
        self.end_time: float | None = None
        self.attributes = dict(attributes) if attributes else {}
        self.events: list[SpanEvent] = []
        self.status = "unset"
        self.error: str | None = None
        self._clock = clock

    @property
    def is_recording(self) -> bool:
        return self.end_time is None

    @property
    def duration(self) -> float | None:
        """Seconds between start and end, or None while still open."""
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    def set_attribute(self, key: str, value: object) -> "Span":
        self.attributes[key] = value
        return self

    def add_event(self, name: str, attributes: Mapping[str, object] | None = None,
                  timestamp: float | None = None) -> SpanEvent:
        if timestamp is None:
            timestamp = self._clock.now() if self._clock is not None else self.start_time
        event = SpanEvent(name, timestamp, attributes)
        self.events.append(event)
        return event

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "attributes": self.attributes,
            "events": [event.to_dict() for event in self.events],
        }


class NullSpan:
    """Shared no-op span handed out when tracing is disabled."""

    __slots__ = ()

    trace_id = None
    span_id = None
    parent_id = None
    status = "unset"
    error = None
    is_recording = False
    duration = None

    def set_attribute(self, key: str, value: object) -> "NullSpan":
        return self

    def add_event(self, name: str, attributes: Mapping[str, object] | None = None,
                  timestamp: float | None = None) -> None:
        return None


NULL_SPAN = NullSpan()


class SpanCollector:
    """Bounded, thread-safe store of completed spans with JSONL export."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._spans: deque[Span] = deque()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def add(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.capacity:
                self._spans.popleft()
                self.dropped += 1
            self._spans.append(span)

    def spans(self) -> list[Span]:
        """Completed spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def traces(self) -> dict[str, list[Span]]:
        """Spans grouped by trace id, in collection order."""
        grouped: dict[str, list[Span]] = {}
        for span in self.spans():
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def trace(self, trace_id: str) -> list[Span]:
        return [span for span in self.spans() if span.trace_id == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def export_jsonl(self, path) -> int:
        """Write one JSON object per span to ``path``; returns the count."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.to_dict(), sort_keys=True))
                handle.write("\n")
        return len(spans)


class Tracer:
    """Creates, propagates and collects spans against one clock."""

    def __init__(self, clock: Clock | None = None,
                 collector: SpanCollector | None = None,
                 enabled: bool = True) -> None:
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.collector = collector if collector is not None else SpanCollector()
        self.enabled = enabled
        self._id_lock = threading.Lock()
        self._next_id = 0

    def _new_id(self, prefix: str) -> str:
        with self._id_lock:
            self._next_id += 1
            serial = self._next_id
        return f"{prefix}{serial:08x}"

    # -- context ------------------------------------------------------------

    def current_span(self) -> Span | None:
        """The span active in this execution context, if any."""
        return _CURRENT_SPAN.get()

    def current_trace_id(self) -> str | None:
        span = _CURRENT_SPAN.get()
        return span.trace_id if span is not None else None

    # -- span lifecycle ------------------------------------------------------

    def start_span(self, name: str,
                   attributes: Mapping[str, object] | None = None,
                   parent: Span | None | str = "inherit") -> Span:
        """Start (but do not activate) a span; pair with :meth:`end_span`.

        By default the parent is the context's current span; pass
        ``parent=None`` to force a new root.
        """
        if parent == "inherit":
            parent = _CURRENT_SPAN.get()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = self._new_id("t"), None
        return Span(name, trace_id, self._new_id("s"), parent_id,
                    self.clock.now(), attributes, clock=self.clock)

    def end_span(self, span: Span, error: BaseException | None = None) -> None:
        """Close a span and hand it to the collector."""
        if error is not None:
            span.status = "error"
            span.error = repr(error)
        elif span.status == "unset":
            span.status = "ok"
        span.end_time = self.clock.now()
        self.collector.add(span)

    @contextmanager
    def span(self, name: str, attributes: Mapping[str, object] | None = None):
        """Context manager: start a span, make it current, end on exit.

        Exceptions mark the span's status ``error`` and re-raise."""
        if not self.enabled:
            yield NULL_SPAN
            return
        span = self.start_span(name, attributes)
        token = _CURRENT_SPAN.set(span)
        try:
            yield span
        except BaseException as boom:  # noqa: BLE001 — recorded then re-raised
            span.status = "error"
            span.error = repr(boom)
            raise
        finally:
            _CURRENT_SPAN.reset(token)
            if span.status == "unset":
                span.status = "ok"
            span.end_time = self.clock.now()
            self.collector.add(span)

    def instant_span(self, name: str,
                     attributes: Mapping[str, object] | None = None,
                     timestamp: float | None = None,
                     parent: Span | None | str = "inherit") -> Span | None:
        """Record a zero-duration span (e.g. a cache hit inside a trace).

        Cheaper than :meth:`span`: one timestamp, no contextvar churn.
        Returns None when tracing is disabled.
        """
        if not self.enabled:
            return None
        if parent == "inherit":
            parent = _CURRENT_SPAN.get()
        if timestamp is None:
            timestamp = self.clock.now()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = self._new_id("t"), None
        span = Span(name, trace_id, self._new_id("s"), parent_id,
                    timestamp, attributes, clock=self.clock)
        span.end_time = timestamp
        span.status = "ok"
        self.collector.add(span)
        return span

    def add_event(self, name: str,
                  attributes: Mapping[str, object] | None = None) -> None:
        """Attach an event to the current span (no-op outside a span)."""
        if not self.enabled:
            return
        span = _CURRENT_SPAN.get()
        if span is not None:
            span.add_event(name, attributes)
