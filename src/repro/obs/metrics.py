"""Fleet-level metrics: counters, gauges and bucketed histograms.

The Rich SDK "collect[s] data on services related to performance,
availability, and the quality and accuracy of responses"; the
:class:`ServiceMonitor` keeps the per-call records, and this module
keeps the *aggregate* view a fleet operator scrapes: monotonic
counters, point-in-time gauges and bucketed latency histograms, all
thread-safe and renderable as Prometheus-style text exposition.

Histogram buckets are built on :class:`repro.analytics.histogram.Histogram`
(equal-width bins plus under/overflow), so the same distribution a user
compares interactively is what gets exported.

Hot-path note: ``Counter.bind`` / ``Histogram`` label resolution happens
once, up front; the per-call cost of an increment is one small lock and
one float add, which is what lets the SDK keep its cache-hit fast path
within the observability overhead budget (see
``benchmarks/test_obs_overhead.py``).
"""

from __future__ import annotations

import threading
from collections.abc import Mapping

from repro.analytics.histogram import Histogram
from repro.util.errors import ConfigurationError

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    if not labels:
        return ()
    return tuple(sorted((str(name), str(value)) for name, value in labels.items()))


def _format_labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Metric:
    """Common naming/locking for all instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, description: str = "") -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ConfigurationError(f"invalid metric name {name!r}")
        self.name = name
        self.description = description
        self._lock = threading.Lock()

    def header_lines(self) -> list[str]:
        lines = []
        if self.description:
            lines.append(f"# HELP {self.name} {self.description}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class BoundCounter:
    """A counter pre-resolved to one label set — the hot-path handle.

    ``inc`` is a single ``list.append`` (atomic under the GIL, no lock):
    increments accumulate in a pending cell that the owning counter
    drains lazily on any read.  This is what keeps counted-but-untraced
    cache hits inside the SDK's observability overhead budget.
    """

    __slots__ = ("_pending",)

    def __init__(self, counter: "Counter", key: LabelKey) -> None:
        self._pending = counter._pending_cell(key)

    def inc(self, amount: float = 1.0) -> None:
        self._pending.append(amount)


class Counter(Metric):
    """Monotonically increasing count, optionally partitioned by labels."""

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._values: dict[LabelKey, float] = {}
        # One shared append-only cell per label set for BoundCounters.
        self._pending: dict[LabelKey, list[float]] = {}

    def _pending_cell(self, key: LabelKey) -> list[float]:
        with self._lock:
            return self._pending.setdefault(key, [])

    def _drain(self) -> None:
        """Fold pending bound increments into _values.  Caller holds the
        lock; appends racing this are safe (they only extend the tail,
        and exactly the summed prefix is deleted)."""
        for key, cell in self._pending.items():
            count = len(cell)
            if count:
                self._values[key] = self._values.get(key, 0.0) + sum(cell[:count])
                del cell[:count]

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount}")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def bind(self, **labels: object) -> BoundCounter:
        """Pre-resolve one label set for cheap repeated increments."""
        return BoundCounter(self, _label_key(labels))

    def value(self, **labels: object) -> float:
        key = _label_key(labels)
        with self._lock:
            self._drain()
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        with self._lock:
            self._drain()
            return sum(self._values.values())

    def series(self) -> dict[LabelKey, float]:
        with self._lock:
            self._drain()
            return dict(self._values)

    def render_lines(self) -> list[str]:
        lines = self.header_lines()
        series = self.series()
        for key in sorted(series):
            lines.append(f"{self.name}{_format_labels(key)} {series[key]:g}")
        if not series:
            lines.append(f"{self.name} 0")
        return lines


class Gauge(Metric):
    """A value that can go up and down (pool depth, open circuits, ...)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def series(self) -> dict[LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def render_lines(self) -> list[str]:
        lines = self.header_lines()
        series = self.series()
        for key in sorted(series):
            lines.append(f"{self.name}{_format_labels(key)} {series[key]:g}")
        if not series:
            lines.append(f"{self.name} 0")
        return lines


class _HistogramCell:
    """One label set's distribution: an analytics Histogram plus a sum."""

    __slots__ = ("histogram", "sum")

    def __init__(self, low: float, high: float, bins: int) -> None:
        self.histogram = Histogram(low, high, bins)
        self.sum = 0.0


class HistogramMetric(Metric):
    """Bucketed distribution with Prometheus cumulative-bucket exposition.

    Buckets reuse :class:`repro.analytics.histogram.Histogram`: equal-width
    bins over ``[low, high]``; values below ``low`` land in the first
    cumulative bucket, values above ``high`` only in ``+Inf``.
    """

    kind = "histogram"

    def __init__(self, name: str, description: str = "",
                 low: float = 0.0, high: float = 1.0, bins: int = 20) -> None:
        super().__init__(name, description)
        self.low = low
        self.high = high
        self.bins = bins
        self._cells: dict[LabelKey, _HistogramCell] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = _HistogramCell(self.low, self.high, self.bins)
                self._cells[key] = cell
            cell.histogram.add(value)
            cell.sum += value

    def count(self, **labels: object) -> int:
        with self._lock:
            cell = self._cells.get(_label_key(labels))
            return cell.histogram.total if cell else 0

    def sum(self, **labels: object) -> float:
        with self._lock:
            cell = self._cells.get(_label_key(labels))
            return cell.sum if cell else 0.0

    def buckets(self, **labels: object) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending with +Inf."""
        with self._lock:
            cell = self._cells.get(_label_key(labels))
            if cell is None:
                return [(float("inf"), 0)]
            return self._cumulative(cell)

    @staticmethod
    def _cumulative(cell: _HistogramCell) -> list[tuple[float, int]]:
        histogram = cell.histogram
        edges = histogram.bin_edges()[1:]
        running = histogram.underflow
        pairs = []
        for edge, count in zip(edges, histogram.counts):
            running += count
            pairs.append((edge, running))
        pairs.append((float("inf"), histogram.total))
        return pairs

    def to_histogram(self, **labels: object) -> Histogram | None:
        """The underlying analytics histogram (for ASCII rendering etc.)."""
        with self._lock:
            cell = self._cells.get(_label_key(labels))
            return cell.histogram if cell else None

    def series(self) -> dict[LabelKey, _HistogramCell]:
        with self._lock:
            return dict(self._cells)

    def render_lines(self) -> list[str]:
        lines = self.header_lines()
        for key in sorted(self.series()):
            with self._lock:
                cell = self._cells[key]
                pairs = self._cumulative(cell)
                total, observed_sum = cell.histogram.total, cell.sum
            for edge, cumulative in pairs:
                label = "+Inf" if edge == float("inf") else f"{edge:g}"
                le = f'le="{label}"'
                lines.append(
                    f"{self.name}_bucket"
                    f"{_format_labels(key, extra=le)} {cumulative}")
            lines.append(f"{self.name}_sum{_format_labels(key)} {observed_sum:g}")
            lines.append(f"{self.name}_count{_format_labels(key)} {total}")
        return lines


class MetricsRegistry:
    """Named instruments, created on first use and scraped as one page."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory, kind: str) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {kind}")
            return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, description), "counter")

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name, description), "gauge")

    def histogram(self, name: str, description: str = "",
                  low: float = 0.0, high: float = 1.0,
                  bins: int = 20) -> HistogramMetric:
        return self._get_or_create(
            name, lambda: HistogramMetric(name, description, low, high, bins),
            "histogram")

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """Prometheus-style text exposition of every registered metric."""
        lines: list[str] = []
        for name in self.names():
            metric = self.get(name)
            lines.extend(metric.render_lines())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """JSON-safe dump: the gateway's ``metrics`` method returns this."""
        out: dict[str, dict] = {}
        for name in self.names():
            metric = self.get(name)
            entry: dict[str, object] = {
                "kind": metric.kind, "description": metric.description}
            if isinstance(metric, (Counter, Gauge)):
                entry["values"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(metric.series().items())
                ]
            elif isinstance(metric, HistogramMetric):
                entry["values"] = [
                    {
                        "labels": dict(key),
                        "count": cell.histogram.total,
                        "sum": cell.sum,
                        "buckets": [
                            {"le": ("+Inf" if edge == float("inf") else edge),
                             "count": cumulative}
                            for edge, cumulative in metric._cumulative(cell)
                        ],
                    }
                    for key, cell in sorted(metric.series().items())
                ]
            out[name] = entry
        return out
