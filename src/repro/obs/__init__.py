"""repro.obs — tracing and metrics observability for the Rich SDK.

Three pieces, one bundle:

* :mod:`repro.obs.tracing` — :class:`Span`/:class:`Tracer` with
  parent/child context propagation (contextvars, surviving the SDK's
  thread pool) and a bounded :class:`SpanCollector` with JSONL export;
* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters, gauges and bucketed histograms with Prometheus-style text
  exposition;
* :mod:`repro.obs.attribution` — a :class:`TraceAnalyzer` that rolls
  completed traces into latency-attribution reports (share of wall
  time in cache / retry-backoff / transport / hedge-wait).

:class:`Observability` bundles one of each around a shared clock and
is what :class:`repro.core.invoker.RichClient` wires through the hot
path.  ``Observability.disabled()`` gives a no-op bundle for callers
that want zero telemetry overhead.
"""

from __future__ import annotations

from repro.obs.attribution import (
    CATEGORY_BACKOFF,
    CATEGORY_CACHE,
    CATEGORY_HEDGE_WAIT,
    CATEGORY_OTHER,
    CATEGORY_TRANSPORT,
    EVENT_BACKOFF,
    EVENT_HEDGE_WAIT,
    TraceAnalyzer,
    TraceAttribution,
    attribute_trace,
)
from repro.obs.metrics import (
    BoundCounter,
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
)
from repro.obs.tracing import (
    CATEGORY_ATTRIBUTE,
    NULL_SPAN,
    Span,
    SpanCollector,
    SpanEvent,
    Tracer,
)
from repro.util.clock import Clock


class Observability:
    """One tracer + one metrics registry + one span collector.

    All components share ``clock`` so traces, histograms and the
    simulated network agree on what a second is.
    """

    def __init__(self, clock: Clock | None = None, max_spans: int = 4096,
                 enabled: bool = True) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.collector = SpanCollector(capacity=max_spans)
        self.tracer = Tracer(clock=clock, collector=self.collector,
                             enabled=enabled)

    @classmethod
    def disabled(cls) -> "Observability":
        """A bundle whose tracer is a no-op and whose hooks never bind."""
        return cls(enabled=False)

    def analyzer(self) -> TraceAnalyzer:
        """A latency-attribution analyzer over the collected spans."""
        return TraceAnalyzer(self.collector)


__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "SpanEvent",
    "SpanCollector",
    "NULL_SPAN",
    "CATEGORY_ATTRIBUTE",
    "MetricsRegistry",
    "Counter",
    "BoundCounter",
    "Gauge",
    "HistogramMetric",
    "TraceAnalyzer",
    "TraceAttribution",
    "attribute_trace",
    "CATEGORY_TRANSPORT",
    "CATEGORY_CACHE",
    "CATEGORY_BACKOFF",
    "CATEGORY_HEDGE_WAIT",
    "CATEGORY_OTHER",
    "EVENT_BACKOFF",
    "EVENT_HEDGE_WAIT",
]
