"""Latency attribution: where did a traced call spend its wall time?

The paper's motivation for monitoring is choosing and debugging
services by "performance, availability, and the quality and accuracy of
responses".  A flat latency number cannot distinguish a slow wire from
an over-eager retry policy; this analyzer rolls a completed trace into
a per-category, per-service breakdown:

* ``transport``   — time inside :meth:`repro.simnet.transport.Transport.call`
  (spans tagged ``obs.category == "transport"``);
* ``retry-backoff`` — time slept between failover attempts
  (``retry.backoff`` span events carrying a ``seconds`` attribute);
* ``hedge-wait``  — time a hedged invoker spent waiting on a slow
  primary before firing its backup (``hedge.wait`` events);
* ``cache``       — time inside cache probes (zero under simulated
  clocks, but the category exists so real-clock deployments can see it);
* ``other``       — whatever remains of the root span's wall time
  (ranking, serialization, SDK bookkeeping).

All times are in the simulation's seconds, because spans are timed off
the same :class:`~repro.util.clock.Clock` the transport charges — which
is what lets tests assert the attribution reconciles with the
simnet-charged latencies to within rounding.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.obs.tracing import CATEGORY_ATTRIBUTE, Span, SpanCollector

CATEGORY_TRANSPORT = "transport"
CATEGORY_CACHE = "cache"
CATEGORY_BACKOFF = "retry-backoff"
CATEGORY_HEDGE_WAIT = "hedge-wait"
CATEGORY_OTHER = "other"

#: Span event names that carry attributable durations in ``seconds``.
EVENT_BACKOFF = "retry.backoff"
EVENT_HEDGE_WAIT = "hedge.wait"

_EVENT_CATEGORIES = {
    EVENT_BACKOFF: CATEGORY_BACKOFF,
    EVENT_HEDGE_WAIT: CATEGORY_HEDGE_WAIT,
}


@dataclass
class TraceAttribution:
    """One trace's wall time split across categories and services."""

    trace_id: str
    root_name: str
    wall_time: float
    categories: dict[str, float] = field(default_factory=dict)
    per_service: dict[str, dict[str, float]] = field(default_factory=dict)
    span_count: int = 0

    @property
    def unattributed(self) -> float:
        attributed = sum(self.categories.values())
        return max(0.0, self.wall_time - attributed)

    def share(self, category: str) -> float:
        """Fraction of wall time spent in ``category`` (0.0 when idle)."""
        if self.wall_time <= 0.0:
            return 0.0
        return self.categories.get(category, 0.0) / self.wall_time

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "root": self.root_name,
            "wall_time": self.wall_time,
            "span_count": self.span_count,
            "categories": dict(self.categories),
            "per_service": {service: dict(split)
                            for service, split in self.per_service.items()},
            "unattributed": self.unattributed,
        }


def _bump(bucket: dict[str, float], key: str, amount: float) -> None:
    if amount:
        bucket[key] = bucket.get(key, 0.0) + amount


def attribute_trace(spans: Sequence[Span]) -> TraceAttribution | None:
    """Roll one trace's spans into a :class:`TraceAttribution`.

    Returns None when the trace has no completed root span (the trace
    is still in flight, or its root was evicted from the collector).
    """
    roots = [span for span in spans
             if span.parent_id is None and span.end_time is not None]
    if not roots:
        return None
    root = min(roots, key=lambda span: span.start_time)
    wall = max(root.duration or 0.0, 0.0)
    report = TraceAttribution(
        trace_id=root.trace_id, root_name=root.name, wall_time=wall,
        span_count=len(spans))

    for span in spans:
        category = span.attributes.get(CATEGORY_ATTRIBUTE)
        if category in (CATEGORY_TRANSPORT, CATEGORY_CACHE) and span.duration:
            service = str(span.attributes.get("endpoint")
                          or span.attributes.get("service") or "<unknown>")
            _bump(report.categories, category, span.duration)
            _bump(report.per_service.setdefault(service, {}),
                  category, span.duration)
        for event in span.events:
            event_category = _EVENT_CATEGORIES.get(event.name)
            if event_category is None:
                continue
            seconds = float(event.attributes.get("seconds", 0.0))
            service = str(event.attributes.get("service") or "<unknown>")
            _bump(report.categories, event_category, seconds)
            _bump(report.per_service.setdefault(service, {}),
                  event_category, seconds)
    return report


class TraceAnalyzer:
    """Attribution reports over everything a collector has gathered."""

    def __init__(self, collector: SpanCollector) -> None:
        self.collector = collector

    def report(self) -> list[TraceAttribution]:
        """One attribution per completed trace, oldest first."""
        reports = []
        for spans in self.collector.traces().values():
            attribution = attribute_trace(spans)
            if attribution is not None:
                reports.append(attribution)
        return reports

    def aggregate(self) -> dict:
        """Fleet view: total wall time and per-category shares."""
        reports = self.report()
        total_wall = sum(item.wall_time for item in reports)
        categories: dict[str, float] = {}
        for item in reports:
            for category, seconds in item.categories.items():
                _bump(categories, category, seconds)
            _bump(categories, CATEGORY_OTHER, item.unattributed)
        shares = {category: (seconds / total_wall if total_wall else 0.0)
                  for category, seconds in categories.items()}
        return {
            "traces": len(reports),
            "total_wall_time": total_wall,
            "categories": categories,
            "shares": shares,
        }

    def render(self, limit: int = 10) -> str:
        """ASCII table of the most recent traces (examples/debugging)."""
        lines = [f"{'trace':<12} {'root':<26} {'wall(s)':>9} "
                 f"{'transport':>10} {'backoff':>8} {'hedge':>7} {'other':>8}"]
        for item in self.report()[-limit:]:
            lines.append(
                f"{item.trace_id:<12} {item.root_name:<26} "
                f"{item.wall_time:>9.4f} "
                f"{item.categories.get(CATEGORY_TRANSPORT, 0.0):>10.4f} "
                f"{item.categories.get(CATEGORY_BACKOFF, 0.0):>8.4f} "
                f"{item.categories.get(CATEGORY_HEDGE_WAIT, 0.0):>7.4f} "
                f"{item.unattributed:>8.4f}")
        return "\n".join(lines)
