"""Weighted-fair scheduling: deficit round robin over tenant sub-queues.

A FIFO wait queue lets one aggressive tenant starve everyone else: its
backlog sits in front of every other tenant's requests.
:class:`DrrScheduler` is the classic fix — one FIFO sub-queue per
tenant, drained by **deficit round robin**: the scheduler cycles over
tenants with queued work, crediting each visit with ``quantum x
weight`` deficit and serving requests while the deficit lasts.  A
tenant with a 10x backlog still drains at its weighted share, because
the round only gives it ``weight`` credits per cycle regardless of
queue depth.

The structure is deliberately free of clocks and threads — callers
(the bulkhead's fair wake order, the load generator's simulated server)
hold their own locks and drive it deterministically, so its behaviour
is unit-testable as pure data-structure manipulation.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import Generic, TypeVar

T = TypeVar("T")

#: Sub-queue key used when a request carries no tenant identity.
DEFAULT_TENANT = "_default"


class DrrScheduler(Generic[T]):
    """Deficit-round-robin queue of items keyed by tenant.

    ``weight_of`` maps a tenant id to its fair-share weight (default:
    everyone weighs 1.0, i.e. plain per-tenant round robin).  Each
    queued item costs one unit; a tenant reaching the head of the ring
    is credited ``quantum * weight`` and serves items while its deficit
    covers them.  A tenant whose queue empties leaves the ring and
    forfeits its residual deficit — fairness cannot be banked while
    idle.
    """

    def __init__(self, weight_of: Callable[[str], float] | None = None,
                 quantum: float = 1.0) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self._weight_of = weight_of
        self.quantum = quantum
        self._queues: dict[str, deque[T]] = {}
        self._deficit: dict[str, float] = {}
        self._ring: deque[str] = deque()
        # Ring membership guard: a tenant whose queue was drained by
        # remove() keeps its (stale) ring slot until pop_next skips it;
        # re-pushing meanwhile must not enqueue a duplicate slot.
        self._in_ring: set[str] = set()

    def weight(self, tenant: str) -> float:
        """The tenant's fair-share weight (>= a tiny positive floor)."""
        if self._weight_of is None:
            return 1.0
        return max(1e-9, float(self._weight_of(tenant)))

    def push(self, tenant: str | None, item: T) -> None:
        """Append ``item`` to the tenant's sub-queue (FIFO within tenant)."""
        key = tenant if tenant is not None else DEFAULT_TENANT
        queue = self._queues.get(key)
        if queue is None:
            queue = deque()
            self._queues[key] = queue
        if key not in self._in_ring:
            self._ring.append(key)
            self._in_ring.add(key)
            self._deficit.setdefault(key, 0.0)
        queue.append(item)

    def pop_next(self) -> T | None:
        """The next item under DRR order, or None when empty.

        The head tenant serves only from deficit it has already been
        credited; an unaffordable head is credited ``quantum * weight``
        and rotated to the back of the ring.  Crediting happens at
        rotation time — never while serving — so a tenant's turn ends
        when its credit runs out and each full cycle hands every queued
        tenant ``quantum * weight`` servings: that is the weighted
        share.  (Crediting the head in place would let it re-earn
        deficit after every serve and never yield the ring.)

        Guaranteed to terminate: every full rotation credits each
        queued tenant a positive deficit, so some tenant eventually
        affords its head-of-line item.
        """
        while self._ring:
            key = self._ring[0]
            queue = self._queues.get(key)
            if not queue:
                # Stale ring entry (queue drained via remove()).
                self._ring.popleft()
                self._in_ring.discard(key)
                self._deficit.pop(key, None)
                continue
            if self._deficit[key] >= 1.0:
                self._deficit[key] -= 1.0
                item = queue.popleft()
                if not queue:
                    self._ring.popleft()
                    self._in_ring.discard(key)
                    self._deficit.pop(key, None)
                    del self._queues[key]
                return item
            self._deficit[key] += self.quantum * self.weight(key)
            self._ring.rotate(-1)
        return None

    def remove(self, tenant: str | None, item: T) -> bool:
        """Withdraw one queued item (a waiter timing out); True if found."""
        key = tenant if tenant is not None else DEFAULT_TENANT
        queue = self._queues.get(key)
        if queue is None:
            return False
        try:
            queue.remove(item)
        except ValueError:
            return False
        # Empty queues are lazily dropped from the ring in pop_next.
        return True

    def depth(self, tenant: str | None = None) -> int:
        """Queued items for one tenant, or in total."""
        if tenant is not None:
            queue = self._queues.get(tenant)
            return len(queue) if queue is not None else 0
        return sum(len(queue) for queue in self._queues.values())

    def tenants(self) -> list[str]:
        """Tenants with queued work, in current ring order."""
        return [key for key in self._ring if self._queues.get(key)]

    def __len__(self) -> int:
        return self.depth()

    def __bool__(self) -> bool:
        return any(self._queues.values())
