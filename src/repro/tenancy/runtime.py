"""The tenancy runtime the invoker consults on every remote call.

One :class:`Tenancy` object bundles the registry (who exists, at what
weight), the per-tenant limiter (budgets and token buckets) and the
tenant-dimension metrics.  :class:`repro.core.invoker.RichClient`
accepts one and, for every remote call that executes inside a
:func:`~repro.tenancy.context.tenant_scope`:

* resolves the tenant (auto-registering guests when allowed);
* authorizes the call against the tenant's rate limit and budget,
  refusing with a 429-mapped error before any service-level
  protection runs;
* namespaces the cache key so tenants never share cached responses;
* labels the bulkhead queue entry so weighted-fair admission can
  drain per-tenant sub-queues;
* stamps the ``tenant`` attribute on the ``sdk.invoke`` span and
  counts the outcome in ``tenant_requests_total`` /
  ``tenant_rejected_total`` / ``tenant_cost_total``.

Calls with no tenant scope behave exactly as before — tenancy is a
pay-for-what-you-use layer, not a breaking change.
"""

from __future__ import annotations

from repro.obs import names
from repro.tenancy.context import current_tenant
from repro.tenancy.limits import TenantCharge, TenantLimiter
from repro.tenancy.model import Tenant, TenantRegistry
from repro.util.clock import Clock

#: Rejection reason labels for ``tenant_rejected_total``.
REASON_BUDGET = "budget"
REASON_RATE = "rate"
REASON_SHED = "shed"
REASON_SUSPENDED = "suspended"

#: Outcome labels for ``tenant_requests_total``.
OUTCOME_OK = "ok"
OUTCOME_ERROR = "error"


class Tenancy:
    """Registry + limiter + metrics: the serving layer's tenant brain."""

    def __init__(self, registry: TenantRegistry | None = None,
                 clock: Clock | None = None) -> None:
        self.registry = registry if registry is not None else TenantRegistry()
        self._clock = clock
        self.limiter: TenantLimiter | None = (
            TenantLimiter(clock) if clock is not None else None)
        self._metric_requests = None
        self._metric_rejected = None
        self._metric_cost = None

    def attach_clock(self, clock: Clock) -> None:
        """Late-bind the clock (the invoker knows it at construction)."""
        if self.limiter is None:
            self._clock = clock
            self.limiter = TenantLimiter(clock)

    def bind_metrics(self, registry) -> None:
        """Register the tenant-dimension instruments."""
        self._metric_requests = registry.counter(
            names.TENANT_REQUESTS_TOTAL,
            "Remote calls per tenant, by outcome.")
        self._metric_rejected = registry.counter(
            names.TENANT_REJECTED_TOTAL,
            "Calls refused by tenant policy, by tenant and reason.")
        self._metric_cost = registry.counter(
            names.TENANT_COST_TOTAL,
            "Monetary cost charged per tenant.")

    # -- per-call protocol --------------------------------------------------

    def resolve(self) -> Tenant | None:
        """The tenant for the current execution context, or None.

        Suspension surfaces here (counted as a rejection); an absent
        scope simply means an untenanted caller.
        """
        tenant_id = current_tenant()
        if tenant_id is None:
            return None
        try:
            return self.registry.resolve(tenant_id)
        except Exception:
            self.count_rejection(tenant_id, REASON_SUSPENDED)
            raise

    def authorize(self, tenant: Tenant,
                  estimated_cost: float = 0.0) -> TenantCharge:
        """Admit one call under the tenant's terms; counts rejections."""
        from repro.tenancy.limits import (
            TenantBudgetExceededError,
            TenantRateLimitedError,
        )
        if self.limiter is None:
            raise RuntimeError("Tenancy has no clock; call attach_clock first")
        try:
            return self.limiter.authorize(tenant, estimated_cost)
        except TenantRateLimitedError:
            self.count_rejection(tenant.tenant_id, REASON_RATE)
            raise
        except TenantBudgetExceededError:
            self.count_rejection(tenant.tenant_id, REASON_BUDGET)
            raise

    def settle(self, tenant: Tenant, charge: TenantCharge,
               actual_cost: float) -> None:
        """Account a successful call: ledger true-up plus metrics."""
        self.limiter.settle(tenant, charge, actual_cost)
        if self._metric_requests is not None:
            self._metric_requests.inc(tenant=tenant.tenant_id,
                                      outcome=OUTCOME_OK)
        if self._metric_cost is not None and actual_cost:
            self._metric_cost.inc(actual_cost, tenant=tenant.tenant_id)

    def cancel(self, tenant: Tenant, charge: TenantCharge) -> None:
        """Refund a failed call's charge and count the error."""
        self.limiter.cancel(tenant, charge)
        if self._metric_requests is not None:
            self._metric_requests.inc(tenant=tenant.tenant_id,
                                      outcome=OUTCOME_ERROR)

    def count_rejection(self, tenant_id: str, reason: str) -> None:
        """Count one refusal in ``tenant_rejected_total``."""
        if self._metric_rejected is not None:
            self._metric_rejected.inc(tenant=tenant_id, reason=reason)

    # -- introspection ------------------------------------------------------

    def usage(self, tenant_id: str) -> dict:
        """One tenant's ledger (calls, cost, throttles)."""
        tenant = self.registry.get(tenant_id)
        if self.limiter is None:
            return {"tenant": tenant_id, "calls": 0, "cost": 0.0,
                    "remaining_calls": tenant.max_calls, "throttled": 0}
        return self.limiter.usage(tenant)

    def usage_report(self) -> list[dict]:
        """Every registered tenant's ledger, sorted by tenant id."""
        return [self.usage(tenant.tenant_id)
                for tenant in sorted(self.registry,
                                     key=lambda entry: entry.tenant_id)]

    def weight_of(self, tenant_id: str) -> float:
        """Fair-share weight used by the weighted-fair bulkheads."""
        return self.registry.weight_of(tenant_id)
