"""The tenant model: who is calling, and on what terms.

A :class:`Tenant` is one application (or one of its customers) served
by the middleware, carrying the per-customer isolation knobs the
"Large-Scale Intelligent Microservices" direction calls for: a
fair-share **weight** used by the weighted-fair bulkhead scheduler, an
optional **budget** (max calls / max cost across all services), an
optional **rate limit** (token bucket), and whether the tenant's cache
entries live in an isolated namespace.

The :class:`TenantRegistry` is the directory: thread-safe, optionally
auto-registering unknown tenants with a guest profile so an open
population (the load generator simulates tens of thousands) does not
need explicit onboarding.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from dataclasses import dataclass, replace

from repro.util.errors import NotFoundError, ReproError


class UnknownTenantError(NotFoundError):
    """A request named a tenant the registry has never seen."""

    def __init__(self, tenant_id: str) -> None:
        super().__init__(f"unknown tenant {tenant_id!r}")
        self.tenant_id = tenant_id


class TenantSuspendedError(ReproError):
    """A request arrived for a tenant that has been suspended."""

    def __init__(self, tenant_id: str) -> None:
        super().__init__(f"tenant {tenant_id!r} is suspended")
        self.tenant_id = tenant_id


@dataclass(frozen=True)
class Tenant:
    """One tenant's identity and serving terms.

    ``weight`` is the fair-share weight the weighted-fair scheduler
    uses (a weight-2 tenant drains twice as fast as a weight-1 tenant
    under contention).  ``max_calls`` / ``max_cost`` bound total spend
    across all services (None = unlimited); ``rate`` / ``burst``
    configure a per-tenant token bucket (None = unthrottled).
    ``isolated_cache`` keys the tenant's cache entries under its own
    namespace so tenants can never read each other's cached responses.
    """

    tenant_id: str
    display_name: str = ""
    weight: float = 1.0
    max_calls: int | None = None
    max_cost: float | None = None
    rate: float | None = None
    burst: int = 1
    isolated_cache: bool = True
    suspended: bool = False

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be a non-empty string")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive (or None), got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")


#: Profile applied to tenants the registry auto-registers on first sight.
GUEST_PROFILE = Tenant(tenant_id="guest", weight=1.0)


class TenantRegistry:
    """Thread-safe directory of tenants.

    ``auto_register`` (on by default) admits unknown tenants with a
    copy of ``guest_profile`` — the open-population mode the load
    generator relies on.  Turn it off for a closed deployment where
    an unknown tenant is an error.
    """

    def __init__(self, auto_register: bool = True,
                 guest_profile: Tenant = GUEST_PROFILE) -> None:
        self.auto_register = auto_register
        self.guest_profile = guest_profile
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()

    def register(self, tenant: Tenant) -> Tenant:
        """Add (or replace) one tenant; returns it for chaining."""
        with self._lock:
            self._tenants[tenant.tenant_id] = tenant
        return tenant

    def get(self, tenant_id: str) -> Tenant:
        """Look up a tenant; raises :class:`UnknownTenantError` if absent."""
        with self._lock:
            tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise UnknownTenantError(tenant_id)
        return tenant

    def resolve(self, tenant_id: str) -> Tenant:
        """Look up a tenant, auto-registering a guest when allowed.

        Raises :class:`UnknownTenantError` when the tenant is absent
        and auto-registration is off, and
        :class:`TenantSuspendedError` for suspended tenants — resolve
        is the front-door check, so a suspended tenant is refused
        before any protection spends work on it.
        """
        with self._lock:
            tenant = self._tenants.get(tenant_id)
            if tenant is None:
                if not self.auto_register:
                    raise UnknownTenantError(tenant_id)
                tenant = replace(self.guest_profile, tenant_id=tenant_id)
                self._tenants[tenant_id] = tenant
        if tenant.suspended:
            raise TenantSuspendedError(tenant_id)
        return tenant

    def suspend(self, tenant_id: str) -> Tenant:
        """Mark a tenant suspended; its requests are refused at resolve."""
        with self._lock:
            tenant = self._tenants.get(tenant_id)
            if tenant is None:
                raise UnknownTenantError(tenant_id)
            tenant = replace(tenant, suspended=True)
            self._tenants[tenant_id] = tenant
        return tenant

    def weight_of(self, tenant_id: str) -> float:
        """The tenant's fair-share weight (guest weight when unknown)."""
        with self._lock:
            tenant = self._tenants.get(tenant_id)
        return tenant.weight if tenant is not None else self.guest_profile.weight

    def __contains__(self, tenant_id: str) -> bool:
        with self._lock:
            return tenant_id in self._tenants

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def __iter__(self) -> Iterator[Tenant]:
        with self._lock:
            return iter(list(self._tenants.values()))
