"""repro.tenancy — the multi-tenant serving layer.

Everything the middleware needs to serve many applications from one
process, per the "millions of users" direction in ROADMAP item 1:

* :mod:`repro.tenancy.model` — :class:`Tenant` terms (weight, budget,
  rate, cache isolation) and the thread-safe :class:`TenantRegistry`;
* :mod:`repro.tenancy.context` — contextvar propagation
  (:func:`tenant_scope` / :func:`current_tenant`), the same idiom the
  tracer uses, surviving the SDK's thread pool;
* :mod:`repro.tenancy.limits` — per-tenant budgets and token buckets
  composed from :mod:`repro.core.quota` and :mod:`repro.core.ratelimit`
  on the atomic reserve path;
* :mod:`repro.tenancy.scheduling` — :class:`DrrScheduler`, the
  deficit-round-robin queue behind weighted-fair admission and the
  load generator's fair server;
* :mod:`repro.tenancy.runtime` — the :class:`Tenancy` facade the
  invoker consults per call (authorize / settle / metrics);
* :mod:`repro.tenancy.resources` — :class:`TenantPkbManager`,
  one Personalized Knowledge Base per tenant.

See ``docs/tenancy.md`` for the guide and ``repro.loadgen`` for the
deterministic load harness that exercises all of it.
"""

from repro.tenancy.context import current_tenant, tenant_scope
from repro.tenancy.limits import (
    TenantBudgetExceededError,
    TenantCharge,
    TenantLimiter,
    TenantRateLimitedError,
)
from repro.tenancy.model import (
    GUEST_PROFILE,
    Tenant,
    TenantRegistry,
    TenantSuspendedError,
    UnknownTenantError,
)
from repro.tenancy.resources import TenantPkbManager
from repro.tenancy.runtime import Tenancy
from repro.tenancy.scheduling import DEFAULT_TENANT, DrrScheduler

__all__ = [
    "Tenant",
    "TenantRegistry",
    "Tenancy",
    "TenantLimiter",
    "TenantCharge",
    "TenantPkbManager",
    "TenantBudgetExceededError",
    "TenantRateLimitedError",
    "TenantSuspendedError",
    "UnknownTenantError",
    "GUEST_PROFILE",
    "DrrScheduler",
    "DEFAULT_TENANT",
    "current_tenant",
    "tenant_scope",
]
