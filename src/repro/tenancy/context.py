"""Tenant context propagation.

The serving layer needs to know *whose* request it is executing at
every depth — invoker, cache, bulkhead, knowledge base — without
threading a ``tenant=`` argument through every call signature.  The
same idiom :mod:`repro.obs.tracing` uses for the current span is used
here: a :mod:`contextvars` variable that
:class:`repro.core.futures.CallbackExecutor` carries across the thread
pool for free (it submits work inside a copied context), so an
``invoke_async`` issued inside a :func:`tenant_scope` still executes
as that tenant on the pool thread.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar

_CURRENT_TENANT: ContextVar[str | None] = ContextVar(
    "repro_tenancy_current_tenant", default=None)


def current_tenant() -> str | None:
    """The tenant id active in this execution context, if any."""
    return _CURRENT_TENANT.get()


@contextmanager
def tenant_scope(tenant_id: str) -> Iterator[str]:
    """Run the enclosed block as ``tenant_id``.

    Scopes nest: the innermost wins, and the previous tenant is
    restored on exit (including on error).  Everything tenant-aware —
    per-tenant budgets and rate limits, tenant-scoped cache namespaces,
    weighted-fair admission, the ``tenant`` span attribute — keys off
    this scope.
    """
    if not tenant_id:
        raise ValueError("tenant_id must be a non-empty string")
    token = _CURRENT_TENANT.set(tenant_id)
    try:
        yield tenant_id
    finally:
        _CURRENT_TENANT.reset(token)
