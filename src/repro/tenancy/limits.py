"""Per-tenant budgets and rate limits.

Composes the SDK's existing client-side protections per tenant: one
:class:`~repro.core.quota.ClientQuotaTracker` ledger (budget keyed
across all services) and one :class:`~repro.core.ratelimit.TokenBucket`
per tenant that declares a ``rate``.  Both checks run on the atomic
reserve path, so a concurrent burst from one tenant cannot overshoot
its budget, and a rejected tenant is refused *before* any service-level
protection spends work on its request.
"""

from __future__ import annotations

import threading

from repro.core.quota import (
    BudgetExceededError,
    ClientQuotaTracker,
    QuotaReservation,
)
from repro.core.ratelimit import RateLimitExceededError, TokenBucket
from repro.tenancy.model import Tenant
from repro.util.clock import Clock

#: Ledger key under which a tenant's cross-service spend accumulates.
ALL_SERVICES = "*"


class TenantBudgetExceededError(BudgetExceededError):
    """A tenant's self-imposed budget refused one more call.

    Subclasses :class:`BudgetExceededError` so the gateway's existing
    429 mapping applies unchanged; carries the tenant id for the
    rejection metrics.
    """

    def __init__(self, tenant_id: str, kind: str, limit: float) -> None:
        super().__init__(f"tenant:{tenant_id}", kind, limit)
        self.tenant_id = tenant_id


class TenantRateLimitedError(RateLimitExceededError):
    """A tenant's token bucket was empty.

    Subclasses :class:`RateLimitExceededError`, so the gateway returns
    429 with the bucket's honest ``retry_after`` hint.
    """

    def __init__(self, tenant_id: str, wait_needed: float) -> None:
        super().__init__(f"tenant:{tenant_id}", wait_needed)
        self.tenant_id = tenant_id


class TenantCharge:
    """One authorized call's pending charge against a tenant's ledger."""

    __slots__ = ("tenant_id", "reservation")

    def __init__(self, tenant_id: str, reservation: QuotaReservation) -> None:
        self.tenant_id = tenant_id
        self.reservation = reservation


class TenantLimiter:
    """Per-tenant quota ledgers and token buckets, built lazily.

    One instance serves every tenant: state is keyed by tenant id and
    created on first use from the tenant's declared terms, so a
    population of tens of thousands of mostly-idle tenants costs
    nothing until each first call.
    """

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._trackers: dict[str, ClientQuotaTracker] = {}
        self._buckets: dict[str, TokenBucket | None] = {}
        self._lock = threading.Lock()

    def _tracker_for(self, tenant: Tenant) -> ClientQuotaTracker:
        with self._lock:
            tracker = self._trackers.get(tenant.tenant_id)
            if tracker is None:
                tracker = ClientQuotaTracker()
                tracker.set_budget(ALL_SERVICES, max_calls=tenant.max_calls,
                                   max_cost=tenant.max_cost)
                self._trackers[tenant.tenant_id] = tracker
            return tracker

    def _bucket_for(self, tenant: Tenant) -> TokenBucket | None:
        with self._lock:
            if tenant.tenant_id not in self._buckets:
                bucket = None
                if tenant.rate is not None:
                    bucket = TokenBucket(self.clock, tenant.rate,
                                         burst=tenant.burst,
                                         service=f"tenant:{tenant.tenant_id}")
                self._buckets[tenant.tenant_id] = bucket
            return self._buckets[tenant.tenant_id]

    def authorize(self, tenant: Tenant,
                  estimated_cost: float = 0.0) -> TenantCharge:
        """Admit one call under the tenant's terms, or raise.

        Order: token bucket first (rate violations are cheap to refuse
        and refill on their own), then the atomic budget reservation.
        Raises :class:`TenantRateLimitedError` or
        :class:`TenantBudgetExceededError`; on success returns a
        :class:`TenantCharge` to :meth:`settle` or :meth:`cancel`.
        """
        bucket = self._bucket_for(tenant)
        if bucket is not None:
            try:
                bucket.acquire_or_raise()
            except RateLimitExceededError as error:
                raise TenantRateLimitedError(
                    tenant.tenant_id, error.wait_needed) from error
        tracker = self._tracker_for(tenant)
        try:
            reservation = tracker.reserve(ALL_SERVICES, estimated_cost)
        except BudgetExceededError as error:
            raise TenantBudgetExceededError(
                tenant.tenant_id, error.kind, error.limit) from error
        return TenantCharge(tenant.tenant_id, reservation)

    def settle(self, tenant: Tenant, charge: TenantCharge,
               actual_cost: float) -> None:
        """True the charge up to what the call actually billed."""
        self._tracker_for(tenant).settle(charge.reservation, actual_cost)

    def cancel(self, tenant: Tenant, charge: TenantCharge) -> None:
        """Refund a charge whose call failed."""
        self._tracker_for(tenant).cancel(charge.reservation)

    def usage(self, tenant: Tenant) -> dict:
        """The tenant's ledger: calls, cost, throttle count."""
        tracker = self._tracker_for(tenant)
        bucket = self._bucket_for(tenant)
        return {
            "tenant": tenant.tenant_id,
            "calls": tracker.calls(ALL_SERVICES),
            "cost": tracker.cost(ALL_SERVICES),
            "remaining_calls": tracker.remaining_calls(ALL_SERVICES),
            "throttled": bucket.stats.throttled if bucket is not None else 0,
        }
