"""Tenant-scoped resources: one Personalized Knowledge Base per tenant.

The paper's PKB is *personal* — §4's whole point — so a multi-tenant
deployment needs one KB instance per tenant, not one shared graph.
:class:`TenantPkbManager` materializes them lazily: the first access
for a tenant builds a :class:`~repro.kb.knowledge_base.PersonalKnowledgeBase`
over the shared :class:`~repro.core.invoker.RichClient` (optionally
rooted in a per-tenant data directory so on-disk state is isolated
too), and :meth:`scope` pairs the KB with a
:func:`~repro.tenancy.context.tenant_scope` so every service call the
KB makes — disambiguation, ingestion, secure persistence — is charged,
rate-limited, cached and traced as that tenant.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path

from repro.tenancy.context import tenant_scope
from repro.tenancy.model import TenantRegistry


class TenantPkbManager:
    """Lazily builds and hands out per-tenant knowledge bases.

    ``registry`` validates tenant ids (auto-registering guests when it
    allows that); ``data_dir``, when given, roots each tenant's KB at
    ``data_dir/<tenant_id>`` so persisted state is isolated on disk.
    Extra ``kb_kwargs`` are forwarded to every PKB constructor
    (disambiguator, spellchecker, ...).
    """

    def __init__(self, client=None, registry: TenantRegistry | None = None,
                 data_dir: str | Path | None = None, **kb_kwargs) -> None:
        self.client = client
        self.registry = registry if registry is not None else TenantRegistry()
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.kb_kwargs = kb_kwargs
        self._kbs: dict[str, object] = {}
        self._lock = threading.Lock()

    def pkb_for(self, tenant_id: str):
        """The tenant's knowledge base, built on first access."""
        self.registry.resolve(tenant_id)
        with self._lock:
            kb = self._kbs.get(tenant_id)
            if kb is None:
                from repro.kb.knowledge_base import PersonalKnowledgeBase

                tenant_dir = (self.data_dir / tenant_id
                              if self.data_dir is not None else None)
                kb = PersonalKnowledgeBase(client=self.client,
                                           data_dir=tenant_dir,
                                           **self.kb_kwargs)
                self._kbs[tenant_id] = kb
            return kb

    @contextmanager
    def scope(self, tenant_id: str) -> Iterator[object]:
        """The tenant's KB with its tenant context active.

        Everything the KB does inside the block — queries, inference,
        remote persistence through the client — runs as ``tenant_id``.
        """
        kb = self.pkb_for(tenant_id)
        with tenant_scope(tenant_id):
            yield kb

    def tenants(self) -> list[str]:
        """Tenants whose KB has been materialized, sorted."""
        with self._lock:
            return sorted(self._kbs)

    def __len__(self) -> int:
        with self._lock:
            return len(self._kbs)
