"""Sealed envelopes: compress-then-encrypt for remote storage.

The PKB never ships plaintext to a remote store: values are JSON-
encoded, compressed, encrypted and base64-wrapped into a JSON-safe
envelope the cloud KV services can hold.  ``unseal`` reverses the
pipeline and fails loudly on tampering.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass

from repro.crypto.cipher import StreamCipher
from repro.crypto.compression import Codec, ZlibCodec


@dataclass(frozen=True)
class SealedEnvelope:
    """The JSON-safe wrapper stored remotely."""

    ciphertext_b64: str
    codec: str
    plaintext_bytes: int
    sealed_bytes: int

    def as_dict(self) -> dict:
        return {
            "ciphertext": self.ciphertext_b64,
            "codec": self.codec,
            "plaintext_bytes": self.plaintext_bytes,
            "sealed_bytes": self.sealed_bytes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SealedEnvelope":
        return cls(
            ciphertext_b64=payload["ciphertext"],
            codec=payload["codec"],
            plaintext_bytes=payload["plaintext_bytes"],
            sealed_bytes=payload["sealed_bytes"],
        )


def seal(value: object, cipher: StreamCipher, codec: Codec | None = None,
         nonce: bytes | None = None) -> SealedEnvelope:
    """JSON-encode, compress, encrypt and wrap ``value``."""
    codec = codec if codec is not None else ZlibCodec()
    plaintext = json.dumps(value, separators=(",", ":")).encode()
    compressed = codec.encode(plaintext)
    sealed = cipher.encrypt(compressed, nonce=nonce)
    return SealedEnvelope(
        ciphertext_b64=base64.b64encode(sealed).decode(),
        codec=codec.name,
        plaintext_bytes=len(plaintext),
        sealed_bytes=len(sealed),
    )


def unseal(envelope: SealedEnvelope | dict, cipher: StreamCipher,
           codec: Codec | None = None) -> object:
    """Reverse :func:`seal`; raises
    :class:`repro.crypto.DecryptionError` on tampering."""
    if isinstance(envelope, dict):
        envelope = SealedEnvelope.from_dict(envelope)
    codec = codec if codec is not None else ZlibCodec()
    sealed = base64.b64decode(envelope.ciphertext_b64)
    compressed = cipher.decrypt(sealed)
    plaintext = codec.decode(compressed)
    return json.loads(plaintext.decode())
