"""Compression codecs.

Two real codecs behind one interface: zlib (the workhorse) and a pure
Python canonical Huffman coder (from scratch, useful as an ablation
point and to keep the library self-contained conceptually).  Both are
self-describing: ``decode(encode(data)) == data`` with no side channel.
"""

from __future__ import annotations

import heapq
import json
import zlib
from abc import ABC, abstractmethod
from collections import Counter


class Codec(ABC):
    """A reversible bytes→bytes transform."""

    name: str = "codec"

    @abstractmethod
    def encode(self, data: bytes) -> bytes: ...

    @abstractmethod
    def decode(self, data: bytes) -> bytes: ...


class IdentityCodec(Codec):
    """No-op codec — the baseline for compression benchmarks."""

    name = "identity"

    def encode(self, data: bytes) -> bytes:
        return data

    def decode(self, data: bytes) -> bytes:
        return data


class ZlibCodec(Codec):
    """DEFLATE via zlib at a configurable level."""

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ValueError(f"level must be in [0, 9], got {level}")
        self.level = level
        self.name = f"zlib-{level}"

    def encode(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decode(self, data: bytes) -> bytes:
        return zlib.decompress(data)


class HuffmanCodec(Codec):
    """Canonical Huffman coding implemented from scratch.

    Wire format: a JSON header (symbol → code length), a NUL byte, the
    bit-packed payload prefixed with its bit length.  Not fast — it
    exists to demonstrate the technique and as a second real codec for
    the F4.secure ablation.
    """

    name = "huffman"

    @staticmethod
    def _code_lengths(data: bytes) -> dict[int, int]:
        counts = Counter(data)
        if len(counts) == 1:
            symbol = next(iter(counts))
            return {symbol: 1}
        heap: list[tuple[int, int, object]] = [
            (count, symbol, symbol) for symbol, count in counts.items()
        ]
        heapq.heapify(heap)
        while len(heap) > 1:
            count_a, tie_a, tree_a = heapq.heappop(heap)
            count_b, tie_b, tree_b = heapq.heappop(heap)
            heapq.heappush(heap, (count_a + count_b, min(tie_a, tie_b), (tree_a, tree_b)))
        lengths: dict[int, int] = {}

        def walk(tree: object, depth: int) -> None:
            if isinstance(tree, tuple):
                walk(tree[0], depth + 1)
                walk(tree[1], depth + 1)
            else:
                lengths[tree] = max(depth, 1)

        walk(heap[0][2], 0)
        return lengths

    @staticmethod
    def _canonical_codes(lengths: dict[int, int]) -> dict[int, tuple[int, int]]:
        """Symbol -> (code, length), assigned canonically."""
        ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
        codes: dict[int, tuple[int, int]] = {}
        code = 0
        previous_length = 0
        for symbol, length in ordered:
            code <<= length - previous_length
            codes[symbol] = (code, length)
            code += 1
            previous_length = length
        return codes

    def encode(self, data: bytes) -> bytes:
        if not data:
            return b"{}\x00" + (0).to_bytes(8, "big")
        lengths = self._code_lengths(data)
        codes = self._canonical_codes(lengths)
        header = json.dumps(
            {str(symbol): length for symbol, length in sorted(lengths.items())},
            separators=(",", ":"),
        ).encode()

        bit_buffer = 0
        bit_count = 0
        out = bytearray()
        for byte in data:
            code, length = codes[byte]
            bit_buffer = (bit_buffer << length) | code
            bit_count += length
            while bit_count >= 8:
                bit_count -= 8
                out.append((bit_buffer >> bit_count) & 0xFF)
        total_bits = sum(lengths[byte] for byte in data)
        if bit_count:
            out.append((bit_buffer << (8 - bit_count)) & 0xFF)
        return header + b"\x00" + total_bits.to_bytes(8, "big") + bytes(out)

    def decode(self, data: bytes) -> bytes:
        separator = data.index(b"\x00")
        lengths = {
            int(symbol): length
            for symbol, length in json.loads(data[:separator].decode()).items()
        }
        total_bits = int.from_bytes(data[separator + 1 : separator + 9], "big")
        payload = data[separator + 9 :]
        if not lengths:
            return b""
        codes = self._canonical_codes(lengths)
        decoder = {code: symbol for symbol, code in codes.items()}

        out = bytearray()
        current_code = 0
        current_length = 0
        consumed = 0
        for byte in payload:
            for bit_index in range(7, -1, -1):
                if consumed >= total_bits:
                    break
                bit = (byte >> bit_index) & 1
                current_code = (current_code << 1) | bit
                current_length += 1
                consumed += 1
                entry = decoder.get((current_code, current_length))
                if entry is not None:
                    out.append(entry)
                    current_code = 0
                    current_length = 0
        return bytes(out)


def compression_ratio(codec: Codec, data: bytes) -> float:
    """Encoded size / original size (lower is better); 1.0 for empty input."""
    if not data:
        return 1.0
    return len(codec.encode(data)) / len(data)
