"""Client-side encryption and compression for the PKB.

Section 3: the personal knowledge base encrypts confidential data
*before* sending it to an untrusted remote store, and compresses before
upload to save bandwidth and storage charges — even when the remote
store offers its own encryption or compression.  These modules are that
client-side layer.

The cipher is a SHA-256-based stream cipher in counter mode with an
HMAC-SHA256 authentication tag (encrypt-then-MAC), built only on
:mod:`hashlib`/:mod:`hmac`; it is a faithful construction for the
simulation, not a vetted production cipher.
"""

from repro.crypto.cipher import StreamCipher, derive_key, DecryptionError
from repro.crypto.compression import (
    Codec,
    ZlibCodec,
    HuffmanCodec,
    IdentityCodec,
    compression_ratio,
)
from repro.crypto.envelope import SealedEnvelope, seal, unseal

__all__ = [
    "StreamCipher",
    "derive_key",
    "DecryptionError",
    "Codec",
    "ZlibCodec",
    "HuffmanCodec",
    "IdentityCodec",
    "compression_ratio",
    "SealedEnvelope",
    "seal",
    "unseal",
]
