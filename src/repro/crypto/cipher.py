"""Authenticated stream cipher built on SHA-256 (encrypt-then-MAC).

Construction:

* key derivation — PBKDF2-HMAC-SHA256 over a passphrase and salt;
* keystream — ``SHA256(key || nonce || counter)`` blocks XORed into the
  plaintext (counter mode);
* integrity — HMAC-SHA256 over ``nonce || ciphertext`` with a separate
  MAC key derived from the data key.

Tampering with any byte of the nonce or ciphertext makes verification
fail with :class:`DecryptionError` before any plaintext is released.
"""

from __future__ import annotations

import hashlib
import hmac
import os

from repro.util.errors import ReproError

KEY_BYTES = 32
NONCE_BYTES = 16
TAG_BYTES = 32
_BLOCK = 32  # SHA-256 digest size


class DecryptionError(ReproError):
    """Authentication failed or the ciphertext is malformed."""


def derive_key(passphrase: str, salt: bytes = b"repro-pkb", iterations: int = 50_000) -> bytes:
    """Derive a 32-byte key from a passphrase (PBKDF2-HMAC-SHA256)."""
    if not passphrase:
        raise ValueError("passphrase must be non-empty")
    return hashlib.pbkdf2_hmac("sha256", passphrase.encode(), salt, iterations, KEY_BYTES)


class StreamCipher:
    """Counter-mode stream cipher with authentication."""

    def __init__(self, key: bytes) -> None:
        if len(key) != KEY_BYTES:
            raise ValueError(f"key must be {KEY_BYTES} bytes, got {len(key)}")
        self._key = key
        self._mac_key = hashlib.sha256(b"mac|" + key).digest()

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        for counter in range((length + _BLOCK - 1) // _BLOCK):
            blocks.append(
                hashlib.sha256(
                    self._key + nonce + counter.to_bytes(8, "big")
                ).digest()
            )
        return b"".join(blocks)[:length]

    def encrypt(self, plaintext: bytes, nonce: bytes | None = None) -> bytes:
        """Encrypt and authenticate; output is ``nonce || ciphertext || tag``.

        A random nonce is generated unless one is supplied (tests pass a
        fixed nonce for determinism; reusing a nonce with the same key
        leaks plaintext XORs, as in any stream cipher).
        """
        if nonce is None:
            nonce = os.urandom(NONCE_BYTES)
        if len(nonce) != NONCE_BYTES:
            raise ValueError(f"nonce must be {NONCE_BYTES} bytes, got {len(nonce)}")
        ciphertext = bytes(
            byte ^ pad for byte, pad in zip(plaintext, self._keystream(nonce, len(plaintext)))
        )
        tag = hmac.new(self._mac_key, nonce + ciphertext, hashlib.sha256).digest()
        return nonce + ciphertext + tag

    def decrypt(self, sealed: bytes) -> bytes:
        """Verify and decrypt ``nonce || ciphertext || tag``."""
        if len(sealed) < NONCE_BYTES + TAG_BYTES:
            raise DecryptionError("ciphertext too short")
        nonce = sealed[:NONCE_BYTES]
        ciphertext = sealed[NONCE_BYTES:-TAG_BYTES]
        tag = sealed[-TAG_BYTES:]
        expected = hmac.new(self._mac_key, nonce + ciphertext, hashlib.sha256).digest()
        if not hmac.compare_digest(tag, expected):
            raise DecryptionError("authentication tag mismatch")
        return bytes(
            byte ^ pad for byte, pad in zip(ciphertext, self._keystream(nonce, len(ciphertext)))
        )
