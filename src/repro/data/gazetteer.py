"""Entity gazetteer: the named entities the simulated world knows about.

This is the shared ground truth behind several simulated services:

* the NER/disambiguation NLU providers look aliases up here,
* the DBpedia/Wikidata/YAGO-like data services serve (partial,
  differently-named) views of these entities,
* the corpus generator writes documents about them,
* benchmark A4 measures disambiguation accuracy against the alias table.

The paper's running example — that "USA", "US", "United States" and
"United States of America" must resolve to one country ID with DBpedia
and YAGO URLs — is reproduced directly by :meth:`Gazetteer.resolve`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping


def _slug(name: str) -> str:
    return name.replace(" ", "_")


@dataclass(frozen=True)
class Entity:
    """One named entity with aliases, cross-source links and properties."""

    entity_id: str
    name: str
    entity_type: str
    aliases: tuple[str, ...] = ()
    properties: Mapping[str, object] = field(default_factory=dict)

    @property
    def links(self) -> dict[str, str]:
        """DBpedia/YAGO/Wikidata-style URLs for this entity.

        Mirrors the URL bundle the paper shows Watson returning for the
        United States.
        """
        slug = _slug(self.name)
        return {
            "dbpedia": f"http://dbpedia.org/resource/{slug}",
            "yago": f"http://yago-knowledge.org/resource/{slug}",
            "wikidata": f"http://www.wikidata.org/entity/{self.entity_id}",
        }

    def all_surface_forms(self) -> tuple[str, ...]:
        """The canonical name plus every alias."""
        return (self.name, *self.aliases)


class Gazetteer:
    """Alias-indexed collection of entities."""

    def __init__(self, entities: list[Entity]) -> None:
        self._by_id: dict[str, Entity] = {}
        self._by_surface: dict[str, Entity] = {}
        for entity in entities:
            self.add(entity)

    def add(self, entity: Entity) -> None:
        if entity.entity_id in self._by_id:
            raise ValueError(f"duplicate entity id {entity.entity_id!r}")
        self._by_id[entity.entity_id] = entity
        for surface in entity.all_surface_forms():
            key = surface.lower()
            if key in self._by_surface:
                other = self._by_surface[key]
                raise ValueError(
                    f"alias {surface!r} of {entity.entity_id} collides with {other.entity_id}"
                )
            self._by_surface[key] = entity

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self):
        return iter(self._by_id.values())

    def get(self, entity_id: str) -> Entity | None:
        return self._by_id.get(entity_id)

    def resolve(self, surface: str) -> Entity | None:
        """Resolve a surface form (name or alias) to its entity."""
        return self._by_surface.get(surface.strip().lower())

    def entities_of_type(self, entity_type: str) -> list[Entity]:
        return [entity for entity in self if entity.entity_type == entity_type]

    def surface_forms(self) -> list[str]:
        """Every known surface form, longest first (for greedy matching)."""
        return sorted(self._by_surface, key=lambda form: (-len(form), form))


def _country(entity_id, name, aliases, capital, population_millions, continent):
    return Entity(
        entity_id,
        name,
        "Country",
        tuple(aliases),
        MappingProxyType(
            {
                "capital": capital,
                "population_millions": population_millions,
                "continent": continent,
            }
        ),
    )


def _company(entity_id, name, aliases, sector, founded, headquarters):
    return Entity(
        entity_id,
        name,
        "Company",
        tuple(aliases),
        MappingProxyType(
            {"sector": sector, "founded": founded, "headquarters": headquarters}
        ),
    )


def _person(entity_id, name, aliases, occupation, affiliation):
    return Entity(
        entity_id,
        name,
        "Person",
        tuple(aliases),
        MappingProxyType({"occupation": occupation, "affiliation": affiliation}),
    )


def _city(entity_id, name, aliases, country, population_millions):
    return Entity(
        entity_id,
        name,
        "City",
        tuple(aliases),
        MappingProxyType({"country": country, "population_millions": population_millions}),
    )


def _disease(entity_id, name, aliases, icd_chapter):
    return Entity(
        entity_id, name, "Disease", tuple(aliases), MappingProxyType({"icd_chapter": icd_chapter})
    )


def _technology(entity_id, name, aliases, concept):
    return Entity(
        entity_id, name, "Technology", tuple(aliases), MappingProxyType({"concept": concept})
    )


def default_gazetteer() -> Gazetteer:
    """The built-in world: a modest but realistic entity catalogue."""
    entities = [
        # Countries — note the US alias set from the paper's §3 example.
        _country("Q30", "United States of America",
                 ["USA", "US", "United States", "America", "the States", "U.S.", "U.S.A."],
                 "Washington", 331, "North America"),
        _country("Q16", "Canada", ["CA", "the Great White North"], "Ottawa", 38, "North America"),
        _country("Q183", "Germany", ["Deutschland", "DE", "Federal Republic of Germany"],
                 "Berlin", 83, "Europe"),
        _country("Q142", "France", ["FR", "French Republic"], "Paris", 67, "Europe"),
        _country("Q145", "United Kingdom", ["UK", "Britain", "Great Britain", "U.K."],
                 "London", 67, "Europe"),
        _country("Q148", "China", ["PRC", "People's Republic of China"], "Beijing", 1411, "Asia"),
        _country("Q17", "Japan", ["JP", "Nippon"], "Tokyo", 125, "Asia"),
        _country("Q668", "India", ["IN", "Bharat", "Republic of India"], "New Delhi", 1380, "Asia"),
        _country("Q155", "Brazil", ["BR", "Brasil"], "Brasilia", 213, "South America"),
        _country("Q96", "Mexico", ["MX", "Estados Unidos Mexicanos"], "Mexico City", 128,
                 "North America"),
        _country("Q38", "Italy", ["IT", "Italia", "Italian Republic"], "Rome", 59, "Europe"),
        _country("Q39", "Switzerland", ["CH", "Swiss Confederation", "Helvetia"], "Bern", 8,
                 "Europe"),
        # Companies.
        _company("C_ibm", "IBM", ["International Business Machines", "Big Blue"],
                 "Technology", 1911, "Armonk"),
        _company("C_acme", "Acme Analytics", ["Acme", "Acme Corp"], "Technology", 1998, "Boston"),
        _company("C_globex", "Globex Corporation", ["Globex"], "Energy", 1989, "Springfield"),
        _company("C_initech", "Initech", ["Initech Software"], "Technology", 1995, "Austin"),
        _company("C_umbrella", "Umbrella Health", ["Umbrella"], "Healthcare", 1979, "Raccoon City"),
        _company("C_stark", "Stark Industries", ["Stark"], "Defense", 1940, "Los Angeles"),
        _company("C_wayne", "Wayne Enterprises", ["WayneCorp"], "Conglomerate", 1939, "Gotham"),
        _company("C_tyrell", "Tyrell Corporation", ["Tyrell"], "Biotechnology", 2016,
                 "Los Angeles"),
        _company("C_hooli", "Hooli", ["Hooli Inc"], "Technology", 2004, "Palo Alto"),
        _company("C_soylent", "Soylent Industries", ["Soylent"], "Food", 2022, "New York City"),
        _company("C_vandelay", "Vandelay Industries", ["Vandelay"], "Import Export", 1991,
                 "New York City"),
        _company("C_cyberdyne", "Cyberdyne Systems", ["Cyberdyne"], "Technology", 1984,
                 "Sunnyvale"),
        # People.
        _person("P_ada", "Ada Lovelace", ["Countess of Lovelace", "Augusta Ada King"],
                "Mathematician", "Analytical Engine"),
        _person("P_turing", "Alan Turing", ["Turing"], "Computer Scientist", "Bletchley Park"),
        _person("P_curie", "Marie Curie", ["Madame Curie", "Maria Sklodowska"],
                "Physicist", "Sorbonne"),
        _person("P_einstein", "Albert Einstein", ["Einstein"], "Physicist", "Princeton"),
        _person("P_hopper", "Grace Hopper", ["Amazing Grace", "Grace Murray Hopper"],
                "Computer Scientist", "US Navy"),
        _person("P_shannon", "Claude Shannon", ["Shannon"], "Mathematician", "Bell Labs"),
        _person("P_mccarthy", "John McCarthy", [], "Computer Scientist", "Stanford"),
        _person("P_hamilton", "Margaret Hamilton", [], "Software Engineer", "MIT"),
        # Cities.
        _city("CT_nyc", "New York City", ["NYC", "New York", "the Big Apple"],
              "United States of America", 8.8),
        _city("CT_london", "London", [], "United Kingdom", 9.0),
        _city("CT_paris", "Paris", ["City of Light"], "France", 2.1),
        _city("CT_tokyo", "Tokyo", [], "Japan", 14.0),
        _city("CT_berlin", "Berlin", [], "Germany", 3.6),
        _city("CT_toronto", "Toronto", [], "Canada", 2.9),
        _city("CT_mumbai", "Mumbai", ["Bombay"], "India", 20.4),
        _city("CT_sao_paulo", "Sao Paulo", [], "Brazil", 12.3),
        # Diseases — per §3 the naming conventions diverge across data sets.
        _disease("D_influenza", "Influenza", ["flu", "the flu", "grippe"], "respiratory"),
        _disease("D_diabetes", "Diabetes Mellitus", ["diabetes", "sugar diabetes"], "endocrine"),
        _disease("D_hypertension", "Hypertension", ["high blood pressure", "HTN"], "circulatory"),
        _disease("D_asthma", "Asthma", ["bronchial asthma"], "respiratory"),
        _disease("D_malaria", "Malaria", ["marsh fever", "paludism"], "parasitic"),
        _disease("D_measles", "Measles", ["rubeola", "morbilli"], "viral"),
        # Technologies.
        _technology("T_ml", "Machine Learning", ["ML", "statistical learning"],
                    "Artificial Intelligence"),
        _technology("T_nlp", "Natural Language Processing", ["NLP", "language processing"],
                    "Artificial Intelligence"),
        _technology("T_cloud", "Cloud Computing", ["the cloud"], "Distributed Systems"),
        _technology("T_blockchain", "Blockchain", ["distributed ledger"], "Distributed Systems"),
        _technology("T_quantum", "Quantum Computing", ["quantum computers"], "Computing Hardware"),
        _technology("T_iot", "Internet of Things", ["IoT"], "Distributed Systems"),
    ]
    return Gazetteer(entities)
