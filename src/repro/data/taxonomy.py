"""Concept taxonomy: a small ontology with subclass edges.

Serves two roles:

* the NLU concept/taxonomy taggers map keywords to concepts and report
  the concept path (e.g. ``/technology/artificial intelligence/machine
  learning``), mirroring Watson NLU's taxonomy feature;
* the subclass edges become ``rdfs:subClassOf`` triples in the RDF
  store, giving the transitive and RDFS reasoners real work to do.
"""

from __future__ import annotations


class ConceptTaxonomy:
    """A forest of concepts with keyword triggers."""

    def __init__(self) -> None:
        self._parent: dict[str, str | None] = {}
        self._triggers: dict[str, set[str]] = {}

    def add_concept(self, concept: str, parent: str | None = None,
                    triggers: list[str] | None = None) -> None:
        """Register ``concept`` under ``parent`` with trigger keywords.

        Parents must be registered before their children so the
        hierarchy is always well-formed.
        """
        if parent is not None and parent not in self._parent:
            raise ValueError(f"unknown parent concept {parent!r}")
        if concept in self._parent:
            raise ValueError(f"duplicate concept {concept!r}")
        self._parent[concept] = parent
        for trigger in triggers or []:
            self._triggers.setdefault(trigger.lower(), set()).add(concept)

    def __contains__(self, concept: str) -> bool:
        return concept in self._parent

    def __iter__(self):
        return iter(self._parent)

    def parent(self, concept: str) -> str | None:
        return self._parent[concept]

    def path(self, concept: str) -> list[str]:
        """Root-to-concept path, e.g. ['technology', 'ai', 'machine learning']."""
        chain: list[str] = []
        cursor: str | None = concept
        while cursor is not None:
            chain.append(cursor)
            cursor = self._parent[cursor]
        return list(reversed(chain))

    def ancestors(self, concept: str) -> list[str]:
        """Proper ancestors of ``concept``, nearest first."""
        return list(reversed(self.path(concept)))[1:]

    def concepts_for_token(self, token: str) -> set[str]:
        """Concepts triggered by one keyword token."""
        return set(self._triggers.get(token.lower(), set()))

    def subclass_pairs(self) -> list[tuple[str, str]]:
        """All (child, parent) edges — ready to become rdfs:subClassOf triples."""
        return [(child, parent) for child, parent in self._parent.items() if parent is not None]


def default_taxonomy() -> ConceptTaxonomy:
    """The built-in concept forest used by the default NLU providers."""
    taxonomy = ConceptTaxonomy()
    add = taxonomy.add_concept

    add("technology")
    add("artificial intelligence", "technology",
        ["intelligence", "cognitive", "ai"])
    add("machine learning", "artificial intelligence",
        ["learning", "model", "training", "ml", "algorithm"])
    add("natural language processing", "artificial intelligence",
        ["language", "text", "nlp", "linguistic", "translation"])
    add("computer vision", "artificial intelligence",
        ["image", "vision", "visual", "video"])
    add("distributed systems", "technology",
        ["distributed", "cluster", "replication"])
    add("cloud computing", "distributed systems",
        ["cloud", "datacenter", "saas"])
    add("blockchain", "distributed systems", ["blockchain", "ledger", "crypto"])
    add("computing hardware", "technology", ["chip", "processor", "hardware"])
    add("quantum computing", "computing hardware", ["quantum", "qubit"])
    add("internet of things", "distributed systems", ["iot", "sensor", "sensors"])

    add("business")
    add("finance", "business",
        ["stock", "stocks", "market", "revenue", "profit", "earnings",
         "shares", "investor", "investors"])
    add("economics", "business", ["economy", "economic", "inflation", "gdp", "trade"])
    add("management", "business", ["ceo", "executive", "strategy", "merger"])

    add("health")
    add("medicine", "health", ["disease", "treatment", "patients", "clinical", "vaccine"])
    add("public health", "health", ["outbreak", "epidemic", "pandemic", "hospital",
                                    "hospitals"])

    add("science")
    add("physics", "science", ["physics", "particle", "relativity", "energy"])
    add("mathematics", "science", ["mathematics", "theorem", "proof", "equations"])
    add("climate science", "science", ["climate", "warming", "emissions", "carbon"])

    add("society")
    add("politics", "society", ["government", "election", "policy", "parliament",
                                "congress", "minister"])
    add("sports", "society", ["championship", "tournament", "team", "olympic"])
    add("travel", "society", ["tourism", "tourists", "travel", "destination"])
    return taxonomy
