"""The simulated world the services operate over.

* :mod:`repro.data.gazetteer` — a catalogue of named entities (countries,
  companies, people, cities, diseases, technologies) with aliases,
  cross-knowledge-base links (DBpedia/YAGO/Wikidata-style URLs) and
  structured properties.
* :mod:`repro.data.lexicon` — an AFINN-style sentiment lexicon with
  negation and intensifier handling rules.
* :mod:`repro.data.taxonomy` — a concept taxonomy with subclass edges,
  used by the NLU concept taggers and the RDF reasoner demos.
* :mod:`repro.data.corpus` — a seeded synthetic web-corpus generator
  that emits HTML documents *with gold annotations* (which entities are
  mentioned, with what polarity), so NLU provider quality is measurable.
"""

from repro.data.gazetteer import Entity, Gazetteer, default_gazetteer
from repro.data.lexicon import SentimentLexicon, default_sentiment_lexicon
from repro.data.taxonomy import ConceptTaxonomy, default_taxonomy
from repro.data.corpus import CorpusDocument, SyntheticCorpus, generate_corpus

__all__ = [
    "Entity",
    "Gazetteer",
    "default_gazetteer",
    "SentimentLexicon",
    "default_sentiment_lexicon",
    "ConceptTaxonomy",
    "default_taxonomy",
    "CorpusDocument",
    "SyntheticCorpus",
    "generate_corpus",
]
