"""Sentiment lexicon (AFINN-style) with negation and intensifier rules.

The simulated sentiment-analysis services score documents and entity
mentions with this lexicon.  Different providers use different subsets
of it (see :mod:`repro.services.nlu`), which produces the measurable
quality differences the Rich SDK's ranking machinery needs.
"""

from __future__ import annotations

_POSITIVE = {
    "good": 3, "great": 4, "excellent": 5, "outstanding": 5, "superb": 5,
    "amazing": 4, "wonderful": 4, "fantastic": 4, "impressive": 3,
    "strong": 2, "positive": 2, "beneficial": 3, "successful": 3,
    "success": 3, "innovative": 3, "reliable": 3, "robust": 2,
    "efficient": 2, "profitable": 3, "growth": 2, "improved": 2,
    "improving": 2, "improvement": 2, "win": 3, "winning": 3, "won": 3,
    "breakthrough": 4, "leading": 2, "leader": 2, "best": 4, "better": 2,
    "thriving": 4, "praised": 3, "praise": 3, "acclaimed": 4, "love": 3,
    "loved": 3, "gains": 2, "gain": 2, "soared": 3, "soaring": 3,
    "surged": 3, "record": 2, "popular": 2, "promising": 3, "healthy": 2,
    "recovery": 2, "recovered": 2, "optimistic": 3, "favorable": 3,
    "delighted": 4, "celebrated": 3, "admired": 3, "trusted": 3,
    "pioneering": 3, "visionary": 3, "brilliant": 4, "remarkable": 3,
    "safe": 2, "secure": 2, "stable": 2, "prosperous": 4, "vibrant": 3,
    "generous": 3, "clean": 2, "fair": 2, "happy": 3, "progress": 2,
}

_NEGATIVE = {
    "bad": -3, "terrible": -5, "awful": -5, "horrible": -5, "poor": -3,
    "weak": -2, "negative": -2, "harmful": -3, "failed": -3, "failure": -3,
    "failing": -3, "loss": -2, "losses": -2, "lost": -2, "decline": -2,
    "declining": -2, "declined": -3, "drop": -2, "dropped": -2, "plunged": -3,
    "plummeted": -4, "crisis": -4, "scandal": -4, "fraud": -5, "corrupt": -4,
    "corruption": -4, "lawsuit": -3, "sued": -3, "fined": -3, "penalty": -2,
    "recall": -3, "defect": -3, "defective": -3, "broken": -3, "unreliable": -3,
    "slow": -2, "costly": -2, "expensive": -2, "risky": -2, "risk": -1,
    "dangerous": -3, "unsafe": -3, "disaster": -5, "disastrous": -5,
    "disappointing": -3, "disappointed": -3, "criticized": -3, "criticism": -2,
    "worst": -4, "worse": -2, "struggling": -3, "struggle": -2, "layoffs": -3,
    "bankruptcy": -5, "bankrupt": -5, "collapse": -4, "collapsed": -4,
    "outbreak": -3, "epidemic": -4, "pandemic": -4, "deadly": -4, "death": -3,
    "deaths": -3, "suffering": -3, "painful": -3, "hate": -3, "hated": -3,
    "angry": -3, "protest": -2, "unrest": -3, "war": -4, "conflict": -3,
    "pollution": -3, "contaminated": -4, "toxic": -4, "shortage": -2,
    "delayed": -2, "delay": -1, "breach": -4, "hacked": -4, "vulnerable": -2,
    "recession": -4, "inflation": -2, "unemployment": -3, "pessimistic": -3,
}

NEGATIONS = frozenset({"not", "no", "never", "neither", "nor", "without", "hardly", "barely",
                       "don't", "doesn't", "didn't", "won't", "isn't", "wasn't", "aren't",
                       "cannot", "can't", "couldn't", "shouldn't", "wouldn't"})

INTENSIFIERS = {
    "very": 1.5, "extremely": 2.0, "highly": 1.5, "remarkably": 1.5,
    "incredibly": 1.8, "really": 1.3, "quite": 1.2, "somewhat": 0.7,
    "slightly": 0.5, "barely": 0.4, "deeply": 1.5, "truly": 1.4,
}


class SentimentLexicon:
    """A word→valence map plus the rules for negation and intensifiers."""

    def __init__(self, scores: dict[str, int] | None = None) -> None:
        self.scores = dict(scores) if scores is not None else {**_POSITIVE, **_NEGATIVE}

    def __len__(self) -> int:
        return len(self.scores)

    def __contains__(self, word: str) -> bool:
        return word.lower() in self.scores

    def valence(self, word: str) -> int:
        """The raw score of ``word`` (0 when unknown)."""
        return self.scores.get(word.lower(), 0)

    def restricted(self, keep_fraction: float, seed: int = 7) -> "SentimentLexicon":
        """A deterministic subset keeping roughly ``keep_fraction`` of the entries.

        Providers of lower quality use restricted lexicons: they miss
        sentiment-bearing words, which degrades their accuracy in a
        controlled, reproducible way.
        """
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
        import hashlib

        kept: dict[str, int] = {}
        threshold = int(keep_fraction * 2**32)
        for word, score in self.scores.items():
            digest = hashlib.sha256(f"{seed}:{word}".encode()).digest()
            if int.from_bytes(digest[:4], "big") < threshold:
                kept[word] = score
        # Guarantee a non-empty lexicon even for tiny fractions.
        if not kept:
            strongest = max(self.scores.items(), key=lambda item: abs(item[1]))
            kept[strongest[0]] = strongest[1]
        return SentimentLexicon(kept)

    def score_tokens(self, tokens: list[str]) -> float:
        """Score a token sequence with negation and intensifier handling.

        A negation within the two tokens before a sentiment word flips
        its sign and damps it (the conventional 0.5 factor); an
        intensifier immediately before it scales it.
        """
        total = 0.0
        for index, token in enumerate(tokens):
            valence = self.valence(token)
            if valence == 0:
                continue
            weight = 1.0
            if index >= 1 and tokens[index - 1].lower() in INTENSIFIERS:
                weight *= INTENSIFIERS[tokens[index - 1].lower()]
            window = [tokens[back].lower() for back in range(max(0, index - 2), index)]
            if any(word in NEGATIONS for word in window):
                weight *= -0.5
            total += valence * weight
        return total


def default_sentiment_lexicon() -> SentimentLexicon:
    """The full built-in lexicon."""
    return SentimentLexicon()
