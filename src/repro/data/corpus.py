"""Seeded synthetic web-corpus generator.

Generates HTML documents about gazetteer entities **with gold
annotations**: which entities are mentioned (by which alias), the
intended per-entity sentiment, and the dominant topics.  Gold labels are
what let the reproduction *measure* NLU provider quality — the paper's
ranking formulas need a real quality signal ``q`` to weigh.

Documents carry a URL, a source domain, a type tag (``news``, ``blog``
or ``reference``) and a timestamp, so the search engines can implement
the paper's "restrict to news stories" feature and the SDK can store
query results along with the query time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.gazetteer import Entity, Gazetteer, default_gazetteer
from repro.textproc.html import render_html
from repro.util.rng import SeededRng

_POSITIVE_TEMPLATES = [
    "{entity} delivered excellent results this quarter and analysts were impressed.",
    "Observers praised {entity} for its outstanding and reliable performance.",
    "{entity} announced a remarkable breakthrough that experts called brilliant.",
    "The outlook for {entity} is promising, with strong and healthy growth expected.",
    "{entity} was celebrated as a leading and innovative force in its field.",
    "Customers reported that {entity} has been wonderful and trusted for years.",
]

_NEGATIVE_TEMPLATES = [
    "{entity} suffered a terrible setback and critics called the situation disastrous.",
    "A scandal surrounding {entity} led to lawsuits and heavy criticism.",
    "{entity} reported disappointing losses as its market position declined.",
    "Analysts warned that {entity} faces a dangerous and costly crisis.",
    "{entity} was criticized after a defective product forced an expensive recall.",
    "The struggling {entity} announced layoffs amid fears of collapse.",
]

_NEUTRAL_TEMPLATES = [
    "{entity} was mentioned in a report published on Tuesday.",
    "A spokesperson for {entity} confirmed the schedule for the meeting.",
    "The document describes the history and structure of {entity}.",
    "Representatives of {entity} attended the annual conference.",
    "{entity} appears in several public records and databases.",
]

_TOPIC_SENTENCES = {
    "Company": [
        "The stock market reacted as investors weighed revenue and earnings figures.",
        "Executives discussed strategy, a possible merger, and quarterly profit.",
    ],
    "Country": [
        "The government outlined new policy ahead of the coming election.",
        "Economists debated trade, inflation, and the state of the economy.",
    ],
    "Person": [
        "Historians discussed the proof, the theorem, and related mathematics.",
        "The lecture covered physics, energy, and early computing research.",
    ],
    "City": [
        "Tourism officials expect travel to the destination to rise this season.",
        "Urban planners presented transit data at the city council meeting.",
    ],
    "Disease": [
        "Hospitals tracked patients while clinical teams evaluated treatment options.",
        "Public health officials monitored the outbreak and vaccine supplies.",
    ],
    "Technology": [
        "Researchers trained a new model using a novel learning algorithm.",
        "Engineers deployed the system on cloud infrastructure across a cluster.",
    ],
}

_FILLER_SENTENCES = [
    "Further details are expected to be released next week.",
    "The announcement follows months of preparation.",
    "Several independent sources confirmed the account.",
    "Additional background information is available in the archive.",
    "The findings were presented at an international venue.",
]

_DOMAINS = {
    "news": ["news.example.com", "daily-wire.example.org", "world-report.example.net"],
    "blog": ["blog.example.io", "opinions.example.me"],
    "reference": ["encyclopedia.example.org", "reference.example.com"],
}


@dataclass
class CorpusDocument:
    """One generated web document plus its gold annotations."""

    doc_id: str
    url: str
    title: str
    html: str
    text: str
    doc_type: str
    domain: str
    timestamp: float
    gold_entities: dict[str, int] = field(default_factory=dict)
    gold_aliases: dict[str, list[str]] = field(default_factory=dict)
    gold_sentiment: dict[str, int] = field(default_factory=dict)
    gold_topics: list[str] = field(default_factory=list)

    @property
    def overall_gold_sentiment(self) -> int:
        """Sign of the summed per-entity stances."""
        total = sum(self.gold_sentiment.values())
        if total > 0:
            return 1
        if total < 0:
            return -1
        return 0


class SyntheticCorpus:
    """A collection of generated documents, indexable by id and URL."""

    def __init__(self, documents: list[CorpusDocument]) -> None:
        self.documents = list(documents)
        self._by_id = {document.doc_id: document for document in self.documents}
        self._by_url = {document.url: document for document in self.documents}

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self):
        return iter(self.documents)

    def by_id(self, doc_id: str) -> CorpusDocument:
        return self._by_id[doc_id]

    def by_url(self, url: str) -> CorpusDocument | None:
        return self._by_url.get(url)

    def of_type(self, doc_type: str) -> list[CorpusDocument]:
        return [document for document in self.documents if document.doc_type == doc_type]

    def mentioning(self, entity_id: str) -> list[CorpusDocument]:
        return [document for document in self.documents if entity_id in document.gold_entities]


def _surface_form(rng: SeededRng, entity: Entity) -> str:
    """Pick the canonical name or an alias — aliases keep NER honest."""
    forms = entity.all_surface_forms()
    # Canonical name twice as likely as any single alias.
    weights = [2.0] + [1.0] * (len(forms) - 1)
    return rng.weighted_choice(forms, weights)


def _stance_sentences(rng: SeededRng, entity: Entity, stance: int, count: int,
                      aliases_used: list[str]) -> list[str]:
    if stance > 0:
        pool = _POSITIVE_TEMPLATES
    elif stance < 0:
        pool = _NEGATIVE_TEMPLATES
    else:
        pool = _NEUTRAL_TEMPLATES
    # A document refers to an entity by one surface form throughout (as
    # real articles do); an NLU provider that does not know this alias
    # misses the entity entirely, which is what makes provider recall
    # measurably different.
    surface = _surface_form(rng, entity)
    sentences = []
    for _ in range(count):
        aliases_used.append(surface)
        sentences.append(rng.choice(pool).format(entity=surface))
    return sentences


def generate_corpus(
    size: int = 120,
    seed: int = 42,
    gazetteer: Gazetteer | None = None,
    start_time: float = 1_700_000_000.0,
) -> SyntheticCorpus:
    """Generate a deterministic corpus of ``size`` documents.

    Each document discusses one to three entities with independent
    stances; roughly 55% of documents are news, 25% blogs and 20%
    reference pages.
    """
    world = gazetteer if gazetteer is not None else default_gazetteer()
    rng = SeededRng(seed)
    entities = list(world)
    documents: list[CorpusDocument] = []

    for index in range(size):
        doc_rng = rng.child(f"doc-{index}")
        doc_type = doc_rng.weighted_choice(["news", "blog", "reference"], [0.55, 0.25, 0.20])
        domain = doc_rng.choice(_DOMAINS[doc_type])
        subjects = doc_rng.sample(entities, doc_rng.randint(1, min(3, len(entities))))

        paragraphs: list[str] = []
        gold_entities: dict[str, int] = {}
        gold_aliases: dict[str, list[str]] = {}
        gold_sentiment: dict[str, int] = {}
        topics: list[str] = []

        for entity in subjects:
            if doc_type == "reference":
                stance = 0  # encyclopedias are written neutrally
            else:
                stance = doc_rng.weighted_choice([1, -1, 0], [0.4, 0.4, 0.2])
            mention_count = doc_rng.randint(2, 4)
            aliases_used: list[str] = []
            sentences = _stance_sentences(doc_rng, entity, stance, mention_count, aliases_used)
            topic_pool = _TOPIC_SENTENCES.get(entity.entity_type, [])
            if topic_pool:
                sentences.append(doc_rng.choice(topic_pool))
                topics.append(entity.entity_type)
            sentences.append(doc_rng.choice(_FILLER_SENTENCES))
            paragraphs.append(" ".join(sentences))
            gold_entities[entity.entity_id] = mention_count
            gold_aliases[entity.entity_id] = aliases_used
            gold_sentiment[entity.entity_id] = stance

        lead_name = subjects[0].name
        title_verb = {1: "thrives", -1: "under pressure", 0: "in review"}[
            gold_sentiment[subjects[0].entity_id]
        ]
        title = f"{lead_name} {title_verb}"
        doc_id = f"doc-{index:04d}"
        url = f"http://{domain}/{doc_type}/{doc_id}"
        timestamp = start_time + index * 3600.0 + doc_rng.uniform(0, 1800)
        html = render_html(title, paragraphs, metadata={"doc-type": doc_type})
        text = title + "\n" + "\n".join(paragraphs)

        documents.append(
            CorpusDocument(
                doc_id=doc_id,
                url=url,
                title=title,
                html=html,
                text=text,
                doc_type=doc_type,
                domain=domain,
                timestamp=timestamp,
                gold_entities=gold_entities,
                gold_aliases=gold_aliases,
                gold_sentiment=gold_sentiment,
                gold_topics=topics,
            )
        )
    return SyntheticCorpus(documents)
