"""Runtime lock-order checking: :class:`OrderedLock` and its watchdog.

The static RA006 pass proves the *declared* structure of the code is
cycle-free; this module proves the *executed* order is.  Wrap the locks
under test in :class:`OrderedLock` (same ``with`` / ``acquire`` /
``release`` surface as ``threading.Lock``) and every acquisition
records an edge ``held -> wanted`` in the process-wide
:data:`watchdog`'s order graph.  The moment an acquisition would close
a cycle — the ABBA pattern forming, possibly across different threads
minutes apart — :class:`LockOrderViolation` is raised *before* the
caller blocks, so a test fails loudly instead of hanging.

Detection is by accumulated order, not by timing: thread one running
``A then B`` and thread two later running ``B then A`` is caught even
though the two never contended, which is exactly what makes the check
deterministic enough for CI.
"""

from __future__ import annotations

import threading

from repro.util.errors import ReproError


class LockOrderViolation(ReproError):
    """Acquiring this lock would create a cycle in the order graph."""

    def __init__(self, wanted: str, held: str, cycle: list[str]) -> None:
        path = " -> ".join(cycle)
        super().__init__(
            f"lock-order violation: acquiring {wanted!r} while holding "
            f"{held!r} closes the cycle {path}")
        self.wanted = wanted
        self.held = held
        self.cycle = cycle


class LockOrderWatchdog:
    """Process-wide acquired-while-held graph over :class:`OrderedLock`.

    Thread-safe.  ``enabled`` can be flipped off to measure the cost of
    a seeded deadlock going undetected (the analyzer's tests do exactly
    that); :meth:`reset` clears the graph between test cases.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._graph: dict[str, set[str]] = {}
        self._graph_lock = threading.Lock()
        self._held = threading.local()

    # -- per-thread held stack ----------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def held_by_current_thread(self) -> tuple[str, ...]:
        """Names of OrderedLocks this thread currently holds, in order."""
        return tuple(self._stack())

    # -- graph ---------------------------------------------------------------

    def edges(self) -> dict[str, set[str]]:
        """Copy of the recorded ``held -> acquired`` order graph."""
        with self._graph_lock:
            return {src: set(dsts) for src, dsts in self._graph.items()}

    def reset(self) -> None:
        """Forget every recorded edge (the per-thread stacks survive)."""
        with self._graph_lock:
            self._graph.clear()

    def _path(self, start: str, goal: str) -> list[str] | None:
        """A path start -> ... -> goal in the graph, or None.

        Caller holds ``_graph_lock``."""
        frontier = [(start, [start])]
        visited = {start}
        while frontier:
            node, path = frontier.pop()
            for neighbor in sorted(self._graph.get(node, ())):
                if neighbor == goal:
                    return path + [neighbor]
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append((neighbor, path + [neighbor]))
        return None

    def notify_acquire(self, name: str) -> None:
        """Record that the current thread is about to acquire ``name``.

        Raises :class:`LockOrderViolation` if any held lock is already
        reachable *from* ``name`` (so adding ``held -> name`` would
        close a cycle), before any edge is recorded.
        """
        stack = self._stack()
        if self.enabled and stack:
            with self._graph_lock:
                for held in stack:
                    if held == name:
                        raise LockOrderViolation(name, held, [name, name])
                    cycle = self._path(name, held)
                    if cycle is not None:
                        raise LockOrderViolation(name, held, [held] + cycle)
                for held in stack:
                    self._graph.setdefault(held, set()).add(name)
        stack.append(name)

    def notify_release(self, name: str) -> None:
        """Record that the current thread released ``name``."""
        stack = self._stack()
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] == name:
                del stack[position]  # drop the most recent acquisition
                break


#: Default process-wide watchdog shared by every :class:`OrderedLock`.
watchdog = LockOrderWatchdog()


class OrderedLock:
    """A named ``threading.Lock`` that reports to a lock-order watchdog.

    Drop-in for ``threading.Lock`` in tests and instrumented builds:
    supports ``with``, :meth:`acquire`/:meth:`release`, and raises
    :class:`LockOrderViolation` instead of deadlocking when an
    acquisition is inconsistent with every order seen so far.
    """

    def __init__(self, name: str,
                 watchdog: LockOrderWatchdog | None = None) -> None:
        if not name:
            raise ValueError("OrderedLock needs a non-empty name")
        self.name = name
        self.watchdog = watchdog if watchdog is not None else globals()["watchdog"]
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Check ordering, then acquire the underlying lock."""
        self.watchdog.notify_acquire(self.name)
        acquired = False
        try:
            acquired = self._lock.acquire(blocking, timeout)
            return acquired
        finally:
            if not acquired:
                self.watchdog.notify_release(self.name)

    def release(self) -> None:
        """Release the underlying lock and pop the watchdog stack."""
        self._lock.release()
        self.watchdog.notify_release(self.name)

    def locked(self) -> bool:
        """Whether the underlying lock is currently held."""
        return self._lock.locked()

    def __enter__(self) -> "OrderedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._lock.locked() else "unlocked"
        return f"<OrderedLock {self.name!r} {state}>"
