"""Forward dataflow over project graphs.

Small, deterministic fixpoint machinery shared by the interprocedural
rules and the incremental cache:

* :func:`collect_transitive` — the "what my callees do, I do" union
  fixpoint RA006 pioneered for lock reachability, generalized to any
  fact set (locks acquired, coroutines spawned, deadline sinks);
* :func:`reachable` — plain closure over an adjacency map;
* :func:`reverse` — flip an edge map (callees -> callers, imports ->
  importers);
* :func:`affected_by` — a change set plus everything that transitively
  depends on it, which is exactly the cache-invalidation question.

All functions are pure, take plain dicts of hashable keys, and iterate
in sorted order so results are reproducible run to run — byte-identical
reports are a feature the cache layer depends on.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V", bound=Hashable)

#: Fixpoint guard: generous for any real project, finite for pathology.
MAX_ROUNDS = 1000


def collect_transitive(initial: dict[K, set[V]],
                       successors: dict[K, Iterable[K]],
                       max_rounds: int = MAX_ROUNDS) -> dict[K, set[V]]:
    """Union fixpoint: ``facts[k] = initial[k] | facts[s] for s in succ``.

    With ``successors`` the call graph's caller -> callees map and
    ``initial`` the facts each function establishes directly, the
    result is the facts each function establishes *transitively* —
    no matter how many frames separate cause and effect.
    """
    facts: dict[K, set[V]] = {key: set(values)
                              for key, values in initial.items()}
    for key in successors:
        facts.setdefault(key, set())
    for _ in range(max_rounds):
        changed = False
        for key in sorted(facts):
            bucket = facts[key]
            before = len(bucket)
            for successor in successors.get(key, ()):
                bucket |= facts.get(successor, set())
            changed = changed or len(bucket) != before
        if not changed:
            break
    return facts


def reachable(successors: dict[K, Iterable[K]],
              starts: Iterable[K]) -> set[K]:
    """Every key reachable from ``starts`` (starts included)."""
    seen: set[K] = set()
    frontier = list(starts)
    while frontier:
        key = frontier.pop()
        if key in seen:
            continue
        seen.add(key)
        frontier.extend(successors.get(key, ()))
    return seen


def reverse(edges: dict[K, Iterable[K]]) -> dict[K, set[K]]:
    """Flip an adjacency map: ``a -> b`` becomes ``b -> a``."""
    flipped: dict[K, set[K]] = {}
    for src, dsts in edges.items():
        flipped.setdefault(src, set())
        for dst in dsts:
            flipped.setdefault(dst, set()).add(src)
    return flipped


def affected_by(changed: Iterable[K],
                dependents: dict[K, set[K]]) -> set[K]:
    """The change set plus its transitive dependents.

    ``dependents`` maps a key to the keys that depend *on* it (i.e. the
    :func:`reverse` of a dependency map).  This is the incremental
    cache's invalidation rule: editing ``deadline.py`` dirties every
    file whose resolution reached into it, however indirectly.
    """
    return reachable(dependents, changed)
