"""Project model shared by every analysis rule.

The analyzer parses each source file once into a :class:`SourceFile`
(AST + suppression comments) and derives a cross-file :class:`Project`
index: every class with its methods, the attributes that hold locks,
and best-effort attribute/local types so the concurrency rules (RA004,
RA006) can resolve ``self._flights.get(key).join()`` to
``Flight.join`` without running the code.

Type inference is deliberately shallow and conservative — constructor
assignments (``self.x = Flight(...)``), annotations (``self.x: Flight``
or ``self.x: dict[str, Flight]``, whose *value* type is taken), and
direct local constructor calls.  Anything unresolved simply contributes
no call edge; the rules document this as a soundness limitation.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: Callables whose result is treated as a lock-like object when assigned
#: to an attribute (``self._lock = threading.Lock()``).
LOCK_FACTORIES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "OrderedLock",
})

#: Lock kinds that are re-entrant: acquiring the same instance while
#: already holding it is legal, so self-edges are not deadlocks.
#: ``Condition`` wraps an RLock by default.
REENTRANT_FACTORIES = frozenset({"RLock", "Condition"})

#: Receiver modules whose lock factories produce *event-loop* locks.
#: ``asyncio.Lock()`` cooperates with the loop — holding it across an
#: ``await`` is normal — while a ``threading.Lock()`` held across an
#: ``await`` stalls every task on the loop (RA009).
ASYNC_LOCK_MODULES = frozenset({"asyncio", "anyio", "trio"})

_SUPPRESS = re.compile(
    r"#\s*repro:\s*ignore(?P<file>-file)?"
    r"(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")


def _suppress_rules(match: re.Match) -> set[str]:
    raw = match.group("rules")
    if raw is None:
        return {"*"}
    return {rule.strip().upper() for rule in raw.split(",") if rule.strip()}


@dataclass
class SourceFile:
    """One parsed source file plus its suppression comments."""

    path: Path
    relpath: str
    text: str
    lines: list[str]
    tree: ast.Module
    module: str
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is silenced at ``line`` (1-based)."""
        if rule_id in self.file_suppressions or "*" in self.file_suppressions:
            return True
        rules = self.line_suppressions.get(line, ())
        return rule_id in rules or "*" in rules

    def suppression_rule_ids(self) -> set[str]:
        """Every explicit rule id named in a suppression comment."""
        named: set[str] = set(self.file_suppressions)
        for rules in self.line_suppressions.values():
            named.update(rules)
        named.discard("*")
        return named


@dataclass
class ClassInfo:
    """What the rules need to know about one class definition."""

    name: str
    qualname: str  # "<module>.<Class>", unique within a project
    source: SourceFile
    node: ast.ClassDef
    #: Attribute name -> factory name for attributes assigned a lock.
    lock_attrs: dict[str, str] = field(default_factory=dict)
    #: Lock attributes built by an event-loop factory (``asyncio.Lock``).
    async_lock_attrs: set[str] = field(default_factory=set)
    #: Attribute name -> set of candidate class names (bare).
    attr_types: dict[str, set[str]] = field(default_factory=dict)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: Bare names of the classes this class lists as bases.
    bases: list[str] = field(default_factory=list)

    def is_reentrant(self, attr: str) -> bool:
        """Whether the lock held in ``attr`` may be re-acquired."""
        return self.lock_attrs.get(attr) in REENTRANT_FACTORIES


def _call_factory_name(node: ast.expr) -> str | None:
    """``threading.Lock()`` / ``Lock()`` -> ``"Lock"``; else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_async_factory(node: ast.expr) -> bool:
    """Whether a factory call is rooted in an event-loop module
    (``asyncio.Lock()`` as opposed to ``threading.Lock()``)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    return (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ASYNC_LOCK_MODULES)


def _annotation_class(node: ast.expr | None) -> str | None:
    """Best-effort class name out of an annotation expression.

    ``Flight`` -> Flight; ``"Flight"`` -> Flight; ``Flight | None`` ->
    Flight; ``dict[str, Flight]`` -> Flight (the value type, which is
    what attribute lookups like ``self._flights.get(k)`` produce).
    """
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation, possibly subscripted: take the head name.
        head = re.match(r"[A-Za-z_][A-Za-z0-9_]*", node.value.strip())
        return head.group(0) if head else None
    if isinstance(node, ast.Subscript):
        inner = node.slice
        if isinstance(inner, ast.Tuple) and inner.elts:
            return _annotation_class(inner.elts[-1])
        return _annotation_class(inner)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_class(node.left) or _annotation_class(node.right)
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


#: Public alias — the call-graph layer reuses the annotation parser.
annotation_class = _annotation_class


def _is_self_attr(node: ast.expr) -> str | None:
    """``self.<attr>`` -> attr name, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _collect_class(node: ast.ClassDef, source: SourceFile) -> ClassInfo:
    info = ClassInfo(name=node.name,
                     qualname=f"{source.module}.{node.name}",
                     source=source, node=node)
    for base in node.bases:
        if isinstance(base, ast.Name):
            info.bases.append(base.id)
        elif isinstance(base, ast.Attribute):
            info.bases.append(base.attr)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[item.name] = item
    for method in info.methods.values():
        for stmt in ast.walk(method):
            if isinstance(stmt, ast.Assign):
                targets, value, annotation = stmt.targets, stmt.value, None
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value, annotation = stmt.value, stmt.annotation
            else:
                continue
            for target in targets:
                attr = _is_self_attr(target)
                if attr is None:
                    continue
                factory = _call_factory_name(value) if value is not None else None
                if factory in LOCK_FACTORIES:
                    info.lock_attrs[attr] = factory
                    if value is not None and _is_async_factory(value):
                        info.async_lock_attrs.add(attr)
                    continue
                candidates = set()
                annotated = _annotation_class(annotation)
                if annotated is not None:
                    candidates.add(annotated)
                if factory is not None:
                    candidates.add(factory)
                if candidates:
                    info.attr_types.setdefault(attr, set()).update(candidates)
    return info


def parse_source(path: Path, root: Path) -> SourceFile:
    """Parse one file into a :class:`SourceFile` (raises SyntaxError)."""
    text = path.read_text(encoding="utf-8")
    relpath = relpath_for(path, root)
    module = relpath.removesuffix(".py").replace("/", ".")
    for prefix in ("src.",):
        module = module.removeprefix(prefix)
    tree = ast.parse(text, filename=str(path))
    source = SourceFile(path=path, relpath=relpath, text=text,
                        lines=text.splitlines(), tree=tree, module=module)
    for lineno, line in enumerate(source.lines, start=1):
        match = _SUPPRESS.search(line)
        if match is None:
            continue
        rules = _suppress_rules(match)
        if match.group("file"):
            source.file_suppressions.update(rules)
        else:
            source.line_suppressions.setdefault(lineno, set()).update(rules)
    return source


class Project:
    """Parsed files plus a cross-file class index."""

    def __init__(self, files: list[SourceFile]) -> None:
        self.files = files
        self.classes: list[ClassInfo] = []
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self.classes_by_qualname: dict[str, ClassInfo] = {}
        #: module name -> module-level lock variable names.
        self.module_locks: dict[str, dict[str, str]] = {}
        #: module name -> module-level locks built by asyncio-like factories.
        self.async_module_locks: dict[str, set[str]] = {}
        self._call_graph = None
        for source in files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    info = _collect_class(node, source)
                    self.classes.append(info)
                    self.classes_by_name.setdefault(info.name, []).append(info)
                    self.classes_by_qualname[info.qualname] = info
            for node in source.tree.body:
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    factory = _call_factory_name(node.value)
                    if factory in LOCK_FACTORIES:
                        self.module_locks.setdefault(
                            source.module, {})[node.targets[0].id] = factory
                        if _is_async_factory(node.value):
                            self.async_module_locks.setdefault(
                                source.module, set()).add(node.targets[0].id)

    def resolve_class(self, name: str) -> ClassInfo | None:
        """The unique class with this bare name, or None if ambiguous."""
        candidates = self.classes_by_name.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def call_graph(self):
        """The project-wide :class:`~repro.analysis.graph.CallGraph`.

        Built on first use and cached: every graph-based rule (RA006,
        RA008–RA011) and the incremental cache share one symbol table
        and one set of resolved call edges.
        """
        if self._call_graph is None:
            from repro.analysis.graph import CallGraph

            self._call_graph = CallGraph(self)
        return self._call_graph


def iter_candidates(paths: list[Path]) -> list[Path]:
    """Every ``.py`` file under ``paths``, deduplicated, in scan order."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            ordered.append(candidate)
    return ordered


def relpath_for(path: Path, root: Path) -> str:
    """The report-facing relative path for ``path`` (matches parsing)."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def collect_files(paths: list[Path], root: Path) -> tuple[list[SourceFile], list[str]]:
    """Parse every ``.py`` under ``paths``; returns (files, errors)."""
    sources: list[SourceFile] = []
    errors: list[str] = []
    for candidate in iter_candidates(paths):
        try:
            sources.append(parse_source(candidate, root))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            errors.append(f"{candidate}: cannot parse: {exc}")
    return sources, errors
