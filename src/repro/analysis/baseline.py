"""Accepted-debt baselines: adopt the analyzer without fixing the past.

A baseline file records the findings a team has explicitly accepted.
Runs that pass ``--baseline`` move matching findings into the report's
``baselined`` bucket: still rendered (and marked ``external`` in
SARIF), but never fatal — only *new* findings fail the build.  The
workflow is two commands::

    python -m repro.analysis src --write-baseline analysis-baseline.json
    python -m repro.analysis src --strict --baseline analysis-baseline.json

Fingerprints are **line-number independent**: hashing ``(relpath,
rule_id, message, occurrence-index)`` means reformatting or inserting
code above an accepted finding does not un-baseline it, while a second
*new* instance of the same message in the same file gets a fresh index
and fails as it should.  Fixing a baselined finding simply leaves a
stale fingerprint behind; rewrite the file when it gets noisy.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.engine import Finding, Report

#: Bump when the fingerprint recipe changes.
SCHEMA_VERSION = 1


def fingerprint(finding: Finding, index: int) -> str:
    """Stable id for the ``index``-th identical finding in its file."""
    material = "\x00".join((finding.relpath, finding.rule_id,
                            finding.message, str(index)))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:20]


def fingerprints_for(findings: list[Finding]) -> list[tuple[Finding, str]]:
    """Each finding paired with its occurrence-indexed fingerprint."""
    counts: dict[tuple[str, str, str], int] = {}
    pairs: list[tuple[Finding, str]] = []
    for finding in sorted(findings):
        key = (finding.relpath, finding.rule_id, finding.message)
        index = counts.get(key, 0)
        counts[key] = index + 1
        pairs.append((finding, fingerprint(finding, index)))
    return pairs


def write_baseline(findings: list[Finding], path: Path) -> int:
    """Persist the current findings as accepted debt; returns the count."""
    entries = {
        print_key: {"path": finding.relpath, "rule": finding.rule_id,
                    "message": finding.message}
        for finding, print_key in fingerprints_for(findings)
    }
    path.write_text(json.dumps({
        "schema": SCHEMA_VERSION,
        "fingerprints": entries,
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return len(entries)


def load_baseline(path: Path) -> set[str]:
    """The accepted fingerprints (raises ValueError on a bad file)."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "fingerprints" not in payload:
        raise ValueError(f"{path}: not a baseline file")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported baseline schema "
                         f"{payload.get('schema')!r}")
    return set(payload["fingerprints"])


def apply_baseline(report: Report, accepted: set[str]) -> None:
    """Move accepted findings into ``report.baselined`` (in place)."""
    kept: list[Finding] = []
    for finding, print_key in fingerprints_for(report.findings):
        if print_key in accepted:
            report.baselined.append(finding)
        else:
            kept.append(finding)
    report.findings = kept
    report.baselined.sort()
