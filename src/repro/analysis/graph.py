"""Project-wide symbol table and call graph.

This is the shared resolution layer underneath every interprocedural
rule (RA006, RA008–RA011) and the incremental cache.  It promotes the
shallow type inference RA006 prototyped in ``lockscan`` into one
reusable component:

* a **symbol table**: every module-level function, every class method
  (with base-class lookup), and a per-module import map
  (``from repro.util.deadline import Deadline`` makes the local name
  ``Deadline`` resolve to ``repro.util.deadline.Deadline``);
* **shallow type inference**: parameter annotations, constructor
  assignments, annotated locals, ``self.attr`` reads through the class
  attribute map, container value types, and the *return classes* of
  resolved callees (``pool = self._ensure_pool()`` picks up
  ``_ensure_pool``'s annotated/inferred return type);
* a **call graph**: for every function body, each ``ast.Call`` resolved
  to candidate project functions, recorded as :class:`CallSite` edges
  with line numbers, plus the reverse index;
* a per-file **dependency map** (imports + resolved cross-file edges +
  base classes) that the incremental cache uses for transitive
  invalidation.

Everything is deliberately conservative: a call that cannot be resolved
contributes no edge, ambiguous bare names resolve to nothing, and
nested function/lambda bodies are not attributed to their enclosing
function (they run at an unknown time).  Rules document this as a
soundness limitation; the chaos/runtime layers catch what slips by.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.project import (
    ClassInfo,
    Project,
    SourceFile,
    annotation_class,
)

#: A function's project-unique key: ``module.func`` for module-level
#: functions, ``module.Class.method`` for methods.
FunctionKey = str

#: Stdlib executor types whose ``submit`` does *not* propagate
#: contextvars — the receivers RA011 watches for.
BARE_EXECUTOR_TYPES = frozenset({"ThreadPoolExecutor", "ProcessPoolExecutor"})

#: Container accessors whose result takes the container's value type.
_CONTAINER_READS = frozenset({"get", "pop", "setdefault"})


@dataclass
class FunctionInfo:
    """Signature-level facts about one function or method."""

    key: FunctionKey
    module: str
    name: str
    source: SourceFile
    node: ast.FunctionDef | ast.AsyncFunctionDef
    owner: ClassInfo | None = None
    is_async: bool = False
    #: Positional-or-keyword parameter names, ``self``/``cls`` dropped.
    params: tuple[str, ...] = ()
    #: Keyword-only parameter names.
    kwonly: tuple[str, ...] = ()
    has_vararg: bool = False
    has_kwarg: bool = False
    #: Parameter name -> bare annotated class name (best effort).
    annotations: dict[str, str] = field(default_factory=dict)
    #: Bare class names this function can return (constructor returns
    #: and the return annotation).
    return_classes: frozenset[str] = frozenset()

    @property
    def relpath(self) -> str:
        """The file this function is defined in."""
        return self.source.relpath

    def accepts(self, param: str) -> bool:
        """Whether ``param`` can be passed by keyword."""
        return param in self.params or param in self.kwonly

    def param_index(self, param: str) -> int | None:
        """Positional index of ``param`` (after self/cls), if any."""
        try:
            return self.params.index(param)
        except ValueError:
            return None


@dataclass
class CallSite:
    """One resolved call edge: ``caller`` invokes ``callee`` at a line."""

    caller: FunctionKey
    callee: FunctionKey
    node: ast.Call
    lineno: int
    col: int


@dataclass
class _Scope:
    """Resolution context for one function body."""

    source: SourceFile
    owner: ClassInfo | None
    local_types: dict[str, set[str]] = field(default_factory=dict)


def _first_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    return None


class _BodyCalls(ast.NodeVisitor):
    """Collect the ``ast.Call`` nodes of a body, skipping nested defs."""

    def __init__(self) -> None:
        self.calls: list[ast.Call] = []

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


def body_calls(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.Call]:
    """Every call in ``node``'s own body (nested defs excluded)."""
    visitor = _BodyCalls()
    for stmt in node.body:
        visitor.visit(stmt)
    return visitor.calls


class CallGraph:
    """Symbol table + resolved call edges for a parsed project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.functions: dict[FunctionKey, FunctionInfo] = {}
        #: bare function name -> module-level function keys sharing it.
        self.by_bare_name: dict[str, list[FunctionKey]] = {}
        #: module name -> local name -> fully qualified symbol.
        self.imports: dict[str, dict[str, str]] = {}
        self.out_calls: dict[FunctionKey, list[CallSite]] = {}
        self.in_calls: dict[FunctionKey, list[CallSite]] = {}
        #: relpath -> relpaths this file's resolution depends on.
        self.file_deps: dict[str, set[str]] = {}
        self._module_files = {source.module: source.relpath
                              for source in project.files}
        self._local_types_cache: dict[int, dict[str, set[str]]] = {}
        self._index()
        self._link()

    # -- indexing ----------------------------------------------------------

    def _index(self) -> None:
        for source in self.project.files:
            self.imports[source.module] = self._import_table(source)
            self.file_deps.setdefault(source.relpath, set())
            for node in source.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = self._function_info(node, source, owner=None)
                    self.functions[info.key] = info
                    self.by_bare_name.setdefault(node.name, []).append(info.key)
        for cls in self.project.classes:
            for name, method in cls.methods.items():
                info = self._function_info(method, cls.source, owner=cls)
                self.functions[info.key] = info
            for base in cls.bases:
                base_info = self.project.resolve_class(base)
                if base_info is not None and base_info.source is not cls.source:
                    self._depend(cls.source.relpath, base_info.source.relpath)
        for source in self.project.files:
            for local, qualified in self.imports[source.module].items():
                target = self._module_files.get(qualified)
                if target is None:
                    # "from repro.x import y": the module is repro.x.
                    target = self._module_files.get(
                        qualified.rsplit(".", 1)[0])
                if target is not None and target != source.relpath:
                    self._depend(source.relpath, target)

    def _depend(self, relpath: str, on: str) -> None:
        if on != relpath:
            self.file_deps.setdefault(relpath, set()).add(on)

    @staticmethod
    def _import_table(source: SourceFile) -> dict[str, str]:
        table: dict[str, str] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                # "import a.b.c" binds "a"; "import a.b as x" binds
                # x -> "a.b".
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".", 1)[0]
                        table[head] = head
            elif isinstance(node, ast.ImportFrom) and node.module:
                base = node.module
                if node.level:
                    # Relative import: anchor on this module's package.
                    package = source.module.rsplit(".", node.level)[0]
                    base = f"{package}.{node.module}" if package else node.module
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = f"{base}.{alias.name}"
        return table

    def _function_info(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                       source: SourceFile,
                       owner: ClassInfo | None) -> FunctionInfo:
        if owner is not None:
            key = f"{owner.qualname}.{node.name}"
        else:
            key = f"{source.module}.{node.name}"
        args = node.args
        positional = [arg.arg for arg in (*args.posonlyargs, *args.args)]
        annotations: dict[str, str] = {}
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            annotated = annotation_class(arg.annotation)
            if annotated is not None:
                annotations[arg.arg] = annotated
        if owner is not None and positional and positional[0] in ("self", "cls"):
            positional = positional[1:]
        returns: set[str] = set()
        annotated_return = annotation_class(node.returns)
        if annotated_return is not None:
            returns.add(annotated_return)
        for stmt in node.body:
            for inner in ast.walk(stmt):
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.Lambda)):
                    continue
                if isinstance(inner, ast.Return) and inner.value is not None:
                    name = self._constructed_class(inner.value)
                    if name is not None:
                        returns.add(name)
        return FunctionInfo(
            key=key, module=source.module, name=node.name, source=source,
            node=node, owner=owner,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            params=tuple(positional),
            kwonly=tuple(arg.arg for arg in args.kwonlyargs),
            has_vararg=args.vararg is not None,
            has_kwarg=args.kwarg is not None,
            annotations=annotations,
            return_classes=frozenset(returns))

    @staticmethod
    def _constructed_class(value: ast.expr) -> str | None:
        """``return Flight(...)`` -> "Flight" (capitalized heuristics)."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name and name[:1].isupper():
            return name
        return None

    # -- method / symbol lookup -------------------------------------------

    def resolve_method(self, info: ClassInfo, method: str) -> FunctionKey | None:
        """Find ``method`` on ``info`` or its (resolvable) base classes."""
        seen: set[str] = set()
        queue: list[ClassInfo] = [info]
        while queue:
            cls = queue.pop(0)
            if cls.qualname in seen:
                continue
            seen.add(cls.qualname)
            if method in cls.methods:
                return f"{cls.qualname}.{method}"
            for base in cls.bases:
                base_info = self.project.resolve_class(base)
                if base_info is not None:
                    queue.append(base_info)
        return None

    def qualified_name(self, func: ast.expr, source: SourceFile) -> str | None:
        """Best-effort dotted name of a callable expression.

        ``create_task`` imported from asyncio -> ``asyncio.create_task``;
        ``asyncio.ensure_future`` -> itself; an unresolvable expression
        -> None.  Used by rules that match *external* APIs exactly.
        """
        table = self.imports.get(source.module, {})
        if isinstance(func, ast.Name):
            return table.get(func.id, func.id)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            head = table.get(func.value.id, func.value.id)
            return f"{head}.{func.attr}"
        return None

    # -- shallow type inference -------------------------------------------

    def infer_local_types(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                          owner: ClassInfo | None,
                          source: SourceFile) -> dict[str, set[str]]:
        """Best-effort local/parameter name -> candidate class names.

        Cached per function node: rules sharing the graph also share
        the inference work.
        """
        cached = self._local_types_cache.get(id(node))
        if cached is not None:
            return cached
        types: dict[str, set[str]] = {}
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            annotated = annotation_class(arg.annotation)
            if annotated is not None:
                types.setdefault(arg.arg, set()).add(annotated)
        scope = _Scope(source=source, owner=owner, local_types=types)
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    candidates = self.value_types(stmt.value, scope)
                    if candidates:
                        types.setdefault(target.id, set()).update(candidates)
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                annotated = annotation_class(stmt.annotation)
                if annotated is not None:
                    types.setdefault(stmt.target.id, set()).add(annotated)
        self._local_types_cache[id(node)] = types
        return types

    def value_types(self, value: ast.expr, scope: _Scope) -> set[str]:
        """Candidate class names for an expression's value."""
        owner = scope.owner
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                if func.id in self.project.classes_by_name:
                    return {func.id}
                qualified = self.imports.get(scope.source.module, {}) \
                    .get(func.id)
                tail = (qualified or func.id).rsplit(".", 1)[-1]
                if tail[:1].isupper():
                    # External constructor (ThreadPoolExecutor(...)).
                    return {tail}
                return self._return_types_of(value, scope)
            if isinstance(func, ast.Attribute):
                if func.attr[:1].isupper():
                    # threading.Thread(...), futures.ThreadPoolExecutor(...)
                    return {func.attr}
                if (owner is not None
                        and func.attr in _CONTAINER_READS
                        and isinstance(func.value, ast.Attribute)
                        and isinstance(func.value.value, ast.Name)
                        and func.value.value.id == "self"):
                    return set(owner.attr_types.get(func.value.attr, ()))
                return self._return_types_of(value, scope)
            return set()
        if (isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self" and owner is not None):
            return set(owner.attr_types.get(value.attr, ()))
        if isinstance(value, ast.Name):
            return set(scope.local_types.get(value.id, ()))
        return set()

    def _return_types_of(self, call: ast.Call, scope: _Scope) -> set[str]:
        """Union of return classes over the call's resolved targets."""
        types: set[str] = set()
        for key in self.resolve_call(call, scope.source, scope.owner,
                                     scope.local_types):
            info = self.functions.get(key)
            if info is not None:
                types.update(info.return_classes)
        return types

    # -- call resolution ---------------------------------------------------

    def resolve_call(self, call: ast.Call, source: SourceFile,
                     owner: ClassInfo | None,
                     local_types: dict[str, set[str]] | None = None
                     ) -> list[FunctionKey]:
        """Resolve one call to candidate project function keys."""
        local_types = local_types or {}
        func = call.func
        table = self.imports.get(source.module, {})
        if isinstance(func, ast.Name):
            qualified = table.get(func.id)
            if qualified is not None:
                if qualified in self.functions:
                    return [qualified]
                cls = self.project.classes_by_qualname.get(qualified)
                if cls is not None:
                    init = self.resolve_method(cls, "__init__")
                    return [init] if init is not None else []
                return []
            local_key = f"{source.module}.{func.id}"
            if local_key in self.functions:
                return [local_key]
            cls = self.project.resolve_class(func.id)
            if cls is not None:
                init = self.resolve_method(cls, "__init__")
                return [init] if init is not None else []
            bare = self.by_bare_name.get(func.id, [])
            return list(bare) if len(bare) == 1 else []
        if not isinstance(func, ast.Attribute):
            return []
        receiver, method = func.value, func.attr
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and owner is not None:
                key = self.resolve_method(owner, method)
                return [key] if key is not None else []
            qualified = table.get(receiver.id)
            if qualified is not None:
                module_key = f"{qualified}.{method}"
                if module_key in self.functions:
                    return [module_key]
                cls = self.project.classes_by_qualname.get(qualified)
                if cls is not None:
                    key = self.resolve_method(cls, method)
                    return [key] if key is not None else []
            targets: list[FunctionKey] = []
            for type_name in sorted(local_types.get(receiver.id, ())):
                cls = self.project.resolve_class(type_name)
                if cls is not None:
                    key = self.resolve_method(cls, method)
                    if key is not None:
                        targets.append(key)
            return targets
        if (isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self" and owner is not None):
            targets = []
            for type_name in sorted(owner.attr_types.get(receiver.attr, ())):
                cls = self.project.resolve_class(type_name)
                if cls is not None:
                    key = self.resolve_method(cls, method)
                    if key is not None:
                        targets.append(key)
            return targets
        if isinstance(receiver, ast.Call):
            # self._ensure_pool().submit(...): resolve through the
            # callee's inferred return classes.
            scope = _Scope(source=source, owner=owner,
                           local_types=local_types)
            targets = []
            for type_name in sorted(self._return_types_of(receiver, scope)):
                cls = self.project.resolve_class(type_name)
                if cls is not None:
                    key = self.resolve_method(cls, method)
                    if key is not None:
                        targets.append(key)
            return targets
        return []

    def receiver_types(self, func: ast.Attribute, source: SourceFile,
                       owner: ClassInfo | None,
                       local_types: dict[str, set[str]]) -> set[str]:
        """Candidate class names for a method call's receiver."""
        scope = _Scope(source=source, owner=owner, local_types=local_types)
        return self.value_types(func.value, scope)

    # -- linking -----------------------------------------------------------

    def _link(self) -> None:
        for key, info in sorted(self.functions.items()):
            local_types = self.infer_local_types(info.node, info.owner,
                                                 info.source)
            sites: list[CallSite] = []
            for call in body_calls(info.node):
                for callee in self.resolve_call(call, info.source,
                                                info.owner, local_types):
                    sites.append(CallSite(
                        caller=key, callee=callee, node=call,
                        lineno=call.lineno, col=call.col_offset))
                    callee_info = self.functions[callee]
                    self._depend(info.source.relpath, callee_info.relpath)
            self.out_calls[key] = sites
        for sites in self.out_calls.values():
            for site in sites:
                self.in_calls.setdefault(site.callee, []).append(site)

    # -- convenience -------------------------------------------------------

    def callees(self, key: FunctionKey) -> list[FunctionKey]:
        """Distinct callee keys of one function, sorted."""
        return sorted({site.callee for site in self.out_calls.get(key, ())})

    def successors(self) -> dict[FunctionKey, list[FunctionKey]]:
        """The caller -> callees adjacency used by dataflow fixpoints."""
        return {key: self.callees(key) for key in self.functions}
