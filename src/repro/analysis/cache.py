"""Incremental analysis cache: skip what provably did not change.

The cache is one JSON file keyed by **content hashes**: every analyzed
``.py`` file is recorded with its sha256 digest, the relpaths its
resolution depends on (imports, resolved cross-file call edges and base
classes from :class:`repro.analysis.graph.CallGraph`), and the
:class:`~repro.analysis.engine.FileSlice` the file-scope rules produced
for it.  The full report is stored alongside so a completely unchanged
tree needs **zero** parsing: the previous report is rehydrated verbatim
and ``stats`` says ``files_analyzed=0``.

When some files changed, invalidation is the dataflow question the
engine already answers: the dirty set is the changed files **plus every
transitive dependent** in the reversed dependency graph
(:func:`repro.analysis.dataflow.affected_by`).  Clean files keep their
cached file-scope slices; dirty files are re-checked; project-scope
rules (lock-order graph, deadline flow, name registry…) always re-run
because their findings depend on global structure.

Warm and cold runs of the same tree are byte-identical in every output
format: cache bookkeeping lives only in ``Report.stats``, which no
renderer includes — the CLI prints it to stderr on ``--stats``.

Soundness notes:

* Adding or removing a file changes bare-name resolution everywhere, so
  the cache falls back to a full (uncached) run for those trees.
* A file with a parse error never enters the file table, which keeps
  the tree from ever taking the zero-parse fast path while broken.
* A rule-set change (``--select`` / ``--ignore``) invalidates the whole
  cache — the recorded rule list must match exactly.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.dataflow import affected_by, reverse
from repro.analysis.engine import Analyzer, FileSlice, Report
from repro.analysis.project import (
    Project,
    collect_files,
    iter_candidates,
    relpath_for,
)

#: Bump when the payload layout or rule semantics change shape.
SCHEMA_VERSION = 1

#: Default cache directory for the CLI's bare ``--cache`` flag.
DEFAULT_CACHE_DIR = ".repro-analysis-cache"


def file_digest(path: Path) -> str | None:
    """sha256 of the file's bytes, or ``None`` if unreadable."""
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return None


class AnalysisCache:
    """Content-hash keyed cache persisted as one JSON document."""

    def __init__(self, directory: Path | str = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "cache.json"

    # -- persistence -------------------------------------------------------

    def load(self) -> dict | None:
        """The cached payload, or ``None`` if absent/corrupt/outdated."""
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != SCHEMA_VERSION:
            return None
        return payload

    def store(self, payload: dict) -> None:
        """Atomically replace the cache document."""
        self.directory.mkdir(parents=True, exist_ok=True)
        staging = self.path.with_suffix(".json.tmp")
        staging.write_text(json.dumps(payload, sort_keys=True),
                           encoding="utf-8")
        staging.replace(self.path)

    # -- the cached run ----------------------------------------------------

    def run(self, analyzer: Analyzer, paths: list[Path],
            root: Path) -> Report:
        """Analyze ``paths`` reusing everything the hashes allow."""
        digests: dict[str, str] = {}
        for candidate in iter_candidates(paths):
            digest = file_digest(candidate)
            if digest is not None:
                digests[relpath_for(candidate, root)] = digest

        rules_run = [rule.rule_id for rule in analyzer.rules]
        cached = self.load()
        if cached is not None and cached.get("rules") != rules_run:
            cached = None
        same_file_set = (cached is not None
                         and set(cached["files"]) == set(digests))

        if same_file_set:
            changed = {rel for rel, meta in cached["files"].items()
                       if meta["digest"] != digests[rel]}
            if not changed:
                # Zero-parse fast path: nothing moved, replay the report.
                report = Report.from_payload(cached["report"])
                report.stats = {"files_analyzed": 0,
                                "cache_hits": len(digests)}
                return report

        files, errors = collect_files(paths, root)
        project = Project(files)

        reuse: dict[str, FileSlice] = {}
        if same_file_set:
            deps = {rel: sorted(meta["deps"])
                    for rel, meta in cached["files"].items()}
            dirty = affected_by(changed, reverse(deps))
            reuse = {rel: FileSlice.from_payload(meta["slice"])
                     for rel, meta in cached["files"].items()
                     if rel not in dirty}

        run = analyzer.run_partitioned(project, errors, reuse=reuse)
        graph = project.call_graph()
        self.store({
            "schema": SCHEMA_VERSION,
            "rules": rules_run,
            "files": {
                rel: {
                    "digest": digests[rel],
                    "deps": sorted(graph.file_deps.get(rel, ())),
                    "slice": run.file_slices[rel].to_payload(),
                }
                for rel in run.file_slices if rel in digests
            },
            "report": run.report.to_payload(),
        })
        hits = len(reuse)
        run.report.stats = {"files_analyzed": len(run.file_slices) - hits,
                            "cache_hits": hits}
        return run.report
