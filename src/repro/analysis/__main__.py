"""Command-line entry point: ``python -m repro.analysis [paths]``.

Exit status: 0 when clean, 1 when there are findings or parse errors
(or, under ``--strict``, suppression comments naming unknown rules),
2 on usage errors.  ``--format json`` emits a machine-readable report
for CI annotation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import ALL_RULE_IDS, Analyzer, default_rules


def _parse_rule_list(raw: str) -> set[str]:
    return {chunk.strip().upper() for chunk in raw.split(",") if chunk.strip()}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for the docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description="Project-aware static analysis for the repro codebase.")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--strict", action="store_true",
                        help="also fail on suppressions naming unknown rules")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--ignore", metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--root", metavar="DIR",
                        help="project root for relative paths and the "
                             "docs/observability.md lookup (default: CWD)")
    parser.add_argument("--docs", metavar="FILE",
                        help="observability doc checked by RA005")
    parser.add_argument("--verbose", action="store_true",
                        help="also list suppressed findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the analyzer; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id}  {rule.description}")
        return 0
    select = _parse_rule_list(args.select) if args.select else None
    ignore = _parse_rule_list(args.ignore) if args.ignore else None
    if select is not None:
        unknown = select - set(ALL_RULE_IDS)
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
    root = Path(args.root) if args.root else Path.cwd()
    rules = default_rules(select=select, ignore=ignore, root=root,
                          docs_path=args.docs)
    if not rules:
        print("no rules selected", file=sys.stderr)
        return 2
    report = Analyzer(rules).run([Path(path) for path in args.paths],
                                 root=root)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text(verbose=args.verbose))
    return 0 if report.ok(strict=args.strict) else 1


if __name__ == "__main__":
    raise SystemExit(main())
