"""Command-line entry point: ``python -m repro.analysis [paths]``.

Exit status: 0 when clean, 1 when there are findings or parse errors
(or, under ``--strict``, suppression comments naming unknown rules),
2 on usage errors.  ``--format json`` emits a machine-readable report
for CI annotation, ``--format sarif`` the SARIF 2.1.0 document code
scanners ingest.  ``--cache`` enables the incremental cache,
``--baseline`` / ``--write-baseline`` manage accepted debt, and
``--changed-only`` / ``--since REF`` narrow the *reported* findings to
files the git working tree (or a ref range) touched — the analysis
itself always covers the full tree so interprocedural rules stay sound.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time  # repro: ignore[RA001] — wall-clock timing of the analyzer process itself, not domain deadline math
from pathlib import Path

from repro.analysis import ALL_RULE_IDS, Analyzer, default_rules
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cache import DEFAULT_CACHE_DIR, AnalysisCache
from repro.analysis.engine import Report
from repro.analysis.sarif import render_sarif


def _parse_rule_list(raw: str) -> set[str]:
    return {chunk.strip().upper() for chunk in raw.split(",") if chunk.strip()}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for the docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description="Project-aware static analysis for the repro codebase.")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--strict", action="store_true",
                        help="also fail on suppressions naming unknown rules")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--ignore", metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--root", metavar="DIR",
                        help="project root for relative paths and the "
                             "docs/observability.md lookup (default: CWD)")
    parser.add_argument("--docs", metavar="FILE",
                        help="observability doc checked by RA005")
    parser.add_argument("--verbose", action="store_true",
                        help="also list suppressed findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--cache", metavar="DIR", nargs="?",
                        const=DEFAULT_CACHE_DIR, default=None,
                        help="incremental cache directory (bare flag: "
                             f"{DEFAULT_CACHE_DIR})")
    parser.add_argument("--baseline", metavar="FILE",
                        help="accepted-debt baseline; matching findings "
                             "are reported but never fatal")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write the current findings as the new "
                             "baseline and exit 0")
    parser.add_argument("--changed-only", action="store_true",
                        help="only report findings in files the git "
                             "working tree changed (analysis still covers "
                             "the full tree)")
    parser.add_argument("--since", metavar="REF",
                        help="only report findings in files changed since "
                             "the given git ref (implies --changed-only "
                             "semantics)")
    parser.add_argument("--stats", action="store_true",
                        help="print files-analyzed / cache-hit / wall-time "
                             "stats to stderr (never part of the report)")
    return parser


def _git_changed_relpaths(root: Path, since: str | None) -> set[str] | None:
    """Relpaths git reports as changed (plus untracked), or ``None``."""
    base = ["git", "-C", str(root)]
    # --relative keys the paths to ``root`` (the reports' relpath base),
    # not the repository toplevel.
    diff = base + ["diff", "--name-only", "--relative"]
    diff += [since] if since else ["HEAD"]
    try:
        changed = subprocess.run(diff, capture_output=True, text=True,
                                 check=True).stdout
        untracked = subprocess.run(
            base + ["ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = getattr(exc, "stderr", "") or str(exc)
        print(f"git change detection failed: {detail.strip()}",
              file=sys.stderr)
        return None
    return {line.strip() for line in (changed + untracked).splitlines()
            if line.strip()}


def _restrict_to(report: Report, relpaths: set[str]) -> None:
    """Drop findings outside ``relpaths`` (analysis already ran fully)."""
    report.findings = [f for f in report.findings if f.relpath in relpaths]
    report.suppressed = [f for f in report.suppressed
                         if f.relpath in relpaths]
    report.baselined = [f for f in report.baselined
                        if f.relpath in relpaths]


def main(argv: list[str] | None = None) -> int:
    """Run the analyzer; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id}  {rule.description}")
        return 0
    select = _parse_rule_list(args.select) if args.select else None
    ignore = _parse_rule_list(args.ignore) if args.ignore else None
    if select is not None:
        unknown = select - set(ALL_RULE_IDS)
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
    root = Path(args.root) if args.root else Path.cwd()
    rules = default_rules(select=select, ignore=ignore, root=root,
                          docs_path=args.docs)
    if not rules:
        print("no rules selected", file=sys.stderr)
        return 2

    cache = AnalysisCache(args.cache) if args.cache else None
    started = time.perf_counter()
    report = Analyzer(rules).run([Path(path) for path in args.paths],
                                 root=root, cache=cache)
    elapsed = time.perf_counter() - started

    if args.write_baseline:
        count = write_baseline(report.findings, Path(args.write_baseline))
        print(f"wrote {count} fingerprint(s) to {args.write_baseline}",
              file=sys.stderr)
        return 0
    if args.baseline:
        try:
            accepted = load_baseline(Path(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline: {exc}", file=sys.stderr)
            return 2
        apply_baseline(report, accepted)

    if args.changed_only or args.since:
        changed = _git_changed_relpaths(root, args.since)
        if changed is None:
            return 2
        _restrict_to(report, changed)

    if args.format == "json":
        print(report.to_json())
    elif args.format == "sarif":
        print(render_sarif(report, rules))
    else:
        print(report.render_text(verbose=args.verbose))
    if args.stats:
        analyzed = report.stats.get("files_analyzed", report.files_scanned)
        hits = report.stats.get("cache_hits", 0)
        print(f"stats: files_analyzed={analyzed} cache_hits={hits} "
              f"wall_time={elapsed:.3f}s", file=sys.stderr)
    return 0 if report.ok(strict=args.strict) else 1


if __name__ == "__main__":
    raise SystemExit(main())
