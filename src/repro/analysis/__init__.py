"""Project-aware static analysis and concurrency lint for the repo.

``python -m repro.analysis src/repro --strict`` runs the full rule
catalog over the SDK and exits non-zero on any unsuppressed finding:

* **RA001** clock discipline — raw ``time`` / ``datetime.now`` outside
  ``util/clock.py``;
* **RA002** swallowed exceptions;
* **RA003** missing ``raise ... from`` chaining;
* **RA004** blocking calls inside ``with <lock>`` bodies;
* **RA005** metric/span names must come from ``repro.obs.names`` and be
  documented;
* **RA006** cycles in the static acquired-while-held lock graph
  (potential ABBA deadlocks);
* **RA007** blocking calls inside ``async def`` bodies;
* **RA008** orphaned tasks — un-awaited coroutines and dropped
  ``asyncio.create_task`` / ``ensure_future`` handles;
* **RA009** sync locks held across ``await``;
* **RA010** deadline propagation — a held ``Deadline`` must be threaded
  to every deadline-accepting callee;
* **RA011** contextvar discipline at bare thread hand-offs.

The interprocedural rules share one whole-program layer: a call graph
with shallow type inference (:mod:`repro.analysis.graph`) and fixpoint
machinery (:mod:`repro.analysis.dataflow`).  An incremental cache
(:mod:`repro.analysis.cache`), SARIF 2.1.0 output
(:mod:`repro.analysis.sarif`) and an accepted-debt baseline
(:mod:`repro.analysis.baseline`) make the CLI CI-grade.

Suppress a finding with ``# repro: ignore[RA002]`` on its line (plus a
comment saying why), or ``# repro: ignore-file[RA004]`` for a file.
:mod:`repro.analysis.runtime` provides the runtime counterpart to
RA006: :class:`~repro.analysis.runtime.OrderedLock` records actual
acquisition order and raises on cycle formation.  See
``docs/static-analysis.md`` for the full catalog and extension guide.
"""

from repro.analysis.engine import Analyzer, Finding, Report, Rule
from repro.analysis.rules import ALL_RULE_IDS, RULE_CLASSES, default_rules


def analyze_paths(paths, root=None, select=None, ignore=None,
                  docs_path=None) -> Report:
    """Run the default rule catalog over ``paths``; returns a Report.

    ``paths`` are files or directories (strings or ``Path``); ``root``
    anchors relative paths in the report (defaults to the CWD).
    ``select`` / ``ignore`` filter by rule id.
    """
    from pathlib import Path

    root = Path(root) if root is not None else Path.cwd()
    rules = default_rules(
        select={rule.upper() for rule in select} if select else None,
        ignore={rule.upper() for rule in ignore} if ignore else None,
        root=root, docs_path=docs_path)
    analyzer = Analyzer(rules)
    return analyzer.run([Path(path) for path in paths], root=root)


__all__ = [
    "ALL_RULE_IDS",
    "Analyzer",
    "Finding",
    "Report",
    "Rule",
    "RULE_CLASSES",
    "analyze_paths",
    "default_rules",
]
