"""Rule registry for ``repro.analysis``.

Every rule is a small module exporting one :class:`~repro.analysis.engine.Rule`
subclass; :func:`default_rules` instantiates the full catalog in id
order.  To add a rule: write ``raNNN_topic.py`` with a ``Rule``
subclass, import it here, append it to :data:`RULE_CLASSES`, and
document it in ``docs/static-analysis.md`` (the doc page's catalog test
keeps the two in sync).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import Rule
from repro.analysis.rules.ra001_clock import ClockDisciplineRule
from repro.analysis.rules.ra002_swallow import SwallowedExceptionRule
from repro.analysis.rules.ra003_chain import ExceptionChainingRule
from repro.analysis.rules.ra004_blocking import BlockingUnderLockRule
from repro.analysis.rules.ra005_names import NameRegistryRule
from repro.analysis.rules.ra006_lockorder import LockOrderRule
from repro.analysis.rules.ra007_async_blocking import AsyncBlockingRule
from repro.analysis.rules.ra008_orphan_tasks import OrphanTaskRule
from repro.analysis.rules.ra009_lock_await import LockAcrossAwaitRule
from repro.analysis.rules.ra010_deadline import DeadlinePropagationRule
from repro.analysis.rules.ra011_contextvar import ContextvarDisciplineRule

RULE_CLASSES: tuple[type[Rule], ...] = (
    ClockDisciplineRule,
    SwallowedExceptionRule,
    ExceptionChainingRule,
    BlockingUnderLockRule,
    NameRegistryRule,
    LockOrderRule,
    AsyncBlockingRule,
    OrphanTaskRule,
    LockAcrossAwaitRule,
    DeadlinePropagationRule,
    ContextvarDisciplineRule,
)

ALL_RULE_IDS: tuple[str, ...] = tuple(cls.rule_id for cls in RULE_CLASSES)


def default_rules(select: set[str] | None = None,
                  ignore: set[str] | None = None,
                  root: Path | None = None,
                  docs_path: str | None = None) -> list[Rule]:
    """Instantiate the rule catalog, honoring select/ignore filters."""
    rules: list[Rule] = []
    for cls in RULE_CLASSES:
        if select is not None and cls.rule_id not in select:
            continue
        if ignore is not None and cls.rule_id in ignore:
            continue
        if cls is NameRegistryRule:
            rules.append(NameRegistryRule(root=root, docs_path=docs_path))
        else:
            rules.append(cls())
    return rules
