"""RA007 — blocking call inside an ``async def`` body.

A coroutine runs on the event loop's only thread: one synchronous
``time.sleep``, lock ``acquire``, ``Future.result``, ``queue.get``,
thread ``join``, ``clock.charge`` (which really sleeps under a scaled
``RealClock``), sync ``transport.call`` or file IO stalls *every*
task on that loop — the async core exists precisely so ten thousand
in-flight invocations never wait on one.

Awaited calls are exempt (``await asyncio.sleep(...)`` yields, it does
not block), as is anything on an ``asyncio``/``anyio`` receiver.
Nested synchronous ``def``/``lambda`` bodies are skipped: they run
off-loop (executors, callbacks), almost never inline.  Virtual-clock
charges that are instant by construction carry a
``# repro: ignore[RA007]`` suppression at the call site.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Rule
from repro.analysis.project import Project, SourceFile

#: Receiver-name substrings that mark `.get()` / `.join()` as blocking.
_FUTURE_HINTS = ("future", "flight", "queue", "promise")
_JOIN_HINTS = ("thread", "pool", "worker", "process", "proc", "runner")

#: Receivers whose methods are loop-native and never block.
_ASYNC_RECEIVERS = ("asyncio", "anyio", "trio")

#: Method names that block regardless of receiver.
_ALWAYS_BLOCKING_ATTRS = frozenset({"sleep", "acquire", "charge"})
_BLOCKING_BUILTINS = frozenset({"open", "input"})


class _CoroutineVisitor(ast.NodeVisitor):
    """Scan one ``async def`` body for synchronous blocking calls."""

    def __init__(self, rule: "AsyncBlockingRule", source: SourceFile,
                 coroutine: str) -> None:
        self.rule = rule
        self.source = source
        self.coroutine = coroutine
        self.findings: list[Finding] = []

    # -- scope boundaries -----------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested sync def runs off-loop (executor, callback) — its
        # body is not this coroutine's critical path.
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        # Nested coroutines get their own visitor from the file walk.
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    def visit_Await(self, node: ast.Await) -> None:
        # An awaited call yields to the loop instead of blocking it;
        # only its *arguments* can still hide a blocking call.
        if isinstance(node.value, ast.Call):
            for child in ast.iter_child_nodes(node.value):
                if child is not node.value.func:
                    self.visit(child)
            return
        self.generic_visit(node)

    # -- blocking detection ---------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        reason = self._blocking_reason(node)
        if reason is not None:
            self.findings.append(Finding(
                self.source.relpath, node.lineno, node.col_offset,
                self.rule.rule_id,
                f"{reason} inside `async def {self.coroutine}` stalls the "
                "event loop; await the async equivalent instead"))
        self.generic_visit(node)

    def _blocking_reason(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "sleep":
                return "sleep() blocks"
            if func.id in _BLOCKING_BUILTINS:
                return f"{func.id}() performs blocking IO"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        receiver_text = ast.unparse(func.value).lower()
        if any(receiver_text.endswith(name) for name in _ASYNC_RECEIVERS):
            return None
        if attr in _ALWAYS_BLOCKING_ATTRS:
            return {"sleep": "sleep() blocks",
                    "acquire": f"{receiver_text}.acquire() blocks",
                    "charge": (f"{receiver_text}.charge() sleeps under a "
                               "RealClock")}[attr]
        if attr == "result" and any(
                h in receiver_text for h in _FUTURE_HINTS):
            return f"{receiver_text}.result() blocks"
        if (attr == "get" and any(h in receiver_text for h in _FUTURE_HINTS)
                and not node.args):
            # dict.get(key) takes a positional key; a blocking
            # Future.get()/queue.get() waits with no args (or timeout=).
            return f"{receiver_text}.get() blocks"
        if attr == "join" and any(h in receiver_text for h in _JOIN_HINTS):
            return f"{receiver_text}.join() blocks"
        if attr in {"wait", "wait_for"}:
            return f"{receiver_text}.{attr}() blocks the loop thread"
        if attr == "call" and "transport" in receiver_text:
            return (f"sync {receiver_text}.call() charges the clock "
                    "inline; use acall()")
        return None


class AsyncBlockingRule(Rule):
    """Flag sleeps, lock acquires, future waits, clock charges and sync
    transport calls written directly inside coroutine bodies."""

    rule_id = "RA007"
    description = ("blocking call (sleep / lock.acquire / Future.result / "
                   "queue.get / clock.charge / sync transport.call / IO) "
                   "inside an `async def` body")

    def check_file(self, source: SourceFile, project: Project) -> list[Finding]:
        """Visit every coroutine body in the file (nested ones too)."""
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                visitor = _CoroutineVisitor(self, source, node.name)
                for stmt in node.body:
                    visitor.visit(stmt)
                findings.extend(visitor.findings)
        return findings
