"""RA010 — a received deadline must be threaded to deadline-aware callees.

PR 5 made deadlines *absolute*: a caller that gives the SDK one second
has budgeted the entire call chain, and every layer —
``invoke``/``invoke_async``, retry, failover, hedging, admission, the
transports, the KB pipeline — accepts a ``deadline`` so the budget is
visible everywhere.  The invariant is only as strong as its weakest
frame: one function that receives a ``Deadline`` and then calls a
deadline-accepting callee *without passing it* silently converts a
bounded call into an unbounded one, exactly the class of bug the chaos
``deadline-honored`` invariant exists to catch at runtime.

This rule catches it at lint time, interprocedurally: the caller's
signature comes from its own file, the callee's from wherever the call
graph resolved it — module boundaries included.  A call *threads* the
deadline when it passes the deadline parameter by keyword or position,
forwards ``**kwargs``, or passes any expression derived from the
deadline variable (``deadline.clamp(t)``, ``deadline.remaining()`` —
budget handed over in another shape).  An explicit ``deadline=None`` is
a visible decision and is not flagged; an *absent* deadline is a silent
drop and is.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Rule
from repro.analysis.project import Project

#: The canonical parameter name plus the annotation that marks others.
_PARAM = "deadline"
_ANNOTATION = "Deadline"


def _deadline_param(info) -> str | None:
    """The function's deadline parameter name, if it has one."""
    if info.accepts(_PARAM):
        return _PARAM
    for name, annotated in sorted(info.annotations.items()):
        if annotated == _ANNOTATION and info.accepts(name):
            return name
    return None


def _mentions(node: ast.expr, name: str) -> bool:
    """Whether an expression reads ``name`` anywhere inside it."""
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name) and inner.id == name \
                and isinstance(inner.ctx, ast.Load):
            return True
    return False


class DeadlinePropagationRule(Rule):
    """Flag deadline drops at calls into deadline-accepting functions."""

    rule_id = "RA010"
    description = ("function receives a deadline but calls a "
                   "deadline-accepting callee without threading it — the "
                   "callee waits with no budget")
    scope = "project"

    def check(self, project: Project) -> list[Finding]:
        """Inspect every resolved call edge whose caller holds a deadline."""
        graph = project.call_graph()
        findings: list[Finding] = []
        for key in sorted(graph.functions):
            caller = graph.functions[key]
            held = _deadline_param(caller)
            if held is None:
                continue
            seen: set[int] = set()
            for site in graph.out_calls.get(key, ()):
                if id(site.node) in seen:
                    continue
                callee = graph.functions.get(site.callee)
                if callee is None or callee.key == key:
                    continue
                callee_param = _deadline_param(callee)
                if callee_param is None:
                    continue
                if self._threads_deadline(site.node, held, callee,
                                          callee_param):
                    continue
                seen.add(id(site.node))
                findings.append(Finding(
                    caller.source.relpath, site.lineno, site.col,
                    self.rule_id,
                    f"`{caller.name}` receives `{held}` but calls "
                    f"deadline-accepting `{callee.name}()` without "
                    f"passing it — the callee runs with no budget; pass "
                    f"{callee_param}={held} (or an explicit None with a "
                    "suppression saying why)"))
        return findings

    @staticmethod
    def _threads_deadline(call: ast.Call, held: str, callee,
                          callee_param: str) -> bool:
        for keyword in call.keywords:
            if keyword.arg is None:
                return True  # **kwargs forwarded — assume threaded
            if keyword.arg == callee_param:
                return True  # explicit decision, None included
            if _mentions(keyword.value, held):
                return True  # budget passed in another shape
        index = callee.param_index(callee_param)
        if index is not None and len(call.args) > index:
            return True  # positional value occupies the deadline slot
        for arg in call.args:
            if isinstance(arg, ast.Starred) or _mentions(arg, held):
                return True
        return False
