"""RA011 — contextvar scope must survive thread hand-offs.

Tenant identity (:func:`repro.tenancy.context.tenant_scope`) and the
current trace span ride on :mod:`contextvars`.  The repo's sanctioned
hand-off points all copy the context onto the worker:
``CallbackExecutor.submit`` wraps the callable in
``contextvars.copy_context().run``, the sharded-graph fan-out submits
``context.run``, and ``LoopRunner`` enters tasks under the submitter's
context.  A *bare* ``ThreadPoolExecutor.submit(fn)`` or
``threading.Thread(target=fn)`` silently severs all of it: the work
executes as no tenant (billed to nobody, guest-bucketed, cache-
namespaced wrongly) with an orphaned trace.

Interprocedural resolution does the heavy lifting: the receiver's type
comes from constructor assignments, parameter annotations or a resolved
callee's *return type* (``self._ensure_pool().submit(...)``), and a
project class counts as a **propagating executor** — exempting its
users — when any of its methods reaches ``copy_context`` /
``Context.run``, so wrappers are recognized by what they do, not by a
hardcoded name list.  A submit whose first argument is itself
``<context>.run`` (or a ``partial`` of it) is the propagation idiom and
passes.  Service threads that genuinely must not inherit a tenant
carry a line suppression saying so.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Rule
from repro.analysis.graph import BARE_EXECUTOR_TYPES
from repro.analysis.project import Project

#: Receiver-name substrings marking an already-copied Context object.
_CONTEXT_HINTS = ("context", "ctx")


def _is_context_run(node: ast.expr) -> bool:
    """``context.run`` / ``ctx.run`` / ``copy_context().run`` / a
    ``partial`` thereof — the sanctioned propagation idiom."""
    if isinstance(node, ast.Attribute) and node.attr == "run":
        receiver = node.value
        if isinstance(receiver, ast.Name):
            return any(hint in receiver.id.lower() for hint in _CONTEXT_HINTS)
        if isinstance(receiver, ast.Call):
            return "copy_context" in ast.unparse(receiver.func)
        return False
    if isinstance(node, ast.Call):
        func_text = ast.unparse(node.func)
        if func_text.endswith("partial") and node.args:
            return _is_context_run(node.args[0])
    return False


def _propagating_classes(project: Project) -> set[str]:
    """Bare names of project classes whose methods reach copy_context."""
    names: set[str] = set()
    for info in project.classes:
        for method in info.methods.values():
            for node in ast.walk(method):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Name) and func.id == "copy_context":
                    names.add(info.name)
                elif isinstance(func, ast.Attribute) and (
                        func.attr == "copy_context"
                        or _is_context_run(func)):
                    names.add(info.name)
    return names


class ContextvarDisciplineRule(Rule):
    """Flag tenant/trace scope dropped at bare thread hand-offs."""

    rule_id = "RA011"
    description = ("work handed to a bare ThreadPoolExecutor.submit or "
                   "threading.Thread without contextvar propagation — "
                   "tenant and trace scope are silently dropped")
    scope = "project"

    def check(self, project: Project) -> list[Finding]:
        """Resolve every submit/Thread receiver through the call graph."""
        graph = project.call_graph()
        propagating = _propagating_classes(project)
        findings: list[Finding] = []
        for key in sorted(graph.functions):
            info = graph.functions[key]
            local_types = graph.infer_local_types(info.node, info.owner,
                                                  info.source)
            for call in self._calls(info.node):
                finding = self._check_call(call, info, graph, local_types,
                                           propagating)
                if finding is not None:
                    findings.append(finding)
        return findings

    @staticmethod
    def _calls(node: ast.FunctionDef | ast.AsyncFunctionDef):
        from repro.analysis.graph import body_calls

        return body_calls(node)

    def _check_call(self, call: ast.Call, info, graph, local_types,
                    propagating: set[str]) -> Finding | None:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            types = graph.receiver_types(func, info.source, info.owner,
                                         local_types)
            if not types & BARE_EXECUTOR_TYPES:
                return None
            if types & propagating:
                return None
            if call.args and _is_context_run(call.args[0]):
                return None
            receiver = ast.unparse(func.value)
            return Finding(
                info.source.relpath, call.lineno, call.col_offset,
                self.rule_id,
                f"bare {receiver}.submit() drops contextvars — tenant and "
                "trace scope do not reach the worker; submit "
                "contextvars.copy_context().run (or use CallbackExecutor)")
        thread_name = graph.qualified_name(func, info.source)
        if thread_name == "threading.Thread":
            target = next((keyword.value for keyword in call.keywords
                           if keyword.arg == "target"), None)
            if target is None and len(call.args) >= 2:
                target = call.args[1]
            if target is None or _is_context_run(target):
                return None
            return Finding(
                info.source.relpath, call.lineno, call.col_offset,
                self.rule_id,
                "threading.Thread(target=...) starts without the caller's "
                "contextvars — wrap the target in "
                "contextvars.copy_context().run, or suppress with the "
                "reason the scope must not propagate")
        return None
