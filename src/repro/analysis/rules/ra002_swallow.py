"""RA002 — swallowed exceptions.

A dependability SDK must never lose an error on the floor: every
``except`` handler has to *do something observable* — re-raise, return
or assign a fallback, log, or record a metric.  The rule flags handlers
whose body is pure control-flow filler (``pass``, ``...``, ``continue``,
``break``, a lone docstring): the exception vanished and nothing in the
process can ever tell.

Intentional fallthroughs (e.g. type-coercion probes where the next line
*is* the handling) stay legal via an explanatory comment plus
``# repro: ignore[RA002]`` on the handler line.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Rule
from repro.analysis.project import Project, SourceFile


def _is_filler(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
        return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return True  # docstring or `...`
    return False


class SwallowedExceptionRule(Rule):
    """Flag except handlers that discard the exception without a trace."""

    rule_id = "RA002"
    description = ("except handler neither re-raises, logs, records a "
                   "metric nor assigns a fallback — the error is lost")

    def check_file(self, source: SourceFile, project: Project) -> list[Finding]:
        """Scan one file for silently swallowed exceptions."""
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if all(_is_filler(stmt) for stmt in node.body):
                caught = (ast.unparse(node.type)
                          if node.type is not None else "BaseException")
                findings.append(Finding(
                    source.relpath, node.lineno, node.col_offset,
                    self.rule_id,
                    f"`except {caught}` swallows the exception silently; "
                    "re-raise, log, record a metric, or suppress with a "
                    "justifying comment"))
        return findings
