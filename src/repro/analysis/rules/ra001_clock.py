"""RA001 — clock discipline.

Everything in this codebase that needs the current time must go through
:mod:`repro.util.clock`: the simulated services *charge* latency to a
``Clock`` instead of sleeping, so a raw ``time.time()`` /
``time.sleep()`` / ``datetime.now()`` sprinkled elsewhere silently
breaks determinism under a ``ManualClock`` (and makes tests wall-clock
dependent).  The rule flags any import of the ``time`` module and any
naive-"now" ``datetime`` access outside the allowlisted clock module.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Rule
from repro.analysis.project import Project, SourceFile

#: Files allowed to touch the raw clock (the abstraction itself).
DEFAULT_ALLOWED_SUFFIXES = ("util/clock.py",)

#: ``datetime`` attributes that read the ambient wall clock.
NAIVE_NOW_ATTRS = frozenset({"now", "utcnow", "today"})


class ClockDisciplineRule(Rule):
    """Flag raw ``time`` / naive ``datetime`` usage outside util/clock."""

    rule_id = "RA001"
    description = ("raw time.* / datetime.now usage outside util/clock.py "
                   "breaks ManualClock determinism")

    def __init__(self, allowed_suffixes: tuple[str, ...] = DEFAULT_ALLOWED_SUFFIXES) -> None:
        self.allowed_suffixes = allowed_suffixes

    def check_file(self, source: SourceFile, project: Project) -> list[Finding]:
        """Scan one file for clock-discipline violations."""
        if source.relpath.endswith(self.allowed_suffixes):
            return []
        findings: list[Finding] = []

        def flag(node: ast.AST, message: str) -> None:
            findings.append(Finding(source.relpath, node.lineno,
                                    node.col_offset, self.rule_id, message))

        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time" or alias.name.startswith("time."):
                        flag(node, "imports the raw `time` module; route "
                                   "timing through repro.util.clock")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    flag(node, "imports from the raw `time` module; route "
                               "timing through repro.util.clock")
            elif isinstance(node, ast.Attribute):
                if node.attr in NAIVE_NOW_ATTRS and self._is_datetime(node.value):
                    flag(node, f"datetime.{node.attr}() reads the ambient "
                               "wall clock; use a repro.util.clock.Clock")
        return findings

    @staticmethod
    def _is_datetime(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in {"datetime", "date"}
        if isinstance(node, ast.Attribute):
            return node.attr in {"datetime", "date"}
        return False
