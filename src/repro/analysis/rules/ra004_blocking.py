"""RA004 — blocking call while holding a lock.

A lock on the invoke hot path must only guard short critical sections:
a ``sleep``, a future ``result()``/``get()``, a queue read, file IO or
a clock ``charge`` (which really sleeps under a scaled ``RealClock``)
executed *inside* a ``with <lock>`` body stalls every other thread
contending for that lock — under heavy traffic that converts one slow
dependency into a convoyed thread pool.

``Condition.wait`` / ``wait_for`` on the *held* condition is exempt
(waiting releases the lock; that is the point of a condition variable).
Waiting on anything else while holding a lock is flagged.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Rule
from repro.analysis.project import ClassInfo, Project, SourceFile
from repro.analysis.rules.lockscan import (
    LockNode,
    format_lock,
    infer_local_types,
    resolve_lock_expr,
)

#: Receiver-name substrings that mark `.get()` / `.join()` as blocking.
_FUTURE_HINTS = ("future", "flight", "queue", "promise")
_JOIN_HINTS = ("thread", "pool", "worker", "process", "proc")

#: Method names that block regardless of receiver.
_ALWAYS_BLOCKING_ATTRS = frozenset({"sleep", "result", "charge"})
_BLOCKING_BUILTINS = frozenset({"open", "input"})


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: "BlockingUnderLockRule", source: SourceFile,
                 info: ClassInfo | None, project: Project,
                 local_types: dict[str, set[str]]) -> None:
        self.rule = rule
        self.source = source
        self.info = info
        self.project = project
        self.local_types = local_types
        self.held: list[LockNode] = []
        self.findings: list[Finding] = []

    # -- lock scoping --------------------------------------------------------

    def _resolve_lock(self, expr: ast.expr) -> LockNode | None:
        if self.info is None:
            return None
        return resolve_lock_expr(expr, self.info, self.project)

    def visit_With(self, node: ast.With) -> None:
        acquired: list[LockNode] = []
        for item in node.items:
            lock = self._resolve_lock(item.context_expr)
            if lock is None:
                self.visit(item.context_expr)
            else:
                self.held.append(lock)
                acquired.append(lock)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    visit_AsyncWith = visit_With

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested def runs later, almost never under this lock.
        return

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    # -- blocking detection ---------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self.held:
            reason = self._blocking_reason(node)
            if reason is not None:
                held = ", ".join(format_lock(lock) for lock in self.held)
                self.findings.append(Finding(
                    self.source.relpath, node.lineno, node.col_offset,
                    self.rule.rule_id,
                    f"{reason} while holding {held}; move the blocking "
                    "call outside the critical section"))
        self.generic_visit(node)

    def _blocking_reason(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "sleep":
                return "sleep()"
            if func.id in _BLOCKING_BUILTINS:
                return f"{func.id}() performs blocking IO"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        receiver_text = ast.unparse(func.value).lower()
        if attr in _ALWAYS_BLOCKING_ATTRS:
            what = {"sleep": "sleep()",
                    "result": "Future.result() blocks",
                    "charge": "clock.charge() sleeps under a RealClock"}[attr]
            return what
        if (attr == "get" and any(h in receiver_text for h in _FUTURE_HINTS)
                and not node.args):
            # dict.get(key) takes a positional key; a blocking
            # Future.get()/queue.get() waits with no args (or timeout=).
            return f"{receiver_text}.get() blocks"
        if attr == "join" and any(h in receiver_text for h in _JOIN_HINTS):
            return f"{receiver_text}.join() blocks"
        if attr in {"wait", "wait_for"}:
            held_lock = self._resolve_lock(func.value)
            if held_lock is not None and held_lock in self.held:
                return None  # Condition.wait on the held lock releases it
            return f"{receiver_text}.{attr}() blocks on a foreign waiter"
        return None


class BlockingUnderLockRule(Rule):
    """Flag sleeps, future waits, IO and clock charges under a lock."""

    rule_id = "RA004"
    description = ("blocking call (sleep / Future.result / queue.get / IO / "
                   "clock.charge) inside a `with <lock>` body")

    def check_file(self, source: SourceFile, project: Project) -> list[Finding]:
        """Scan every method and function body with lock-scope tracking."""
        findings: list[Finding] = []
        class_nodes = {info.node: info for info in project.classes
                       if info.source is source}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and node in class_nodes:
                info = class_nodes[node]
                for method in info.methods.values():
                    visitor = _Visitor(self, source, info, project,
                                       infer_local_types(method, info, project))
                    for stmt in method.body:
                        visitor.visit(stmt)
                    findings.extend(visitor.findings)
        return findings
