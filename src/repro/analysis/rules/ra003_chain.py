"""RA003 — missing exception chaining.

Raising a *new* exception inside an ``except`` handler without
``from exc`` severs the causal chain: the traceback the operator sees
ends at the translation site, and Python prints the misleading "During
handling of the above exception, another exception occurred" banner
instead of the honest "The above exception was the direct cause".
The rule flags ``raise NewError(...)`` statements lexically inside a
handler whose ``cause`` is absent; bare re-raises and ``raise err`` of
the caught name are fine, as is explicit ``from None`` when the
original really is irrelevant.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Rule
from repro.analysis.project import Project, SourceFile


class _HandlerRaises(ast.NodeVisitor):
    """Collect unchained constructor raises inside one except handler."""

    def __init__(self) -> None:
        self.hits: list[ast.Raise] = []

    def visit_Raise(self, node: ast.Raise) -> None:
        if isinstance(node.exc, ast.Call) and node.cause is None:
            self.hits.append(node)
        self.generic_visit(node)

    # A nested function's raises execute outside the handler's flow.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


class ExceptionChainingRule(Rule):
    """Flag `raise New(...)` without `from` inside except handlers."""

    rule_id = "RA003"
    description = ("new exception raised inside an except handler without "
                   "`from exc` / `from None` — the causal chain is lost")

    def check_file(self, source: SourceFile, project: Project) -> list[Finding]:
        """Scan one file for unchained raises in handlers."""
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            collector = _HandlerRaises()
            for stmt in node.body:
                collector.visit(stmt)
            for hit in collector.hits:
                raised = ast.unparse(hit.exc.func) if isinstance(
                    hit.exc, ast.Call) else "exception"
                findings.append(Finding(
                    source.relpath, hit.lineno, hit.col_offset, self.rule_id,
                    f"raise {raised}(...) inside an except handler without "
                    "`from exc` (or `from None`)"))
        return findings
