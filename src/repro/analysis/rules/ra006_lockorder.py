"""RA006 — static lock-order deadlock detection.

Builds the project's **acquired-while-held** graph: a node per lock
(``Class.attr`` for instance locks, ``module.NAME`` for module-level
locks) and an edge ``A -> B`` whenever some method acquires ``B`` while
statically holding ``A`` — either directly (nested ``with`` blocks) or
through a resolved call chain (``with self._lock: flight.join()`` where
``Flight.join`` takes ``Flight._lock``).  Call effects are propagated
to a fixpoint over the project call graph, so the edge is found no
matter how many frames separate the two acquisitions.

A cycle in this graph is the classic ABBA deadlock recipe: two threads
entering the cycle from different nodes can each hold the lock the
other needs.  Every strongly connected component with more than one
node — and every non-reentrant self-edge (a method re-acquiring the
plain ``Lock`` it already holds) — is reported.

The runtime counterpart (:mod:`repro.analysis.runtime`) checks the same
property against *actual* acquisition order in tests.
"""

from __future__ import annotations

from repro.analysis.dataflow import collect_transitive
from repro.analysis.engine import Finding, Rule
from repro.analysis.project import Project
from repro.analysis.rules.lockscan import (
    LockNode,
    MethodKey,
    format_lock,
    scan_project,
)


def _locks_reachable(scans) -> dict[MethodKey, set[LockNode]]:
    """Fixpoint: every lock a method may acquire, transitively."""
    return collect_transitive(
        initial={key: {lock for lock, _ in scan.acquires}
                 for key, scan in scans.items()},
        successors={key: [callee for callee, _ in scan.calls]
                    for key, scan in scans.items()})


def _strongly_connected(nodes, edges) -> list[list[LockNode]]:
    """Tarjan's SCC algorithm (iterative), deterministic ordering."""
    adjacency: dict[LockNode, list[LockNode]] = {node: [] for node in nodes}
    for src, dst in edges:
        if dst is not src:
            adjacency[src].append(dst)
    index: dict[LockNode, int] = {}
    lowlink: dict[LockNode, int] = {}
    on_stack: set[LockNode] = set()
    stack: list[LockNode] = []
    counter = [0]
    components: list[list[LockNode]] = []

    for root in sorted(adjacency):
        if root in index:
            continue
        work: list[tuple[LockNode, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = sorted(adjacency[node])
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index:
                    work.append((node, child_index))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: list[LockNode] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


class LockOrderRule(Rule):
    """Fail on cycles in the static acquired-while-held lock graph."""

    rule_id = "RA006"
    scope = "project"
    description = ("cycle in the acquired-while-held lock graph — "
                   "a potential ABBA deadlock")

    def check(self, project: Project) -> list[Finding]:
        """Build the lock graph across the whole project and find cycles."""
        scans = scan_project(project)
        reach = _locks_reachable(scans)
        reentrant = self._reentrant_nodes(project)

        # edge -> (relpath, line, explanation); first witness wins.
        edges: dict[tuple[LockNode, LockNode], tuple[str, int, str]] = {}
        for key, scan in sorted(scans.items()):
            relpath = scan.source.relpath
            for held, acquired, line in scan.held_acquires:
                edges.setdefault((held, acquired), (
                    relpath, line,
                    f"{format_lock(held)} held while acquiring "
                    f"{format_lock(acquired)}"))
            for held, callee, line in scan.held_calls:
                for acquired in sorted(reach.get(callee, ())):
                    edges.setdefault((held, acquired), (
                        relpath, line,
                        f"{format_lock(held)} held while calling "
                        f"{callee[0].rsplit('.', 1)[-1]}.{callee[1]}(), "
                        f"which acquires {format_lock(acquired)}"))

        findings: list[Finding] = []
        nodes = {node for edge in edges for node in edge}

        # Non-reentrant self-edges: re-acquiring a plain Lock deadlocks
        # immediately, no second thread required.
        for (src, dst), (relpath, line, explanation) in sorted(edges.items()):
            if src == dst and src not in reentrant:
                findings.append(Finding(
                    relpath, line, 0, self.rule_id,
                    f"self-deadlock: {explanation} — the lock is not "
                    "re-entrant"))

        for component in _strongly_connected(nodes, edges):
            if len(component) < 2:
                continue
            member_set = set(component)
            witnesses = [
                f"{explanation} ({relpath}:{line})"
                for (src, dst), (relpath, line, explanation)
                in sorted(edges.items())
                if src in member_set and dst in member_set and src != dst
            ]
            cycle = " <-> ".join(format_lock(node) for node in component)
            first = min(
                (edges[edge] for edge in edges
                 if edge[0] in member_set and edge[1] in member_set
                 and edge[0] != edge[1]),
                key=lambda item: (item[0], item[1]))
            findings.append(Finding(
                first[0], first[1], 0, self.rule_id,
                f"lock-order cycle ({cycle}): " + "; ".join(witnesses)))
        return findings

    @staticmethod
    def _reentrant_nodes(project: Project) -> set[LockNode]:
        nodes: set[LockNode] = set()
        for info in project.classes:
            for attr in info.lock_attrs:
                if info.is_reentrant(attr):
                    nodes.add((info.qualname, attr))
        for module, locks in project.module_locks.items():
            for name, factory in locks.items():
                if factory in {"RLock", "Condition"}:
                    nodes.add((module, name))
        return nodes
