"""RA008 — un-awaited coroutines and orphaned asyncio tasks.

Two ways the async core silently loses work:

* a call to an ``async def`` whose coroutine is created and dropped —
  the body never runs, errors never surface (``self._flush()`` instead
  of ``await self._flush()``);
* an ``asyncio.create_task`` / ``ensure_future`` whose returned task is
  discarded (or bound to a name that is never read) — the task runs,
  but nothing can await it, observe its exception, or cancel it on
  shutdown; the loop may even garbage-collect it mid-flight.

The check is interprocedural: whether a dropped call produces a
coroutine is answered by the project call graph, so ``fetch()`` defined
``async`` three modules away is caught at a sync-looking call site.
``TaskGroup``/nursery ``create_task`` results are exempt (the group
*is* the kept reference and the cancellation path), as is anything
awaited, returned, passed on, or stored on an attribute/container.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, Rule
from repro.analysis.project import Project

#: Spawn APIs whose result must be kept to await/cancel the task.
_SPAWN_QUALNAMES = frozenset({
    "asyncio.create_task", "asyncio.ensure_future",
})
_SPAWN_ATTRS = frozenset({"create_task", "ensure_future"})

#: Receiver-name substrings marking a *managed* spawn (the receiver
#: keeps the reference and cancels on scope exit).
_MANAGED_RECEIVERS = ("group", "nursery", "tg", "supervisor")


def _spawn_reason(call: ast.Call, graph, source) -> str | None:
    """Why this call creates a task needing a kept reference, if it does."""
    func = call.func
    qualified = graph.qualified_name(func, source)
    if qualified in _SPAWN_QUALNAMES:
        return qualified
    if isinstance(func, ast.Attribute) and func.attr in _SPAWN_ATTRS:
        receiver = ast.unparse(func.value).lower()
        if any(hint in receiver for hint in _MANAGED_RECEIVERS):
            return None
        return f"{receiver}.{func.attr}"
    return None


class _LoadCounter(ast.NodeVisitor):
    """Count Name loads per identifier across a whole function body."""

    def __init__(self) -> None:
        self.loads: dict[str, int] = {}

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.loads[node.id] = self.loads.get(node.id, 0) + 1


class OrphanTaskRule(Rule):
    """Flag dropped coroutines and unreferenced spawned tasks."""

    rule_id = "RA008"
    description = ("un-awaited coroutine or orphaned asyncio task "
                   "(create_task/ensure_future result dropped — nothing "
                   "can await, observe or cancel it)")
    scope = "project"

    def check(self, project: Project) -> list[Finding]:
        """Walk every function via the call graph; resolve async callees."""
        graph = project.call_graph()
        findings: list[Finding] = []
        for key in sorted(graph.functions):
            info = graph.functions[key]
            findings.extend(self._check_function(info, graph))
        return findings

    def _check_function(self, info, graph) -> list[Finding]:
        findings: list[Finding] = []
        local_types = graph.infer_local_types(info.node, info.owner,
                                              info.source)
        loads = _LoadCounter()
        loads.visit(info.node)
        for stmt in self._body_statements(info.node):
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                findings.extend(self._check_dropped(
                    stmt.value, info, graph, local_types))
            elif (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Call)):
                target = stmt.targets[0].id
                if loads.loads.get(target, 0) == 0:
                    findings.extend(self._check_unread(
                        stmt.value, target, info, graph, local_types))
        return findings

    @staticmethod
    def _body_statements(node: ast.FunctionDef | ast.AsyncFunctionDef):
        """Every statement in the function's own body, nested defs skipped."""
        stack = list(node.body)
        while stack:
            stmt = stack.pop(0)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield stmt
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    stack.append(child)
                elif isinstance(child, (ast.ExceptHandler, ast.match_case)):
                    stack.extend(child.body)

    def _check_dropped(self, call, info, graph, local_types) -> list[Finding]:
        spawn = _spawn_reason(call, graph, info.source)
        if spawn is not None:
            return [Finding(
                info.source.relpath, call.lineno, call.col_offset,
                self.rule_id,
                f"{spawn}(...) result is discarded — an orphaned task has "
                "no reference to await, observe or cancel; keep it (e.g. "
                "in a task set or attribute)")]
        for callee in graph.resolve_call(call, info.source, info.owner,
                                         local_types):
            target = graph.functions.get(callee)
            if target is not None and target.is_async:
                return [Finding(
                    info.source.relpath, call.lineno, call.col_offset,
                    self.rule_id,
                    f"call to async `{callee}` is never awaited — the "
                    "coroutine is created and dropped, its body never "
                    "runs")]
        return []

    def _check_unread(self, call, target, info, graph,
                      local_types) -> list[Finding]:
        spawn = _spawn_reason(call, graph, info.source)
        if spawn is not None:
            return [Finding(
                info.source.relpath, call.lineno, call.col_offset,
                self.rule_id,
                f"task from {spawn}(...) is bound to `{target}` but never "
                "read — no await, no cancellation path; keep a live "
                "reference or await it")]
        for callee in graph.resolve_call(call, info.source, info.owner,
                                         local_types):
            resolved = graph.functions.get(callee)
            if resolved is not None and resolved.is_async:
                return [Finding(
                    info.source.relpath, call.lineno, call.col_offset,
                    self.rule_id,
                    f"coroutine from async `{callee}` is bound to "
                    f"`{target}` but never awaited — its body never runs")]
        return []
