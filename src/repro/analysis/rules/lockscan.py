"""Shared lock-scope scanning for the concurrency rules (RA004, RA006).

Walks a method body tracking which locks are *statically held* at each
point (``with self._lock:`` bodies, matched against the owning class's
inferred lock attributes) and resolves method calls through the
project's shallow type information, so the rules can reason about what
happens while a lock is held — a blocking call (RA004) or the
acquisition of another lock, directly or via a resolved callee (RA006).

A ``LockNode`` is ``(owner, attr)`` where owner is the class qualname
for instance locks or the module name for module-level locks.  The
analysis is intentionally *per-class*, not per-instance: two instances
of the same class share a node.  That is the useful granularity for
lock-ordering (the convention is per-class) and errs toward reporting;
genuinely instance-partitioned designs can suppress with a comment.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.project import ClassInfo, Project, SourceFile

LockNode = tuple[str, str]
MethodKey = tuple[str, str]

#: Container accessors whose result takes the container's value type.
_CONTAINER_READS = frozenset({"get", "pop", "setdefault"})


def format_lock(node: LockNode) -> str:
    """Human form of a lock node: ``Owner.attr``."""
    owner, attr = node
    return f"{owner.rsplit('.', 1)[-1]}.{attr}"


def infer_local_types(method: ast.FunctionDef, info: ClassInfo,
                      project: Project) -> dict[str, set[str]]:
    """Best-effort local-variable -> candidate-class-name map."""
    types: dict[str, set[str]] = {}
    for stmt in ast.walk(method):
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        candidates = _value_types(stmt.value, info, project)
        if candidates:
            types.setdefault(target.id, set()).update(candidates)
    return types


def _value_types(value: ast.expr, info: ClassInfo,
                 project: Project) -> set[str]:
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name) and func.id in project.classes_by_name:
            return {func.id}
        # self._flights.get(key) -> value type of the annotated container.
        if (isinstance(func, ast.Attribute)
                and func.attr in _CONTAINER_READS
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"):
            return set(info.attr_types.get(func.value.attr, ()))
        return set()
    if (isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"):
        return set(info.attr_types.get(value.attr, ()))
    return set()


def resolve_lock_expr(expr: ast.expr, info: ClassInfo,
                      project: Project) -> LockNode | None:
    """``self._lock`` / module-level ``LOCK`` -> LockNode, else None."""
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in info.lock_attrs):
        return (info.qualname, expr.attr)
    if isinstance(expr, ast.Name):
        module_locks = project.module_locks.get(info.source.module, {})
        if expr.id in module_locks:
            return (info.source.module, expr.id)
    return None


def resolve_call(call: ast.Call, info: ClassInfo,
                 local_types: dict[str, set[str]],
                 project: Project) -> list[tuple[ClassInfo, str]]:
    """Resolve a call to candidate ``(class, method)`` targets."""
    func = call.func
    targets: list[tuple[ClassInfo, str]] = []
    if isinstance(func, ast.Name):
        cls = project.resolve_class(func.id)
        if cls is not None and "__init__" in cls.methods:
            targets.append((cls, "__init__"))
        return targets
    if not isinstance(func, ast.Attribute):
        return targets
    receiver, method = func.value, func.attr
    if isinstance(receiver, ast.Name):
        if receiver.id == "self":
            if method in info.methods:
                targets.append((info, method))
            return targets
        for type_name in sorted(local_types.get(receiver.id, ())):
            cls = project.resolve_class(type_name)
            if cls is not None and method in cls.methods:
                targets.append((cls, method))
        return targets
    if (isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"):
        for type_name in sorted(info.attr_types.get(receiver.attr, ())):
            cls = project.resolve_class(type_name)
            if cls is not None and method in cls.methods:
                targets.append((cls, method))
    return targets


@dataclass
class MethodScan:
    """Everything the lock-order analysis needs from one method body."""

    source: SourceFile
    #: Locks acquired anywhere in the method (with-statements and
    #: explicit ``.acquire()`` calls), with line numbers.
    acquires: list[tuple[LockNode, int]] = field(default_factory=list)
    #: Calls resolved to project methods, anywhere in the body.
    calls: list[tuple[MethodKey, int]] = field(default_factory=list)
    #: (held lock, acquired lock, line) — a direct nesting.
    held_acquires: list[tuple[LockNode, LockNode, int]] = field(default_factory=list)
    #: (held lock, callee, line) — a call made under a lock.
    held_calls: list[tuple[LockNode, MethodKey, int]] = field(default_factory=list)
    #: Raw calls made while at least one lock is held (for RA004):
    #: (call node, tuple of held locks).
    held_raw_calls: list[tuple[ast.Call, tuple[LockNode, ...]]] = field(default_factory=list)


class _LockScopeVisitor(ast.NodeVisitor):
    def __init__(self, info: ClassInfo, project: Project,
                 local_types: dict[str, set[str]], scan: MethodScan) -> None:
        self.info = info
        self.project = project
        self.local_types = local_types
        self.scan = scan
        self.held: list[LockNode] = []

    def _record_acquire(self, lock: LockNode, lineno: int) -> None:
        self.scan.acquires.append((lock, lineno))
        for held in self.held:
            self.scan.held_acquires.append((held, lock, lineno))

    def visit_With(self, node: ast.With) -> None:
        acquired: list[LockNode] = []
        for item in node.items:
            lock = resolve_lock_expr(item.context_expr, self.info, self.project)
            if lock is None:
                self.visit(item.context_expr)
            if lock is not None:
                self._record_acquire(lock, node.lineno)
                self.held.append(lock)
                acquired.append(lock)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # self._lock.acquire() outside a with-statement.
        if (isinstance(func, ast.Attribute) and func.attr == "acquire"):
            lock = resolve_lock_expr(func.value, self.info, self.project)
            if lock is not None:
                self._record_acquire(lock, node.lineno)
        for cls, method in resolve_call(node, self.info, self.local_types,
                                        self.project):
            key: MethodKey = (cls.qualname, method)
            self.scan.calls.append((key, node.lineno))
            for held in self.held:
                self.scan.held_calls.append((held, key, node.lineno))
        if self.held:
            self.scan.held_raw_calls.append((node, tuple(self.held)))
        self.generic_visit(node)

    # Nested functions (callbacks) run at an unknown time, typically
    # after the enclosing lock is released — do not scan them as if
    # they executed under the lock.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


def scan_method(info: ClassInfo, method: ast.FunctionDef,
                project: Project) -> MethodScan:
    """Scan one method for lock scopes, acquisitions and calls."""
    scan = MethodScan(source=info.source)
    visitor = _LockScopeVisitor(info, project,
                                infer_local_types(method, info, project), scan)
    for stmt in method.body:
        visitor.visit(stmt)
    return scan


def scan_project(project: Project) -> dict[MethodKey, MethodScan]:
    """Scan every method of every class in the project."""
    scans: dict[MethodKey, MethodScan] = {}
    for info in project.classes:
        for name, method in info.methods.items():
            scans[(info.qualname, name)] = scan_method(info, method, project)
    return scans
