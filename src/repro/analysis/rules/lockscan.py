"""Shared lock-scope scanning for the concurrency rules (RA004, RA006).

Walks a method body tracking which locks are *statically held* at each
point (``with self._lock:`` bodies, matched against the owning class's
inferred lock attributes) and resolves method calls through the
project's shallow type information, so the rules can reason about what
happens while a lock is held — a blocking call (RA004) or the
acquisition of another lock, directly or via a resolved callee (RA006).

A ``LockNode`` is ``(owner, attr)`` where owner is the class qualname
for instance locks or the module name for module-level locks.  The
analysis is intentionally *per-class*, not per-instance: two instances
of the same class share a node.  That is the useful granularity for
lock-ordering (the convention is per-class) and errs toward reporting;
genuinely instance-partitioned designs can suppress with a comment.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.project import ClassInfo, Project, SourceFile

LockNode = tuple[str, str]
MethodKey = tuple[str, str]


def format_lock(node: LockNode) -> str:
    """Human form of a lock node: ``Owner.attr``."""
    owner, attr = node
    return f"{owner.rsplit('.', 1)[-1]}.{attr}"


def infer_local_types(method: ast.FunctionDef, info: ClassInfo,
                      project: Project) -> dict[str, set[str]]:
    """Best-effort local-variable -> candidate-class-name map.

    Delegates to the shared call-graph inference (parameter
    annotations, constructor assignments, attribute/container reads,
    resolved return types), which is cached per function node.
    """
    return project.call_graph().infer_local_types(method, info, info.source)


def resolve_lock_expr(expr: ast.expr, info: ClassInfo,
                      project: Project) -> LockNode | None:
    """``self._lock`` / module-level ``LOCK`` -> LockNode, else None."""
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in info.lock_attrs):
        return (info.qualname, expr.attr)
    if isinstance(expr, ast.Name):
        module_locks = project.module_locks.get(info.source.module, {})
        if expr.id in module_locks:
            return (info.source.module, expr.id)
    return None


def resolve_call(call: ast.Call, info: ClassInfo,
                 local_types: dict[str, set[str]],
                 project: Project) -> list[tuple[ClassInfo, str]]:
    """Resolve a call to candidate ``(class, method)`` targets.

    Thin adapter over the shared call graph: resolves through imports,
    base classes, attribute types and return-type inference, then maps
    the resulting function keys back to the ``(class, method)`` shape
    the lock rules consume (module-level functions are dropped — they
    hold no instance locks).
    """
    graph = project.call_graph()
    targets: list[tuple[ClassInfo, str]] = []
    for key in graph.resolve_call(call, info.source, info, local_types):
        owner_qualname, method = key.rsplit(".", 1)
        cls = project.classes_by_qualname.get(owner_qualname)
        if cls is not None:
            targets.append((cls, method))
    return targets


@dataclass
class MethodScan:
    """Everything the lock-order analysis needs from one method body."""

    source: SourceFile
    #: Locks acquired anywhere in the method (with-statements and
    #: explicit ``.acquire()`` calls), with line numbers.
    acquires: list[tuple[LockNode, int]] = field(default_factory=list)
    #: Calls resolved to project methods, anywhere in the body.
    calls: list[tuple[MethodKey, int]] = field(default_factory=list)
    #: (held lock, acquired lock, line) — a direct nesting.
    held_acquires: list[tuple[LockNode, LockNode, int]] = field(default_factory=list)
    #: (held lock, callee, line) — a call made under a lock.
    held_calls: list[tuple[LockNode, MethodKey, int]] = field(default_factory=list)
    #: Raw calls made while at least one lock is held (for RA004):
    #: (call node, tuple of held locks).
    held_raw_calls: list[tuple[ast.Call, tuple[LockNode, ...]]] = field(default_factory=list)


class _LockScopeVisitor(ast.NodeVisitor):
    def __init__(self, info: ClassInfo, project: Project,
                 local_types: dict[str, set[str]], scan: MethodScan) -> None:
        self.info = info
        self.project = project
        self.local_types = local_types
        self.scan = scan
        self.held: list[LockNode] = []

    def _record_acquire(self, lock: LockNode, lineno: int) -> None:
        self.scan.acquires.append((lock, lineno))
        for held in self.held:
            self.scan.held_acquires.append((held, lock, lineno))

    def visit_With(self, node: ast.With) -> None:
        acquired: list[LockNode] = []
        for item in node.items:
            lock = resolve_lock_expr(item.context_expr, self.info, self.project)
            if lock is None:
                self.visit(item.context_expr)
            if lock is not None:
                self._record_acquire(lock, node.lineno)
                self.held.append(lock)
                acquired.append(lock)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # self._lock.acquire() outside a with-statement.
        if (isinstance(func, ast.Attribute) and func.attr == "acquire"):
            lock = resolve_lock_expr(func.value, self.info, self.project)
            if lock is not None:
                self._record_acquire(lock, node.lineno)
        for cls, method in resolve_call(node, self.info, self.local_types,
                                        self.project):
            key: MethodKey = (cls.qualname, method)
            self.scan.calls.append((key, node.lineno))
            for held in self.held:
                self.scan.held_calls.append((held, key, node.lineno))
        if self.held:
            self.scan.held_raw_calls.append((node, tuple(self.held)))
        self.generic_visit(node)

    # Nested functions (callbacks) run at an unknown time, typically
    # after the enclosing lock is released — do not scan them as if
    # they executed under the lock.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


def scan_method(info: ClassInfo, method: ast.FunctionDef,
                project: Project) -> MethodScan:
    """Scan one method for lock scopes, acquisitions and calls."""
    scan = MethodScan(source=info.source)
    visitor = _LockScopeVisitor(info, project,
                                infer_local_types(method, info, project), scan)
    for stmt in method.body:
        visitor.visit(stmt)
    return scan


def scan_project(project: Project) -> dict[MethodKey, MethodScan]:
    """Scan every method of every class in the project."""
    scans: dict[MethodKey, MethodScan] = {}
    for info in project.classes:
        for name, method in info.methods.items():
            scans[(info.qualname, name)] = scan_method(info, method, project)
    return scans
