"""RA009 — a synchronous lock held across an ``await``.

The async extension of the RA004/RA006 family.  A ``threading.Lock``
held while a coroutine suspends is poison twice over: every *other*
task scheduled onto the loop that touches the lock blocks the whole
loop thread (instant self-deadlock if it is the same task's lock), and
the critical section now spans an arbitrary amount of wall time —
whatever the awaited IO takes.  ``asyncio.Lock`` exists precisely so
waiting cooperates with the loop; holding *it* across an ``await`` is
normal and not flagged.

Three shapes are reported:

* an ``await`` inside a ``with <sync lock>:`` body;
* ``async with`` on a sync lock (``threading.Lock`` has no async
  protocol worth trusting — and blocking in ``__enter__`` stalls the
  loop exactly like RA007 describes);
* the interprocedural case: the lock was taken by a *helper* — a
  resolved callee whose body calls ``.acquire()`` without a matching
  ``.release()`` — and an ``await`` runs before the releasing call.
  Effect summaries are propagated over the project call graph with
  :func:`~repro.analysis.dataflow.collect_transitive`, so the
  acquisition may sit any number of frames away.

Branch-insensitive by design: an acquire in an ``if`` arm is assumed
held afterwards (erring toward reporting); balanced ``with`` blocks
contribute no summary effects.
"""

from __future__ import annotations

import ast

from repro.analysis.dataflow import collect_transitive
from repro.analysis.engine import Finding, Rule
from repro.analysis.project import ClassInfo, Project, SourceFile
from repro.analysis.rules.lockscan import LockNode, format_lock


def _resolve_lock(expr: ast.expr, owner: ClassInfo | None,
                  source: SourceFile, project: Project) -> LockNode | None:
    """``self._lock`` / module-level ``LOCK`` -> LockNode, else None."""
    if (owner is not None
            and isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in owner.lock_attrs):
        return (owner.qualname, expr.attr)
    if isinstance(expr, ast.Name):
        module_locks = project.module_locks.get(source.module, {})
        if expr.id in module_locks:
            return (source.module, expr.id)
    return None


def _is_async_lock(node: LockNode, project: Project) -> bool:
    """Whether a lock node was built by an asyncio-like factory."""
    owner, attr = node
    cls = project.classes_by_qualname.get(owner)
    if cls is not None:
        return attr in cls.async_lock_attrs
    return attr in project.async_module_locks.get(owner, set())


class _EffectScan(ast.NodeVisitor):
    """Direct ``.acquire()`` / ``.release()`` effects of one function."""

    def __init__(self, owner: ClassInfo | None, source: SourceFile,
                 project: Project) -> None:
        self.owner = owner
        self.source = source
        self.project = project
        self.acquired: set[LockNode] = set()
        self.released: set[LockNode] = set()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in ("acquire",
                                                             "release"):
            lock = _resolve_lock(func.value, self.owner, self.source,
                                 self.project)
            if lock is not None and not _is_async_lock(lock, self.project):
                target = (self.acquired if func.attr == "acquire"
                          else self.released)
                target.add(lock)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


class _AsyncBodyVisitor(ast.NodeVisitor):
    """Track held sync locks through one coroutine body, in order."""

    def __init__(self, rule: "LockAcrossAwaitRule", info, graph,
                 net_acquires: dict[str, set[LockNode]],
                 net_releases: dict[str, set[LockNode]]) -> None:
        self.rule = rule
        self.info = info
        self.graph = graph
        self.project = graph.project
        self.net_acquires = net_acquires
        self.net_releases = net_releases
        self.local_types = graph.infer_local_types(info.node, info.owner,
                                                   info.source)
        #: lock -> how it came to be held ("" for a direct with/acquire).
        self.held: dict[LockNode, str] = {}
        self.findings: list[Finding] = []

    # -- scope boundaries --------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    # -- lock scoping ------------------------------------------------------

    def _resolve(self, expr: ast.expr) -> LockNode | None:
        return _resolve_lock(expr, self.info.owner, self.info.source,
                             self.project)

    def visit_With(self, node: ast.With) -> None:
        acquired: list[LockNode] = []
        for item in node.items:
            lock = self._resolve(item.context_expr)
            if lock is None or _is_async_lock(lock, self.project):
                self.visit(item.context_expr)
            else:
                self.held.setdefault(lock, "")
                acquired.append(lock)
        for stmt in node.body:
            self.visit(stmt)
        for lock in acquired:
            self.held.pop(lock, None)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        for item in node.items:
            lock = self._resolve(item.context_expr)
            if lock is not None and not _is_async_lock(lock, self.project):
                self.findings.append(Finding(
                    self.info.source.relpath, item.context_expr.lineno,
                    item.context_expr.col_offset, self.rule.rule_id,
                    f"`async with` on sync lock {format_lock(lock)} — a "
                    "threading lock blocks the loop thread in __enter__ "
                    "and is held across every await in the body; use "
                    "asyncio.Lock"))
        for stmt in node.body:
            self.visit(stmt)

    # -- acquire / release flow -------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in ("acquire",
                                                             "release"):
            lock = self._resolve(func.value)
            if lock is not None and not _is_async_lock(lock, self.project):
                if func.attr == "acquire":
                    self.held.setdefault(lock, "")
                else:
                    self.held.pop(lock, None)
        for callee in self.graph.resolve_call(node, self.info.source,
                                              self.info.owner,
                                              self.local_types):
            for lock in sorted(self.net_releases.get(callee, ())):
                self.held.pop(lock, None)
            for lock in sorted(self.net_acquires.get(callee, ())):
                short = callee.rsplit(".", 1)[-1]
                self.held.setdefault(
                    lock, f" (acquired via {short}() at line {node.lineno})")
        self.generic_visit(node)

    def visit_Await(self, node: ast.Await) -> None:
        for lock, how in sorted(self.held.items()):
            self.findings.append(Finding(
                self.info.source.relpath, node.lineno, node.col_offset,
                self.rule.rule_id,
                f"sync lock {format_lock(lock)} held across await{how} — "
                "every task contending for it blocks the loop thread; "
                "release before awaiting or use asyncio.Lock"))
        self.generic_visit(node)


class LockAcrossAwaitRule(Rule):
    """Flag threading locks held while a coroutine suspends."""

    rule_id = "RA009"
    description = ("sync (threading) lock held across an await, or "
                   "`async with` on a sync lock — the loop thread blocks "
                   "for the whole critical section")
    scope = "project"

    def check(self, project: Project) -> list[Finding]:
        """Summarize lock effects project-wide, then walk coroutines."""
        graph = project.call_graph()
        direct_acquires: dict[str, set[LockNode]] = {}
        direct_releases: dict[str, set[LockNode]] = {}
        for key in sorted(graph.functions):
            info = graph.functions[key]
            scan = _EffectScan(info.owner, info.source, project)
            for stmt in info.node.body:
                scan.visit(stmt)
            # Balanced acquire+release pairs are no net effect.
            direct_acquires[key] = scan.acquired - scan.released
            direct_releases[key] = scan.released - scan.acquired
        successors = graph.successors()
        net_acquires = collect_transitive(direct_acquires, successors)
        net_releases = collect_transitive(direct_releases, successors)

        findings: list[Finding] = []
        for key in sorted(graph.functions):
            info = graph.functions[key]
            if not info.is_async:
                continue
            visitor = _AsyncBodyVisitor(self, info, graph,
                                        net_acquires, net_releases)
            for stmt in info.node.body:
                visitor.visit(stmt)
            findings.extend(visitor.findings)
        return findings
