"""RA005 — metric / span name registry consistency.

Operators alert on metric names; docs and dashboards reference them by
string.  A renamed counter that only exists as a literal at its call
site silently breaks both.  This rule enforces one source of truth,
:mod:`repro.obs.names`:

* every ``counter(...)`` / ``gauge(...)`` / ``histogram(...)`` /
  ``span(...)`` / ``instant_span(...)`` / ``start_span(...)`` call site
  must pass a registry constant, never a string literal (the registry
  module itself is exempt — it is where the literals live);
* every constant defined in the registry must appear in the
  observability documentation page, so docs cannot drift from code;
* registry values must be unique.

The registry and docs paths default to this repository's layout and are
skipped quietly when absent, so the rule also works on fixture trees in
the analyzer's own tests.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.engine import Finding, Rule
from repro.analysis.project import Project, SourceFile

#: Method names whose first argument is a metric or span name.
NAME_SINKS = frozenset({
    "counter", "gauge", "histogram", "span", "instant_span", "start_span",
})

DEFAULT_REGISTRY_SUFFIX = "obs/names.py"
DEFAULT_DOCS_PATH = "docs/observability.md"


def registry_constants(tree: ast.Module) -> dict[str, tuple[str, int]]:
    """UPPERCASE string constants in a registry module: name -> (value, line)."""
    constants: dict[str, tuple[str, int]] = {}
    for node in tree.body:
        if (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id.isupper()
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)):
            constants[node.targets[0].id] = (node.value.value, node.lineno)
    return constants


class NameRegistryRule(Rule):
    """Enforce the metric/span name registry and its doc coverage."""

    rule_id = "RA005"
    scope = "project"
    description = ("metric/span names must come from the repro.obs.names "
                   "registry and be documented in docs/observability.md")

    def __init__(self, registry_suffix: str = DEFAULT_REGISTRY_SUFFIX,
                 docs_path: str | Path | None = None,
                 root: Path | None = None) -> None:
        self.registry_suffix = registry_suffix
        self.docs_path = docs_path
        self.root = root

    def check(self, project: Project) -> list[Finding]:
        """Flag literal name sinks and registry/doc drift."""
        findings: list[Finding] = []
        registry: SourceFile | None = None
        for source in project.files:
            if source.relpath.endswith(self.registry_suffix):
                registry = source
                continue
            findings.extend(self._check_literals(source))
        if registry is not None:
            findings.extend(self._check_registry(registry))
        return findings

    def _check_literals(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in NAME_SINKS):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                findings.append(Finding(
                    source.relpath, first.lineno, first.col_offset,
                    self.rule_id,
                    f"literal {func.attr} name {first.value!r}; define a "
                    "constant in repro/obs/names.py and use it here"))
        return findings

    def _check_registry(self, registry: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        constants = registry_constants(registry.tree)
        seen_values: dict[str, str] = {}
        for name, (value, line) in sorted(constants.items()):
            if value in seen_values:
                findings.append(Finding(
                    registry.relpath, line, 0, self.rule_id,
                    f"registry value {value!r} defined twice "
                    f"({seen_values[value]} and {name})"))
            else:
                seen_values[value] = name
        docs_text = self._docs_text(registry)
        if docs_text is not None:
            for name, (value, line) in sorted(constants.items()):
                if value not in docs_text:
                    findings.append(Finding(
                        registry.relpath, line, 0, self.rule_id,
                        f"{name} = {value!r} is not documented in "
                        f"{self._docs_label()}"))
        return findings

    def _docs_label(self) -> str:
        return str(self.docs_path or DEFAULT_DOCS_PATH)

    def _docs_text(self, registry: SourceFile) -> str | None:
        if self.docs_path is not None:
            path = Path(self.docs_path)
        else:
            root = self.root
            if root is None:
                # Walk up from the registry file towards a docs/ dir.
                root = registry.path.resolve().parent
                for _ in range(6):
                    if (root / DEFAULT_DOCS_PATH).exists():
                        break
                    root = root.parent
            path = root / DEFAULT_DOCS_PATH
        try:
            return path.read_text(encoding="utf-8")
        except OSError:
            return None
