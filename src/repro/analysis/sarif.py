"""SARIF 2.1.0 renderer for analysis reports.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard CI systems ingest natively — GitHub code scanning renders a
``*.sarif`` artifact as inline review annotations.  One run object
carries the full rule catalog (``tool.driver.rules``) plus one result
per finding:

* live findings  -> plain ``error`` results;
* in-source suppressions (``# repro: ignore[...]``) -> results with a
  ``suppressions`` entry of kind ``inSource``;
* baselined findings (accepted debt) -> kind ``external``.

Output is deterministic: no timestamps, results in the engine's sorted
order, ``sort_keys`` JSON — so a warm-cache rerun produces the same
bytes as a cold run, which the CI cache gate asserts.
"""

from __future__ import annotations

import json

from repro.analysis.engine import Finding, Report, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _result(finding: Finding, rule_index: dict[str, int],
            suppression_kind: str | None) -> dict:
    result = {
        "ruleId": finding.rule_id,
        "ruleIndex": rule_index.get(finding.rule_id, -1),
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.relpath,
                                     "uriBaseId": "SRCROOT"},
                "region": {"startLine": finding.line,
                           "startColumn": finding.col + 1},
            },
        }],
    }
    if suppression_kind is not None:
        result["suppressions"] = [{"kind": suppression_kind}]
    return result


def render_sarif(report: Report, rules: list[Rule]) -> str:
    """The report as a SARIF 2.1.0 JSON document."""
    catalog = [{
        "id": rule.rule_id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {"level": "error"},
    } for rule in rules]
    rule_index = {entry["id"]: position
                  for position, entry in enumerate(catalog)}

    results = [_result(finding, rule_index, None)
               for finding in report.findings]
    results += [_result(finding, rule_index, "inSource")
                for finding in report.suppressed]
    results += [_result(finding, rule_index, "external")
                for finding in report.baselined]

    invocation = {
        "executionSuccessful": not report.errors,
        "toolExecutionNotifications": [
            {"level": "error", "message": {"text": error}}
            for error in report.errors
        ],
    }
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "repro.analysis",
                "informationUri":
                    "https://example.invalid/repro/docs/static-analysis",
                "rules": catalog,
            }},
            "invocations": [invocation],
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)
