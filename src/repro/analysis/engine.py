"""Analysis engine: runs rules over a project and reports findings.

The engine owns everything rule-independent: file collection, the
suppression protocol (``# repro: ignore[RA001]`` on the offending line,
``# repro: ignore-file[RA001]`` anywhere in a file, bare ``ignore`` for
a blanket waiver), deterministic ordering, and text/JSON rendering.
Rules only yield :class:`Finding` objects; they never decide whether a
finding is silenced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.project import Project, SourceFile, collect_files


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    relpath: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """``path:line:col: RAxxx message`` — the text report line."""
        return f"{self.relpath}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict:
        """JSON-safe form used by ``--format json``."""
        return {"path": self.relpath, "line": self.line, "col": self.col,
                "rule": self.rule_id, "message": self.message}


class Rule:
    """Base class for analysis rules.

    Subclasses set ``rule_id`` / ``description`` and override either
    :meth:`check` (project-wide rules such as the lock-order graph) or
    :meth:`check_file` (per-file rules).
    """

    rule_id = "RA000"
    description = "abstract rule"

    def check(self, project: Project) -> list[Finding]:
        """Run the rule over the whole project."""
        findings: list[Finding] = []
        for source in project.files:
            findings.extend(self.check_file(source, project))
        return findings

    def check_file(self, source: SourceFile, project: Project) -> list[Finding]:
        """Run the rule over one file (default: nothing)."""
        return []


@dataclass
class Report:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: list[str] = field(default_factory=list)
    unknown_suppressions: list[str] = field(default_factory=list)

    def ok(self, strict: bool = False) -> bool:
        """Whether the run should exit zero."""
        if self.findings or self.errors:
            return False
        if strict and self.unknown_suppressions:
            return False
        return True

    def render_text(self, verbose: bool = False) -> str:
        """Human-readable report."""
        lines = [finding.render() for finding in self.findings]
        lines.extend(f"error: {error}" for error in self.errors)
        lines.extend(
            f"warning: suppression names unknown rule: {entry}"
            for entry in self.unknown_suppressions)
        if verbose:
            lines.extend(f"suppressed: {finding.render()}"
                         for finding in self.suppressed)
        lines.append(
            f"repro.analysis: {self.files_scanned} files, "
            f"{len(self.rules_run)} rules, {len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable report."""
        return json.dumps({
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
            "errors": list(self.errors),
            "files_scanned": self.files_scanned,
            "rules": list(self.rules_run),
            "unknown_suppressions": list(self.unknown_suppressions),
        }, indent=2, sort_keys=True)


class Analyzer:
    """Parses the target paths once and runs every selected rule."""

    def __init__(self, rules: list[Rule]) -> None:
        if not rules:
            raise ValueError("analyzer needs at least one rule")
        self.rules = rules

    def run_project(self, project: Project, errors: list[str] | None = None) -> Report:
        """Run the configured rules over an already-built project."""
        report = Report(errors=list(errors or []),
                        files_scanned=len(project.files),
                        rules_run=[rule.rule_id for rule in self.rules])
        by_relpath = {source.relpath: source for source in project.files}
        known_rules = {rule.rule_id for rule in self.rules}
        for rule in self.rules:
            for finding in rule.check(project):
                source = by_relpath.get(finding.relpath)
                if source is not None and source.is_suppressed(
                        finding.rule_id, finding.line):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)
        for source in project.files:
            for rule_id in sorted(source.suppression_rule_ids()):
                if rule_id not in known_rules:
                    report.unknown_suppressions.append(
                        f"{source.relpath}: {rule_id}")
        report.findings.sort()
        report.suppressed.sort()
        return report

    def run(self, paths: list[Path], root: Path | None = None) -> Report:
        """Collect, parse and analyze every ``.py`` file under ``paths``."""
        root = root if root is not None else Path.cwd()
        files, errors = collect_files(paths, root)
        return self.run_project(Project(files), errors)
