"""Analysis engine: runs rules over a project and reports findings.

The engine owns everything rule-independent: file collection, the
suppression protocol (``# repro: ignore[RA001]`` on the offending line,
``# repro: ignore-file[RA001]`` anywhere in a file, bare ``ignore`` for
a blanket waiver), deterministic ordering, and text/JSON rendering.
Rules only yield :class:`Finding` objects; they never decide whether a
finding is silenced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.project import Project, SourceFile, collect_files


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    relpath: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """``path:line:col: RAxxx message`` — the text report line."""
        return f"{self.relpath}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict:
        """JSON-safe form used by ``--format json``."""
        return {"path": self.relpath, "line": self.line, "col": self.col,
                "rule": self.rule_id, "message": self.message}

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (cache rehydration)."""
        return cls(payload["path"], payload["line"], payload["col"],
                   payload["rule"], payload["message"])


class Rule:
    """Base class for analysis rules.

    Subclasses set ``rule_id`` / ``description`` and override either
    :meth:`check` (project-wide rules such as the lock-order graph) or
    :meth:`check_file` (per-file rules).
    """

    rule_id = "RA000"
    description = "abstract rule"
    #: "file" — findings for a file depend only on that file (plus the
    #: shallow cross-file type index); "project" — findings depend on
    #: global structure (call graph, name registry).  The incremental
    #: cache reuses per-file results of file-scope rules and re-runs
    #: project-scope rules whenever anything changed.
    scope = "file"

    def check(self, project: Project) -> list[Finding]:
        """Run the rule over the whole project."""
        findings: list[Finding] = []
        for source in project.files:
            findings.extend(self.check_file(source, project))
        return findings

    def check_file(self, source: SourceFile, project: Project) -> list[Finding]:
        """Run the rule over one file (default: nothing)."""
        return []


@dataclass
class Report:
    """Outcome of one analysis run.

    ``baselined`` holds findings matched by an accepted-debt baseline
    file (:mod:`repro.analysis.baseline`): still rendered, never fatal.
    ``stats`` carries cache bookkeeping (files analyzed vs. reused) and
    is deliberately **excluded** from every report format so warm and
    cold runs stay byte-identical — the CLI prints it to stderr.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: list[str] = field(default_factory=list)
    unknown_suppressions: list[str] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def ok(self, strict: bool = False) -> bool:
        """Whether the run should exit zero."""
        if self.findings or self.errors:
            return False
        if strict and self.unknown_suppressions:
            return False
        return True

    def render_text(self, verbose: bool = False) -> str:
        """Human-readable report."""
        lines = [finding.render() for finding in self.findings]
        lines.extend(f"error: {error}" for error in self.errors)
        lines.extend(
            f"warning: suppression names unknown rule: {entry}"
            for entry in self.unknown_suppressions)
        if verbose:
            lines.extend(f"suppressed: {finding.render()}"
                         for finding in self.suppressed)
            lines.extend(f"baselined: {finding.render()}"
                         for finding in self.baselined)
        summary = (
            f"repro.analysis: {self.files_scanned} files, "
            f"{len(self.rules_run)} rules, {len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed")
        if self.baselined:
            summary += f", {len(self.baselined)} baselined"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable report."""
        return json.dumps({
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "errors": list(self.errors),
            "files_scanned": self.files_scanned,
            "rules": list(self.rules_run),
            "unknown_suppressions": list(self.unknown_suppressions),
        }, indent=2, sort_keys=True)

    def to_payload(self) -> dict:
        """Full-fidelity form for the incremental cache."""
        return {
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
            "errors": list(self.errors),
            "files_scanned": self.files_scanned,
            "rules_run": list(self.rules_run),
            "unknown_suppressions": list(self.unknown_suppressions),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Report":
        """Rehydrate a cached report byte-identical to the original.

        ``baselined`` is intentionally absent: the cache stores the
        *pre-baseline* report and the CLI re-applies the baseline, so a
        cached run and a fresh run see the same baseline file state.
        """
        return cls(
            findings=[Finding.from_dict(f) for f in payload["findings"]],
            suppressed=[Finding.from_dict(f) for f in payload["suppressed"]],
            errors=list(payload["errors"]),
            files_scanned=payload["files_scanned"],
            rules_run=list(payload["rules_run"]),
            unknown_suppressions=list(payload["unknown_suppressions"]),
        )


@dataclass
class FileSlice:
    """Per-file results of the *file-scope* rules (cache unit)."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    unknown_suppressions: list[str] = field(default_factory=list)

    def to_payload(self) -> dict:
        return {
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
            "unknown_suppressions": list(self.unknown_suppressions),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FileSlice":
        return cls(
            findings=[Finding.from_dict(f) for f in payload["findings"]],
            suppressed=[Finding.from_dict(f) for f in payload["suppressed"]],
            unknown_suppressions=list(payload["unknown_suppressions"]),
        )


@dataclass
class PartitionedRun:
    """A report plus the per-file slices the cache persists."""

    report: Report
    file_slices: dict[str, FileSlice]


class Analyzer:
    """Parses the target paths once and runs every selected rule."""

    def __init__(self, rules: list[Rule]) -> None:
        if not rules:
            raise ValueError("analyzer needs at least one rule")
        self.rules = rules

    def run_project(self, project: Project, errors: list[str] | None = None) -> Report:
        """Run the configured rules over an already-built project."""
        return self.run_partitioned(project, errors).report

    def run_partitioned(self, project: Project,
                        errors: list[str] | None = None,
                        reuse: dict[str, FileSlice] | None = None,
                        ) -> PartitionedRun:
        """Run rules split by scope, optionally reusing cached slices.

        File-scope rules run per file and their results are captured as
        :class:`FileSlice` objects — a file whose relpath appears in
        ``reuse`` keeps its cached slice and is not re-checked.
        Project-scope rules always run over the full project (their
        findings depend on global structure, so the cache cannot
        soundly skip them).
        """
        reuse = reuse or {}
        report = Report(errors=list(errors or []),
                        files_scanned=len(project.files),
                        rules_run=[rule.rule_id for rule in self.rules])
        by_relpath = {source.relpath: source for source in project.files}
        known_rules = {rule.rule_id for rule in self.rules}
        file_rules = [rule for rule in self.rules if rule.scope == "file"]
        project_rules = [rule for rule in self.rules
                         if rule.scope == "project"]

        slices: dict[str, FileSlice] = {}
        for source in project.files:
            cached = reuse.get(source.relpath)
            if cached is not None:
                slices[source.relpath] = cached
                continue
            fresh = FileSlice()
            for rule in file_rules:
                for finding in rule.check_file(source, project):
                    if source.is_suppressed(finding.rule_id, finding.line):
                        fresh.suppressed.append(finding)
                    else:
                        fresh.findings.append(finding)
            for rule_id in sorted(source.suppression_rule_ids()):
                if rule_id not in known_rules:
                    fresh.unknown_suppressions.append(
                        f"{source.relpath}: {rule_id}")
            slices[source.relpath] = fresh

        for rule in project_rules:
            for finding in rule.check(project):
                source = by_relpath.get(finding.relpath)
                if source is not None and source.is_suppressed(
                        finding.rule_id, finding.line):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)

        for source in project.files:
            piece = slices[source.relpath]
            report.findings.extend(piece.findings)
            report.suppressed.extend(piece.suppressed)
            report.unknown_suppressions.extend(piece.unknown_suppressions)
        report.findings.sort()
        report.suppressed.sort()
        return PartitionedRun(report, slices)

    def run(self, paths: list[Path], root: Path | None = None,
            cache=None) -> Report:
        """Collect, parse and analyze every ``.py`` file under ``paths``.

        With a :class:`repro.analysis.cache.AnalysisCache`, unchanged
        trees rehydrate the previous report without re-parsing a single
        file, and partial edits only re-check the changed files plus
        their transitive dependents (see ``report.stats``).
        """
        root = root if root is not None else Path.cwd()
        if cache is not None:
            return cache.run(self, paths, root)
        files, errors = collect_files(paths, root)
        run = self.run_partitioned(Project(files), errors)
        run.report.stats = {"files_analyzed": len(files), "cache_hits": 0}
        return run.report
