"""Offline operation and resynchronization.

Section 3: "The personalized knowledge base tries to accommodate
scenarios where the computer(s) on which it runs may be disconnected
from the network.  Caching and local storage can be used when remote
data sources and services are not accessible. ... it may be appropriate
to synchronize the contents of local storage and the cloud data store
after connectivity ... is re-established."

:class:`OfflineSyncStore` writes locally always (so reads never need
the network), pushes writes through to the remote store when online,
queues them while offline, and replays the queue on :meth:`sync`.
Writes are last-writer-wins by local sequence number, which is the
right semantics for a *personal*, single-writer knowledge base.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kb.secure import SecureRemoteStore
from repro.simnet.errors import NetworkError
from repro.stores.kvstore import InMemoryKeyValueStore, KeyValueStore
from repro.util.errors import NotFoundError


@dataclass
class SyncStats:
    """What happened at the local/remote boundary."""

    local_reads: int = 0
    remote_reads: int = 0
    immediate_pushes: int = 0
    queued_writes: int = 0
    replayed_writes: int = 0
    failed_syncs: int = 0
    pending: int = 0


@dataclass
class _PendingOp:
    sequence: int
    operation: str  # "put" | "delete"
    key: str
    value: object = None


@dataclass
class OfflineSyncStore:
    """Local-first store with write-behind to a secure remote store."""

    remote: SecureRemoteStore
    local: KeyValueStore = field(default_factory=InMemoryKeyValueStore)

    def __post_init__(self) -> None:
        self.stats = SyncStats()
        self._pending: list[_PendingOp] = []
        self._sequence = 0

    # -- client API ----------------------------------------------------------

    def put(self, key: str, value: object) -> None:
        """Write locally, then push (or queue) the remote write."""
        self.local.put(key, value)
        self._push_or_queue("put", key, value)

    def delete(self, key: str) -> None:
        self.local.delete(key)
        self._push_or_queue("delete", key)

    def get(self, key: str) -> object:
        """Read local-first; fall back to the remote store when missing.

        A remote hit is written back into local storage so subsequent
        reads (including disconnected ones) are served locally.
        """
        sentinel = object()
        value = self.local.get(key, default=sentinel)
        if value is not sentinel:
            self.stats.local_reads += 1
            return value
        self.stats.remote_reads += 1
        try:
            value = self.remote.get(key)
        except NetworkError as error:
            raise NotFoundError(
                f"key {key!r} is not cached locally and the network is unavailable"
            ) from error
        self.local.put(key, value)
        return value

    def keys(self, prefix: str = "") -> list[str]:
        return self.local.keys(prefix)

    # -- synchronization ----------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def _push_or_queue(self, operation: str, key: str, value: object = None) -> None:
        self._sequence += 1
        op = _PendingOp(self._sequence, operation, key, value)
        try:
            self._apply_remote(op)
            self.stats.immediate_pushes += 1
        except NetworkError:
            self._pending.append(op)
            self.stats.queued_writes += 1
        self.stats.pending = len(self._pending)

    def _apply_remote(self, op: _PendingOp) -> None:
        if op.operation == "put":
            self.remote.put(op.key, op.value)
        else:
            self.remote.delete(op.key)

    def sync(self) -> int:
        """Replay queued writes against the remote store.

        Coalesces to the latest operation per key (last-writer-wins),
        replays in sequence order, and returns how many remote writes
        were applied.  Stops (keeping the rest queued) if connectivity
        drops mid-sync.
        """
        if not self._pending:
            return 0
        latest: dict[str, _PendingOp] = {}
        for op in self._pending:
            latest[op.key] = op
        ordered = sorted(latest.values(), key=lambda op: op.sequence)
        applied = 0
        remaining: list[_PendingOp] = []
        for index, op in enumerate(ordered):
            try:
                self._apply_remote(op)
                applied += 1
            except NetworkError:
                remaining = ordered[index:]
                self.stats.failed_syncs += 1
                break
        self._pending = remaining
        self.stats.replayed_writes += applied
        self.stats.pending = len(self._pending)
        return applied

    def pull(self) -> int:
        """Refresh local storage from every remote key (full pull).

        Local keys with queued writes are *not* overwritten — the local
        copy is newer by definition.
        """
        dirty = {op.key for op in self._pending}
        pulled = 0
        for key in self.remote.keys():
            if key in dirty:
                continue
            self.local.put(key, self.remote.get(key))
            pulled += 1
        return pulled
