"""Named entity disambiguation for the PKB.

The paper's §3 problem: "the same entity can be referred to in
different ways ... United States of America is also referred to as USA,
US, United States, America, and even the States.  If we use a simple
string matching algorithm to identify entities, then we might
mistakenly conclude that 'United States of America' refers to a
different country than 'USA'."

Three strategies, tried in order by :class:`EntityDisambiguator`:

* :class:`ExactMatchStrategy` — the naive baseline (canonical names
  only); exists so benchmark A4 can show how badly plain string
  matching proliferates entities;
* :class:`ServiceBackedStrategy` — calls an NLU service's
  ``disambiguate`` operation through the Rich SDK (cached, so repeated
  mentions are free), reproducing the Watson-backed flow;
* :class:`SynonymFileStrategy` — user-provided synonym tables "for
  domains for which there are no existing services or tools" (the
  paper's disease-names example).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.invoker import RichClient
from repro.simnet.errors import NetworkError


@dataclass(frozen=True)
class ResolvedEntity:
    """A unique entity ID plus its cross-knowledge-base link bundle."""

    entity_id: str
    name: str
    entity_type: str
    links: Mapping[str, str]
    strategy: str


class DisambiguationStrategy(ABC):
    """One way of resolving a surface string to a unique entity."""

    name: str = "strategy"

    @abstractmethod
    def resolve(self, surface: str) -> ResolvedEntity | None:
        """The entity this surface form denotes, or None if unknown."""


class ExactMatchStrategy(DisambiguationStrategy):
    """Naive string matching against canonical names only.

    Misses every alias — "USA" and "United States of America" resolve
    to *different* identities (the raw strings themselves), which is
    precisely the redundant-entry proliferation the paper warns about.
    """

    name = "exact"

    def __init__(self, canonical_names: Mapping[str, str]) -> None:
        # name (lowercased) -> entity id
        self._names = {name.lower(): entity_id
                       for name, entity_id in canonical_names.items()}

    def resolve(self, surface: str) -> ResolvedEntity | None:
        entity_id = self._names.get(surface.strip().lower())
        if entity_id is None:
            return None
        return ResolvedEntity(entity_id, surface.strip(), "Unknown", {}, self.name)


class ServiceBackedStrategy(DisambiguationStrategy):
    """Disambiguation via a remote NLU service through the Rich SDK.

    Responses are cached by the client, so a string seen before costs
    nothing; network failures degrade to "unresolved" rather than
    erroring the ingest pipeline.
    """

    name = "service"

    def __init__(self, client: RichClient, nlu_service: str) -> None:
        self.client = client
        self.nlu_service = nlu_service

    def resolve(self, surface: str) -> ResolvedEntity | None:
        try:
            result = self.client.invoke(
                self.nlu_service, "disambiguate", {"phrase": surface}
            )
        except NetworkError:
            return None
        resolved = result.value.get("resolved")
        if resolved is None:
            return None
        return ResolvedEntity(
            entity_id=resolved["id"],
            name=resolved["name"],
            entity_type=resolved["type"],
            links=resolved["links"],
            strategy=self.name,
        )


class SynonymFileStrategy(DisambiguationStrategy):
    """User-provided synonym tables (surface form -> canonical id).

    "Users can provide their own files which identify synonyms which
    map to the same entity" — the file format is one mapping per line:
    ``surface form = entity_id`` (blank lines and ``#`` comments
    allowed).
    """

    name = "synonyms"

    def __init__(self, synonyms: Mapping[str, str],
                 entity_names: Mapping[str, str] | None = None) -> None:
        self._synonyms = {surface.strip().lower(): entity_id
                          for surface, entity_id in synonyms.items()}
        self._entity_names = dict(entity_names or {})

    @classmethod
    def from_file_text(cls, text: str) -> "SynonymFileStrategy":
        """Parse the user synonym-file format."""
        synonyms: dict[str, str] = {}
        for line_number, line in enumerate(text.splitlines(), start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            if "=" not in stripped:
                raise ValueError(
                    f"line {line_number}: expected 'surface = entity_id', got {line!r}"
                )
            surface, _, entity_id = stripped.partition("=")
            synonyms[surface.strip()] = entity_id.strip()
        return cls(synonyms)

    def resolve(self, surface: str) -> ResolvedEntity | None:
        entity_id = self._synonyms.get(surface.strip().lower())
        if entity_id is None:
            return None
        return ResolvedEntity(
            entity_id=entity_id,
            name=self._entity_names.get(entity_id, surface.strip()),
            entity_type="Unknown",
            links={},
            strategy=self.name,
        )


class EntityDisambiguator:
    """Chain of strategies; the first hit wins.

    The usual PKB configuration is ``[SynonymFileStrategy,
    ServiceBackedStrategy]`` — user overrides first, then the service.
    """

    def __init__(self, strategies: list[DisambiguationStrategy]) -> None:
        if not strategies:
            raise ValueError("need at least one disambiguation strategy")
        self.strategies = list(strategies)
        self.resolved_count = 0
        self.unresolved_count = 0

    def resolve(self, surface: str) -> ResolvedEntity | None:
        for strategy in self.strategies:
            resolved = strategy.resolve(surface)
            if resolved is not None:
                self.resolved_count += 1
                return resolved
        self.unresolved_count += 1
        return None

    def canonicalize_stream(self, surfaces: list[str]) -> dict:
        """Resolve a stream of raw strings; report the dedup effect.

        Returns the id per surface plus the proliferation numbers the
        A4 benchmark prints: how many distinct raw strings collapsed to
        how many unique entity IDs.
        """
        mapping: dict[str, str | None] = {}
        for surface in surfaces:
            if surface not in mapping:
                resolved = self.resolve(surface)
                mapping[surface] = resolved.entity_id if resolved else None
        distinct_surfaces = len(mapping)
        unique_ids = len({entity_id for entity_id in mapping.values()
                          if entity_id is not None})
        unresolved = sum(1 for entity_id in mapping.values() if entity_id is None)
        return {
            "mapping": mapping,
            "distinct_surfaces": distinct_surfaces,
            "unique_entities": unique_ids,
            "unresolved_surfaces": unresolved,
        }
