"""The Figure-5 pipeline: analyze data → store results as RDF → infer.

"One powerful way of using mathematical analysis is to store the key
mathematical results as RDF statements.  The RDF store has the ability
to perform inferencing on the statements ... Therefore, mathematical
analysis combined with inferencing on the RDF store can generate new
knowledge beyond that produced by just the mathematical analysis
itself."

:class:`AnalysisPipeline` regresses numeric series, writes the fitted
slope / r² / trend / forecast into the graph as statements, and runs a
user-extensible rulebase over them.  The default rulebase turns trends
into outlooks and outlooks plus type facts into recommendations — new
facts no single regression produced.
"""

from __future__ import annotations

from collections.abc import Sequence
from contextlib import nullcontext

from repro.analytics.regression import LinearRegression
from repro.analytics.timeseries import detect_trend, linear_forecast
from repro.obs import names
from repro.stores.rdf.graph import Graph, RDF, REPRO, Triple
from repro.stores.rdf.rules import GenericRuleReasoner, Rule


def default_rules() -> list[Rule]:
    """The built-in trend → outlook → recommendation rulebase."""
    return [
        Rule(
            premises=[("?s", REPRO.trend, "rising")],
            conclusions=[("?s", REPRO.outlook, "positive")],
            name="rising-implies-positive-outlook",
        ),
        Rule(
            premises=[("?s", REPRO.trend, "falling")],
            conclusions=[("?s", REPRO.outlook, "negative")],
            name="falling-implies-negative-outlook",
        ),
        Rule(
            premises=[
                ("?s", REPRO.outlook, "positive"),
                ("?s", REPRO.goodness_of_fit, "strong"),
            ],
            conclusions=[("?s", REPRO.signal, "reliable-uptrend")],
            name="strong-fit-uptrend",
        ),
        Rule(
            premises=[
                ("?s", REPRO.signal, "reliable-uptrend"),
                ("?s", RDF.type, REPRO.Company),
            ],
            conclusions=[("?s", REPRO.recommendation, "investment-candidate")],
            name="uptrending-company-is-candidate",
        ),
        Rule(
            premises=[
                ("?s", REPRO.outlook, "negative"),
                ("?s", RDF.type, REPRO.Company),
            ],
            conclusions=[("?s", REPRO.recommendation, "watch-list")],
            name="downtrending-company-watchlist",
        ),
    ]


class AnalysisPipeline:
    """Regression over numeric data, materialized as RDF, then inferred.

    Inference is *incremental by default*: the pipeline remembers which
    statements it added since the last :meth:`infer` and, when nothing
    else touched the graph in between (checked via the graph's
    monotonic ``version``), runs the rulebase semi-naively over just
    that delta instead of rescanning the whole store.  Any external
    mutation safely falls back to a full fixpoint — results are always
    identical to full re-materialization, only cheaper.
    """

    def __init__(
        self,
        graph: Graph | None = None,
        rules: Sequence[Rule] | None = None,
        r_squared_strong: float = 0.5,
        trend_threshold: float = 0.0,
        obs=None,
    ) -> None:
        self.graph = graph if graph is not None else Graph()
        self.reasoner = GenericRuleReasoner(
            list(rules) if rules is not None else default_rules()
        )
        self.r_squared_strong = r_squared_strong
        self.trend_threshold = trend_threshold
        self.series_analyzed = 0
        self.last_infer_mode: str | None = None
        # Optional repro.obs.Observability: spans around each analysis
        # and inference run, plus fleet counters.
        if obs is not None and obs.enabled:
            self._tracer = obs.tracer
            self._metric_series = obs.metrics.counter(
                names.KB_SERIES_ANALYZED_TOTAL, "Series run through the analysis pipeline.")
            self._metric_facts = obs.metrics.counter(
                names.KB_FACTS_INFERRED_TOTAL, "New facts derived by the rulebase.")
            self._metric_infer_full = obs.metrics.counter(
                names.KB_INFER_FULL_TOTAL, "Full-fixpoint inference runs.")
            self._metric_infer_delta = obs.metrics.counter(
                names.KB_INFER_DELTA_TOTAL, "Incremental (delta) inference runs.")
        else:
            self._tracer = None
            self._metric_series = self._metric_facts = None
            self._metric_infer_full = self._metric_infer_delta = None

    @property
    def graph(self) -> Graph:
        """The graph analysis results are written to."""
        return self._graph

    @graph.setter
    def graph(self, graph: Graph) -> None:
        # Swapping the graph invalidates all incremental-inference
        # bookkeeping: start over with a mandatory full fixpoint.
        self._graph = graph
        self._pending: set[Triple] = set()
        self._synced_version: object = None
        self._full_fixpoint_done = False

    def _record_add(self, triple: Triple) -> None:
        if self._graph.add(triple):
            self._pending.add(triple)
        self._synced_version = getattr(self._graph, "version", None)

    def _span(self, name: str, attributes: dict):
        if self._tracer is None:
            return nullcontext()
        return self._tracer.span(name, attributes)

    def analyze_series(
        self,
        subject: str,
        xs: Sequence[float],
        ys: Sequence[float],
        series_name: str = "series",
        entity_type: str | None = None,
        deadline=None,
    ) -> dict:
        """Regress one series and store the key results as statements.

        Adds to the graph: slope, intercept, r², a discrete trend
        label, a goodness-of-fit label and a one-step forecast — the
        "key mathematical results" Figure 5 shows flowing into the RDF
        store.  Returns the numbers for the caller too.

        A ``deadline`` (:class:`repro.util.deadline.Deadline`) is
        checked *before* any statement is written: an out-of-budget
        analysis raises without half-materializing its results, so the
        graph never holds a partial series.
        """
        if deadline is not None:
            deadline.check(f"analyze_series {subject}/{series_name}")
        with self._span(names.SPAN_KB_ANALYZE_SERIES,
                        {"subject": subject, "series": series_name}):
            return self._analyze_series(subject, xs, ys, series_name, entity_type)

    def _analyze_series(
        self,
        subject: str,
        xs: Sequence[float],
        ys: Sequence[float],
        series_name: str,
        entity_type: str | None,
    ) -> dict:
        model = LinearRegression(xs, ys)
        trend = detect_trend(ys, threshold=self.trend_threshold)
        forecast = linear_forecast(ys, horizon=1)[0]
        fit_label = "strong" if model.r_squared >= self.r_squared_strong else "weak"

        self._record_add(Triple(subject, REPRO.analyzed_series, series_name))
        self._record_add(Triple(subject, REPRO.slope, round(model.slope, 6)))
        self._record_add(Triple(subject, REPRO.intercept, round(model.intercept, 6)))
        self._record_add(Triple(subject, REPRO.r_squared, round(model.r_squared, 6)))
        self._record_add(Triple(subject, REPRO.trend, trend))
        self._record_add(Triple(subject, REPRO.goodness_of_fit, fit_label))
        self._record_add(Triple(subject, REPRO.forecast_next, round(forecast, 6)))
        if entity_type is not None:
            self._record_add(Triple(subject, RDF.type, REPRO(entity_type)))
        self.series_analyzed += 1
        if self._metric_series is not None:
            self._metric_series.inc()
        return {
            "subject": subject,
            "slope": model.slope,
            "intercept": model.intercept,
            "r_squared": model.r_squared,
            "trend": trend,
            "fit": fit_label,
            "forecast_next": forecast,
        }

    def infer(self, deadline=None) -> int:
        """Run the rulebase; returns newly derived facts.

        Incremental when possible: if a full fixpoint already ran and
        every graph mutation since then came through this pipeline,
        only the pending delta is re-derived (``last_infer_mode`` is
        set to ``"delta"``, else ``"full"``).

        A ``deadline`` is checked before the run starts; the pending
        delta stays intact when it raises, so a later in-budget
        :meth:`infer` still derives everything.
        """
        if deadline is not None:
            deadline.check("pipeline infer")
        current_version = getattr(self.graph, "version", None)
        incremental = (
            self._full_fixpoint_done
            and current_version is not None
            and current_version == self._synced_version
        )
        with self._span(names.SPAN_KB_INFER, {"series_analyzed": self.series_analyzed}) as span:
            if incremental:
                derived = self.reasoner.forward_delta(self.graph, self._pending)
                self.last_infer_mode = "delta"
            else:
                derived = self.reasoner.forward(self.graph)
                self._full_fixpoint_done = True
                self.last_infer_mode = "full"
            self._pending.clear()
            self._synced_version = getattr(self.graph, "version", None)
            if span is not None:
                span.set_attribute("facts_derived", derived)
                span.set_attribute("mode", self.last_infer_mode)
        if self._metric_facts is not None and derived:
            self._metric_facts.inc(derived)
        metric_mode = (self._metric_infer_delta if self.last_infer_mode == "delta"
                       else self._metric_infer_full)
        if metric_mode is not None:
            metric_mode.inc()
        return derived

    def recommendations(self) -> dict[str, str]:
        """subject -> recommendation, from the inferred facts."""
        return {
            triple.subject: str(triple.object)
            for triple in self.graph.match(None, REPRO.recommendation, None)
        }

    def facts_about(self, subject: str) -> list[Triple]:
        return self.graph.match(subject, None, None)
