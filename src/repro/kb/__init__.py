"""The Personalized Knowledge Base (§3 of the paper), built on the Rich SDK.

Stores personal and public data in files/CSV, a relational database, a
key-value store and an RDF triple store; converts between the formats;
disambiguates named entities (service-backed, with user synonym files
for domains no service covers); spell-checks locally; runs statistical
analysis whose results become RDF statements that the inference engine
extends into new facts (Figure 5); encrypts and compresses before
remote storage; and keeps operating while disconnected, resynchronizing
later.
"""

from repro.kb.knowledge_base import KnowledgeBase, PersonalKnowledgeBase
from repro.kb.disambiguation import (
    EntityDisambiguator,
    ExactMatchStrategy,
    ServiceBackedStrategy,
    SynonymFileStrategy,
)
from repro.kb.spellcheck import LocalSpellChecker
from repro.kb.secure import SecureRemoteStore
from repro.kb.sync import OfflineSyncStore
from repro.kb.pipeline import AnalysisPipeline
from repro.kb.trust import TrustAwarePipeline

__all__ = [
    "TrustAwarePipeline",
    "PersonalKnowledgeBase",
    "KnowledgeBase",
    "EntityDisambiguator",
    "ExactMatchStrategy",
    "ServiceBackedStrategy",
    "SynonymFileStrategy",
    "LocalSpellChecker",
    "SecureRemoteStore",
    "OfflineSyncStore",
    "AnalysisPipeline",
]
