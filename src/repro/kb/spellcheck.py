"""The PKB's local spell checker.

"While there are many spell checking services which are offered over
the Web, the spell checker included with the knowledge base is
generally faster as it avoids the overheads of remote communication.
Some online spell checkers also cost money."

Shares the :class:`repro.services.spellcheck.SpellChecker` algorithm
with the remote service, but runs in-process: zero latency charged to
the simulation clock, zero monetary cost.  Benchmark A3 measures the
gap.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.data.gazetteer import Gazetteer
from repro.services.spellcheck import SpellChecker


class LocalSpellChecker:
    """In-process spell checking over a user-extendable dictionary."""

    def __init__(self, checker: SpellChecker) -> None:
        self._checker = checker
        self.calls = 0

    @classmethod
    def from_texts(cls, texts: Iterable[str],
                   gazetteer: Gazetteer | None = None) -> "LocalSpellChecker":
        """Build the dictionary from local documents plus entity names."""
        extra: list[str] = []
        if gazetteer is not None:
            for entity in gazetteer:
                for surface in entity.all_surface_forms():
                    extra.extend(surface.split())
        return cls(SpellChecker.from_texts(texts, extra_words=extra))

    def add_words(self, words: Iterable[str]) -> None:
        """Teach the dictionary new words (user jargon, local names)."""
        for word in words:
            self._checker.counts.setdefault(word.lower(), 1)

    def is_known(self, word: str) -> bool:
        return self._checker.is_known(word)

    def suggestions(self, word: str, limit: int = 5) -> list[str]:
        self.calls += 1
        return self._checker.suggestions(word, limit=limit)

    def correct_word(self, word: str) -> str:
        self.calls += 1
        return self._checker.correct_word(word)

    def correct_text(self, text: str) -> dict:
        self.calls += 1
        return self._checker.correct_text(text)
