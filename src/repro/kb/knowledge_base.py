"""The Personal Knowledge Base facade.

Ties together every §3 capability behind one object: multiple storage
forms (KV / relational / RDF / CSV), format conversion, fact entry with
entity disambiguation, public-data ingestion from knowledge services
(normalizing their divergent property-naming conventions), reasoning,
the analysis→RDF→inference pipeline, local spell checking, and
secure / offline remote persistence.
"""

from __future__ import annotations

from collections.abc import Sequence
from contextlib import nullcontext
from pathlib import Path

from repro.core.invoker import RichClient
from repro.kb.disambiguation import EntityDisambiguator, ResolvedEntity
from repro.kb.pipeline import AnalysisPipeline
from repro.kb.spellcheck import LocalSpellChecker
from repro.kb.sync import OfflineSyncStore
from repro.obs import names
from repro.simnet.errors import NetworkError, RemoteServiceError
from repro.stores.converters import (
    csv_text_to_table,
    table_to_csv_text,
    table_to_triples,
    triples_to_rows,
    rows_to_table,
)
from repro.stores.csvio import read_csv, write_csv
from repro.stores.kvstore import FileKeyValueStore, InMemoryKeyValueStore, KeyValueStore
from repro.stores.backends.sqlite import SqliteTripleStore
from repro.stores.rdf.graph import Graph, RDF, RDFS, REPRO, Triple
from repro.stores.rdf.materialize import MaterializedGraph
from repro.stores.rdf.plan import QueryPlan, build_plan, build_sharded_plan
from repro.stores.rdf.query import select
from repro.stores.rdf.shard import ShardedGraph
from repro.stores.rdf.reasoner import RdfsReasoner, TransitiveReasoner
from repro.stores.rdf.rules import GenericRuleReasoner, Rule
from repro.stores.relational import Database, Table
from repro.tenancy.context import current_tenant
from repro.util.errors import ConfigurationError, NotFoundError


class PersonalKnowledgeBase:
    """One user's knowledge base over the Rich SDK.

    All collaborators are optional: a PKB without a client still works
    fully offline (local stores, local analysis, local spell check);
    attaching a client adds disambiguation services, public data
    ingestion and secure remote persistence.

    The RDF store's physical layer is configurable: ``storage`` picks
    the backend (``"memory"``, ``"sqlite"``, or a ``factory(index)``
    callable building any :class:`~repro.stores.backends.base.\
StorageBackend`) and ``shards`` splits it into N hash-sharded pieces
    queried with parallel fan-out.  The defaults keep the original
    single in-memory :class:`Graph` — bit-for-bit, including planner
    estimates.  SQLite shards persist under ``data_dir/triples/`` when
    a ``data_dir`` is configured (reopening the same KB finds its
    triples again), else they live in ``:memory:``.
    """

    def __init__(
        self,
        client: RichClient | None = None,
        data_dir: str | Path | None = None,
        disambiguator: EntityDisambiguator | None = None,
        spellchecker: LocalSpellChecker | None = None,
        remote: OfflineSyncStore | None = None,
        storage: str | object = "memory",
        shards: int = 1,
        obs=None,
    ) -> None:
        self.client = client
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.kv: KeyValueStore
        if self.data_dir is not None:
            self.data_dir.mkdir(parents=True, exist_ok=True)
            self.kv = FileKeyValueStore(self.data_dir / "kb.json")
        else:
            self.kv = InMemoryKeyValueStore()
        self.database = Database()
        self.storage = storage
        self.shards = shards
        # Observability is resolved before the graph is built so the
        # sharded router and SQLite backends can register instruments.
        self._storage_obs = obs if obs is not None else (
            client.obs if client is not None else None)
        self.graph = self._build_graph()
        self.disambiguator = disambiguator
        self.spellchecker = spellchecker
        self.remote = remote
        # Observability: an explicit bundle wins; otherwise reuse the
        # client's so KB spans land in the same trace collector.
        self.obs = self._storage_obs
        self.view: MaterializedGraph | None = None
        self._view_reasoners: list | None = None
        self.pipeline = AnalysisPipeline(self.graph, obs=self.obs)
        if self.obs is not None and self.obs.enabled:
            self._tracer = self.obs.tracer
            self._metric_queries = self.obs.metrics.counter(
                names.KB_QUERIES_TOTAL, "SELECT queries answered by the PKB.")
        else:
            self._tracer = None
            self._metric_queries = None

    @property
    def _store(self):
        """Where writes go: the materialized view when enabled, else
        the raw graph (both share the same underlying triples)."""
        return self.view if self.view is not None else self.graph

    @property
    def uses_default_storage(self) -> bool:
        """Whether the RDF store is the original single in-memory Graph."""
        return self.storage == "memory" and self.shards == 1

    def _backend_factory(self):
        """The per-shard backend builder for the configured storage."""
        if callable(self.storage):
            return self.storage
        if self.storage == "memory":
            return lambda index: Graph()
        if self.storage == "sqlite":
            if self.data_dir is None:
                return lambda index: SqliteTripleStore(
                    ":memory:", obs=self._storage_obs)
            triples_dir = self.data_dir / "triples"
            triples_dir.mkdir(parents=True, exist_ok=True)
            return lambda index: SqliteTripleStore(
                triples_dir / f"shard{index}.sqlite", obs=self._storage_obs)
        raise ConfigurationError(
            f"unknown storage {self.storage!r}; choose 'memory', 'sqlite' "
            "or pass a backend factory")

    def _build_graph(self):
        """Construct the RDF store per ``storage`` / ``shards``.

        The default configuration returns a plain :class:`Graph` —
        not a one-shard router — so existing KBs see the exact same
        object type and behavior.  Anything else goes through
        :class:`ShardedGraph` (even at ``shards=1``, which adds the
        fan-out engine's native numeric pushdown at no routing cost).
        """
        if self.uses_default_storage:
            return Graph()
        return ShardedGraph(shards=self.shards,
                            backend_factory=self._backend_factory(),
                            obs=self._storage_obs)

    # ------------------------------------------------------------------
    # Fact entry ("it is very easy for users to enter new facts")
    # ------------------------------------------------------------------

    def _canonical_subject(self, surface: str) -> tuple[str, ResolvedEntity | None]:
        """Resolve a surface form to a unique entity ID when possible.

        Disambiguation prevents the "proliferation of redundant
        database entries" the paper warns about: 'USA' and 'United
        States of America' both become the same subject URI.
        """
        if self.disambiguator is None:
            return surface, None
        resolved = self.disambiguator.resolve(surface)
        if resolved is None:
            return surface, None
        return resolved.entity_id, resolved

    def add_fact(self, subject: str, predicate: str, obj: object,
                 disambiguate: bool = True) -> Triple:
        """Add one statement, canonicalizing subject (and string object)."""
        subject_id = subject
        if disambiguate:
            subject_id, resolved = self._canonical_subject(subject)
            if resolved is not None:
                self._store.add(Triple(subject_id, RDFS.label, resolved.name))
                self._store.add(Triple(subject_id, RDF.type, REPRO(resolved.entity_type)))
                for source, url in resolved.links.items():
                    self._store.add(Triple(subject_id, REPRO(f"link_{source}"), url))
            if isinstance(obj, str):
                object_id, object_resolved = self._canonical_subject(obj)
                if object_resolved is not None:
                    obj = object_id
        triple = Triple(subject_id, predicate, obj)
        self._store.add(triple)
        return triple

    def facts_about(self, subject: str) -> list[Triple]:
        """Every statement whose subject is (or resolves to) ``subject``."""
        subject_id, _ = self._canonical_subject(subject)
        return self.graph.match(subject_id, None, None)

    # ------------------------------------------------------------------
    # Public data ingestion via the Rich SDK
    # ------------------------------------------------------------------

    def ingest_entity(self, surface: str, sources: Sequence[str] | None = None) -> dict:
        """Pull an entity's facts from public knowledge services.

        Each source uses its own property-naming convention; the PKB
        asks each for its ``property_names`` mapping and normalizes
        everything back to canonical property names before storing —
        the §3 "different conventions for naming" problem, solved by
        conversion at ingest time.  Sources that do not cover the
        entity are skipped.  Returns per-source outcomes.
        """
        if self.client is None:
            raise ConfigurationError("ingest_entity requires a RichClient")
        if sources is None:
            sources = [service.name for service in
                       self.client.registry.services_of_kind("knowledge")]
        subject_id, _ = self._canonical_subject(surface)
        outcomes: dict[str, str] = {}
        for source in sources:
            try:
                naming = self.client.invoke(source, "property_names", {}).value
                record = self.client.invoke(source, "lookup", {"entity": surface}).value
            except RemoteServiceError as error:
                outcomes[source] = f"miss ({error.status})"
                continue
            except NetworkError:
                outcomes[source] = "offline"
                continue
            reverse = {renamed: canonical for canonical, renamed in naming.items()}
            stored = 0
            for renamed_property, value in record["facts"].items():
                canonical = reverse.get(renamed_property, renamed_property)
                self._store.add(Triple(subject_id, REPRO(canonical), value))
                stored += 1
            self._store.add(Triple(subject_id, REPRO(f"source_{source}"), record["uri"]))
            if record.get("type_value"):
                self._store.add(Triple(subject_id, RDF.type, REPRO(record["type_value"])))
            outcomes[source] = f"ok ({stored} facts)"
        return outcomes

    # ------------------------------------------------------------------
    # Format conversion (CSV ↔ relational ↔ RDF)
    # ------------------------------------------------------------------

    def ingest_csv_text(self, table_name: str, csv_text: str) -> Table:
        """Load CSV text as a new relational table."""
        return self.database.replace_table(csv_text_to_table(table_name, csv_text))

    def ingest_csv_file(self, table_name: str, path: str | Path) -> Table:
        header, rows = read_csv(path)
        return self.database.replace_table(rows_to_table(table_name, header, rows))

    def export_table_csv(self, table_name: str, path: str | Path | None = None) -> str:
        """Table → CSV text (optionally written to a file) for external
        tools like "MATLAB, Excel, Python programs, R"."""
        csv_text = table_to_csv_text(self.database.table(table_name))
        if path is not None:
            target = Path(path)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(csv_text)
        return csv_text

    def table_to_rdf(self, table_name: str, subject_column: str | None = None) -> int:
        """Convert a relational table into statements in the RDF store."""
        triples = table_to_triples(self.database.table(table_name), subject_column)
        return self._store.add_all(triples)

    def rdf_to_table(self, table_name: str) -> Table:
        """Pivot a table's statements (incl. inferred ones) back into a table."""
        header, rows = triples_to_rows(self.graph, table_name)
        return self.database.replace_table(rows_to_table(table_name, header, rows))

    # ------------------------------------------------------------------
    # Query and reasoning
    # ------------------------------------------------------------------

    def query(self, patterns, **kwargs):
        """SPARQL-like SELECT over the RDF store (see stores.rdf.query).

        Answered by the cost-based planner by default (pass
        ``optimize=False`` for the naive engine — results are
        identical either way, only the join order differs).  With
        materialization enabled, results come through the view's
        version-keyed cache.
        """
        if self._metric_queries is not None:
            self._metric_queries.inc()
        attributes = {"patterns": len(patterns)}
        tenant = current_tenant()
        if tenant is not None:
            attributes["tenant"] = tenant
        span = (self._tracer.span(names.SPAN_KB_QUERY, attributes)
                if self._tracer is not None else nullcontext())
        with span:
            if self.view is not None:
                return self.view.select(patterns, **kwargs)
            runner = getattr(self.graph, "select", None)
            if callable(runner):
                # A store with its own execution strategy (the sharded
                # router) routes / scatters / broadcasts itself.
                return runner(patterns, **kwargs)
            return select(self.graph, patterns, **kwargs)

    async def aquery(self, patterns, **kwargs):
        """Awaitable :meth:`query` for ``repro.core.aio`` callers.

        Sharded stores fan out natively (one awaited task per shard);
        single stores run the query on the default executor so the
        event loop stays unblocked either way.
        """
        if self._metric_queries is not None:
            self._metric_queries.inc()
        arunner = getattr(self.graph, "aselect", None)
        if self.view is None and callable(arunner):
            return await arunner(patterns, **kwargs)
        import asyncio
        import functools

        loop = asyncio.get_running_loop()
        target = self.view.select if self.view is not None else functools.partial(
            select, self.graph)
        return await loop.run_in_executor(
            None, functools.partial(target, patterns, **kwargs))

    def explain(self, patterns, filters: Sequence = ()) -> QueryPlan:
        """The planner's chosen join order and filter placement.

        Returns a :class:`QueryPlan` for single stores; sharded stores
        get a :class:`~repro.stores.rdf.plan.FanoutPlan` whose envelope
        adds the routing decision (scatter / broadcast / single-shard)
        and native-pushdown flag around the same inner plan.  Both
        expose ``explain()`` (stable dict) and ``describe()`` (text);
        the inner join plan is byte-identical across shard counts
        because the router's statistics are global.
        """
        if hasattr(self.graph, "route_select"):
            return build_sharded_plan(self.graph, patterns, filters)
        return build_plan(self.graph, patterns, filters)

    def enable_materialization(
        self, reasoners: Sequence[object] | None = None
    ) -> MaterializedGraph:
        """Keep the store closed under ``reasoners`` incrementally.

        Wraps the graph in a :class:`MaterializedGraph` (defaults to an
        RDFS reasoner): every later write through the KB derives only
        the consequences of the change instead of re-running a full
        fixpoint, and :meth:`query` results are cached until the next
        mutation.  The analysis pipeline is rewired so its statements
        flow through the view too.  Idempotent-ish: calling again
        rebuilds the view with the new reasoner set.
        """
        self._view_reasoners = list(reasoners) if reasoners is not None else None
        self.view = MaterializedGraph(
            self.graph, reasoners=self._view_reasoners, obs=self.obs)
        self.pipeline.graph = self.view
        return self.view

    def reason(self, reasoner: str = "rdfs") -> int:
        """Apply a predefined reasoner; returns new-triple count."""
        if reasoner == "rdfs":
            return RdfsReasoner().apply(self.graph)
        if reasoner == "transitive":
            return TransitiveReasoner().apply(self.graph)
        raise ConfigurationError(
            f"unknown reasoner {reasoner!r}; choose 'rdfs' or 'transitive'"
        )

    def infer_with_rules(self, rules: Sequence[Rule]) -> int:
        """Run user-defined rules forward over the store."""
        return GenericRuleReasoner(list(rules)).forward(self.graph)

    # ------------------------------------------------------------------
    # Statistical analysis (Figure 5)
    # ------------------------------------------------------------------

    def analyze_numeric_table(
        self,
        table_name: str,
        x_column: str,
        y_column: str,
        subject: str,
        entity_type: str | None = None,
    ) -> dict:
        """Regress y on x over a table's rows; results become RDF facts."""
        table = self.database.table(table_name)
        rows = table.select(columns=[x_column, y_column])
        xs = [row[x_column] for row in rows if row[x_column] is not None
              and row[y_column] is not None]
        ys = [row[y_column] for row in rows if row[x_column] is not None
              and row[y_column] is not None]
        return self.pipeline.analyze_series(subject, xs, ys, series_name=table_name,
                                            entity_type=entity_type)

    # ------------------------------------------------------------------
    # Spell checking
    # ------------------------------------------------------------------

    def correct_text(self, text: str) -> dict:
        """Local spell correction (no network, no fee)."""
        if self.spellchecker is None:
            raise ConfigurationError("no spell checker attached")
        return self.spellchecker.correct_text(text)

    # ------------------------------------------------------------------
    # Persistence (local file + secure remote)
    # ------------------------------------------------------------------

    def export_graph_turtle(self, path: str | Path | None = None) -> str:
        """Serialize the RDF store as Turtle text (optionally to a file)."""
        from repro.stores.rdf.serialization import to_turtle

        text = to_turtle(self.graph)
        if path is not None:
            target = Path(path)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(text)
        return text

    def import_graph_turtle(self, text_or_path: str | Path) -> int:
        """Merge Turtle statements into the RDF store; returns new count."""
        from repro.stores.rdf.serialization import from_turtle

        candidate = Path(str(text_or_path))
        try:
            is_file = candidate.is_file()
        except OSError:
            is_file = False  # long inline text is not a valid path
        text = candidate.read_text() if is_file else str(text_or_path)
        return self._store.add_all(from_turtle(text))

    def snapshot(self) -> dict:
        """The whole knowledge base as one JSON-safe dict."""
        return {
            "graph": self.graph.to_list(),
            "database": self.database.to_dict(),
            "kv": {key: self.kv.get(key) for key in self.kv.keys()},
        }

    def restore(self, snapshot: dict) -> None:
        """Replace current contents with a snapshot's."""
        payload = snapshot.get("graph", [])
        if self.uses_default_storage:
            self.graph = Graph.from_list(payload)
        else:
            # Reuse the configured backends in place (SQLite files stay
            # open and are cleared transactionally; versions advance).
            self.graph.clear()
            self.graph.add_all(tuple(item) for item in payload)
        if self.view is not None:
            # Re-wrap the fresh graph; restored triples all count as
            # base facts (a snapshot of a closed graph stays closed).
            self.view = MaterializedGraph(
                self.graph, reasoners=self._view_reasoners, obs=self.obs)
            self.pipeline.graph = self.view
        else:
            self.pipeline.graph = self.graph
        self.database = Database.from_dict(snapshot.get("database", {"tables": []}))
        self.kv.clear()
        for key, value in snapshot.get("kv", {}).items():
            self.kv.put(key, value)

    def save_local(self, path: str | Path | None = None) -> Path:
        """Write the snapshot to disk (defaults into ``data_dir``)."""
        if path is None:
            if self.data_dir is None:
                raise ConfigurationError("no data_dir configured and no path given")
            path = self.data_dir / "snapshot.json"
        import json

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.snapshot()))
        return target

    def load_local(self, path: str | Path | None = None) -> None:
        if path is None:
            if self.data_dir is None:
                raise ConfigurationError("no data_dir configured and no path given")
            path = self.data_dir / "snapshot.json"
        import json

        self.restore(json.loads(Path(path).read_text()))

    def backup_remote(self, key: str = "snapshot") -> None:
        """Push the snapshot through the secure/offline remote store."""
        if self.remote is None:
            raise ConfigurationError("no remote store attached")
        self.remote.put(key, self.snapshot())

    def restore_remote(self, key: str = "snapshot") -> None:
        if self.remote is None:
            raise ConfigurationError("no remote store attached")
        snapshot = self.remote.get(key)
        if not isinstance(snapshot, dict):
            raise NotFoundError(f"remote key {key!r} does not hold a snapshot")
        self.restore(snapshot)


#: Short alias — the configuration-facing name used in docs/examples
#: (``KnowledgeBase(storage="sqlite", shards=4)``).
KnowledgeBase = PersonalKnowledgeBase
