"""Trust-aware knowledge: the paper's §5 future work, realized.

Wraps the Figure-5 pipeline in accuracy levels: every ingested fact is
asserted with a per-source prior ("how much do I trust DBpedia vs a
rumor feed"), statistical results carry confidence derived from the
regression's own goodness of fit, the rulebase propagates confidence
through derivations, and consumers ask for conclusions above a
confidence threshold.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.analytics.regression import LinearRegression
from repro.analytics.timeseries import detect_trend
from repro.stores.rdf.graph import RDF, REPRO, Triple
from repro.stores.rdf.provenance import (
    ConfidenceGraph,
    ConfidenceRuleEngine,
    WeightedRule,
    godel_tnorm,
)
from repro.stores.rdf.rules import Rule

DEFAULT_SOURCE_PRIORS = {
    "user": 1.0,
    "regression": 0.9,
    "dbpedia-sim": 0.90,
    "wikidata-sim": 0.95,
    "yago-sim": 0.80,
    "web-sentiment": 0.6,
    "rumor": 0.3,
}


def default_weighted_rules() -> list[WeightedRule]:
    """The trend → outlook → recommendation chain, with rule strengths.

    Strengths encode that "rising implies positive outlook" is solid
    while "positive outlook implies buy candidate" is a heuristic.
    """
    return [
        WeightedRule(Rule(
            premises=[("?s", REPRO.trend, "rising")],
            conclusions=[("?s", REPRO.outlook, "positive")],
            name="rising-outlook"), strength=0.95),
        WeightedRule(Rule(
            premises=[("?s", REPRO.trend, "falling")],
            conclusions=[("?s", REPRO.outlook, "negative")],
            name="falling-outlook"), strength=0.95),
        WeightedRule(Rule(
            premises=[("?s", REPRO.outlook, "positive"),
                      ("?s", RDF.type, REPRO.Company)],
            conclusions=[("?s", REPRO.recommendation, "investment-candidate")],
            name="candidate"), strength=0.75),
        WeightedRule(Rule(
            premises=[("?s", REPRO.outlook, "negative"),
                      ("?s", RDF.type, REPRO.Company)],
            conclusions=[("?s", REPRO.recommendation, "watch-list")],
            name="watchlist"), strength=0.75),
    ]


class TrustAwarePipeline:
    """Analysis → weighted facts → confidence-propagating inference."""

    def __init__(
        self,
        source_priors: Mapping[str, float] | None = None,
        rules: Sequence[WeightedRule] | None = None,
        confidence_floor: float = 0.2,
        tnorm=godel_tnorm,
    ) -> None:
        self.store = ConfidenceGraph()
        self.source_priors = dict(DEFAULT_SOURCE_PRIORS)
        if source_priors:
            self.source_priors.update(source_priors)
        self.engine = ConfidenceRuleEngine(
            list(rules) if rules is not None else default_weighted_rules(),
            tnorm=tnorm,
            confidence_floor=confidence_floor,
        )

    def prior_for(self, source: str) -> float:
        """The trust prior for a source (0.5 for unknown sources)."""
        return self.source_priors.get(source, 0.5)

    # -- ingestion ----------------------------------------------------------

    def assert_from_source(self, triple, source: str,
                           confidence: float | None = None) -> float:
        """Assert one fact at the source's prior (or an explicit value
        scaled by it)."""
        prior = self.prior_for(source)
        effective = prior if confidence is None else prior * confidence
        effective = max(min(effective, 1.0), 1e-6)
        return self.store.assert_fact(triple, effective, source=source)

    def analyze_series(self, subject: str, xs: Sequence[float],
                       ys: Sequence[float],
                       entity_type: str | None = None) -> dict:
        """Regress a series; the trend fact's confidence is the fit's r²
        (clamped), scaled by the 'regression' source prior."""
        model = LinearRegression(xs, ys)
        trend = detect_trend(ys)
        trend_confidence = max(0.05, min(model.r_squared, 1.0))
        self.assert_from_source(Triple(subject, REPRO.trend, trend),
                                "regression", trend_confidence)
        self.assert_from_source(
            Triple(subject, REPRO.slope, round(model.slope, 6)),
            "regression", trend_confidence)
        if entity_type is not None:
            self.assert_from_source(
                Triple(subject, RDF.type, REPRO(entity_type)), "regression")
        return {
            "subject": subject,
            "trend": trend,
            "r_squared": model.r_squared,
            "trend_confidence": self.store.confidence(
                Triple(subject, REPRO.trend, trend)),
        }

    # -- inference -----------------------------------------------------------

    def infer(self) -> int:
        """Propagate confidence through the rulebase; returns new facts."""
        return self.engine.infer(self.store)

    def recommendations(self, min_confidence: float = 0.0) -> dict[str, dict]:
        """subject -> {recommendation, confidence}, thresholded."""
        results: dict[str, dict] = {}
        for triple, confidence in self.store.match(
            None, REPRO.recommendation, None, min_confidence=min_confidence
        ):
            current = results.get(triple.subject)
            if current is None or confidence > current["confidence"]:
                results[triple.subject] = {
                    "recommendation": str(triple.object),
                    "confidence": round(confidence, 4),
                }
        return results

    def explain(self, triple) -> dict:
        """A fact's confidence and where it came from."""
        return {
            "confidence": round(self.store.confidence(triple), 4),
            "sources": sorted(self.store.sources(triple)),
        }
