"""Secure remote storage: compress, encrypt, then upload.

Section 3: the PKB "might need to encrypt confidential data before
sending it to the remote data store even if the remote data store has
encryption capabilities", and compressing before upload saves network
bandwidth and money "even if the cloud data store provides
compression".  :class:`SecureRemoteStore` is that client-side layer
over any cloud KV service reachable through the Rich SDK.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.invoker import RichClient
from repro.crypto.cipher import StreamCipher
from repro.crypto.compression import Codec, ZlibCodec
from repro.crypto.envelope import seal, unseal
from repro.util.errors import NotFoundError


@dataclass
class SecureStoreStats:
    """Bandwidth accounting: what compression+encryption saved/cost."""

    puts: int = 0
    gets: int = 0
    plaintext_bytes: int = 0
    uploaded_bytes: int = 0

    @property
    def bytes_saved(self) -> int:
        return self.plaintext_bytes - self.uploaded_bytes

    @property
    def upload_ratio(self) -> float:
        """Uploaded / plaintext (values < 1 mean compression won)."""
        if self.plaintext_bytes == 0:
            return 1.0
        return self.uploaded_bytes / self.plaintext_bytes


class SecureRemoteStore:
    """Encrypt-and-compress wrapper around a remote KV store service."""

    def __init__(
        self,
        client: RichClient,
        store_service: str,
        cipher: StreamCipher,
        codec: Codec | None = None,
        key_prefix: str = "pkb/",
    ) -> None:
        self.client = client
        self.store_service = store_service
        self.cipher = cipher
        self.codec = codec if codec is not None else ZlibCodec()
        self.key_prefix = key_prefix
        self.stats = SecureStoreStats()

    def _remote_key(self, key: str) -> str:
        return self.key_prefix + key

    def put(self, key: str, value: object) -> None:
        """Seal ``value`` and store it remotely under ``key``."""
        envelope = seal(value, self.cipher, self.codec)
        self.stats.puts += 1
        self.stats.plaintext_bytes += envelope.plaintext_bytes
        self.stats.uploaded_bytes += envelope.sealed_bytes
        self.client.invoke(
            self.store_service,
            "put",
            {"key": self._remote_key(key), "value": envelope.as_dict()},
        )

    def get(self, key: str) -> object:
        """Fetch and unseal; raises :class:`NotFoundError` when absent."""
        from repro.simnet.errors import RemoteServiceError

        self.stats.gets += 1
        try:
            result = self.client.invoke(
                self.store_service, "get", {"key": self._remote_key(key)},
                use_cache=False,
            )
        except RemoteServiceError as error:
            if error.status == 404:
                raise NotFoundError(f"no remote value for key {key!r}") from error
            raise
        return unseal(result.value["value"], self.cipher, self.codec)

    def delete(self, key: str) -> bool:
        result = self.client.invoke(
            self.store_service, "delete", {"key": self._remote_key(key)}
        )
        return bool(result.value["deleted"])

    def keys(self) -> list[str]:
        result = self.client.invoke(
            self.store_service, "keys", {"prefix": self.key_prefix}, use_cache=False
        )
        return [key[len(self.key_prefix):] for key in result.value["keys"]]
