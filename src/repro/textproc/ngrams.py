"""N-gram extraction over token sequences."""

from __future__ import annotations

from collections.abc import Sequence


def ngrams(tokens: Sequence[str], n: int) -> list[tuple[str, ...]]:
    """All contiguous n-grams of ``tokens`` in order.

    Returns an empty list when the sequence is shorter than ``n``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return [tuple(tokens[index : index + n]) for index in range(len(tokens) - n + 1)]


def bigrams(tokens: Sequence[str]) -> list[tuple[str, str]]:
    """All contiguous bigrams of ``tokens``."""
    return ngrams(tokens, 2)  # type: ignore[return-value]


def ngram_strings(tokens: Sequence[str], n: int, separator: str = " ") -> list[str]:
    """N-grams joined into strings, handy as phrase keys."""
    return [separator.join(gram) for gram in ngrams(tokens, n)]
