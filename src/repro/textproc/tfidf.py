"""Term statistics: term frequencies and a TF-IDF index.

The TF-IDF index is the shared workhorse of the keyword-extraction NLU
providers and the BM25 search engines (BM25 needs the same document
frequencies and length statistics).
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence

from repro.textproc.stemmer import porter_stem
from repro.textproc.stopwords import remove_stopwords
from repro.textproc.tokenizer import word_tokens


def term_frequencies(text: str, stem: bool = True) -> Counter[str]:
    """Counts of content terms in ``text`` (stop words removed)."""
    tokens = remove_stopwords(word_tokens(text))
    if stem:
        tokens = [porter_stem(token) for token in tokens]
    return Counter(tokens)


class TfidfIndex:
    """An inverted index with TF-IDF and BM25 scoring.

    Documents are added with a stable ``doc_id``.  The index keeps raw
    term frequencies per document, document frequencies per term, and
    document lengths, which is everything both scoring functions need.
    """

    def __init__(self, stem: bool = True) -> None:
        self.stem = stem
        self._doc_terms: dict[str, Counter[str]] = {}
        self._doc_lengths: dict[str, int] = {}
        self._document_frequency: Counter[str] = Counter()
        self._postings: dict[str, set[str]] = {}

    def __len__(self) -> int:
        return len(self._doc_terms)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_terms

    @property
    def doc_ids(self) -> list[str]:
        return list(self._doc_terms)

    def _terms_of(self, text: str) -> list[str]:
        tokens = remove_stopwords(word_tokens(text))
        if self.stem:
            tokens = [porter_stem(token) for token in tokens]
        return tokens

    def add_document(self, doc_id: str, text: str) -> None:
        """Index ``text`` under ``doc_id``; re-adding replaces the old copy."""
        if doc_id in self._doc_terms:
            self.remove_document(doc_id)
        counts = Counter(self._terms_of(text))
        self._doc_terms[doc_id] = counts
        self._doc_lengths[doc_id] = sum(counts.values())
        for term in counts:
            self._document_frequency[term] += 1
            self._postings.setdefault(term, set()).add(doc_id)

    def remove_document(self, doc_id: str) -> None:
        """Drop ``doc_id`` from the index; unknown ids are a no-op."""
        counts = self._doc_terms.pop(doc_id, None)
        if counts is None:
            return
        del self._doc_lengths[doc_id]
        for term in counts:
            self._document_frequency[term] -= 1
            if self._document_frequency[term] == 0:
                del self._document_frequency[term]
            postings = self._postings[term]
            postings.discard(doc_id)
            if not postings:
                del self._postings[term]

    # -- statistics ------------------------------------------------------

    def document_frequency(self, term: str) -> int:
        return self._document_frequency.get(term, 0)

    def inverse_document_frequency(self, term: str) -> float:
        """Smoothed IDF: log((N + 1) / (df + 1)) + 1, always positive."""
        count = len(self._doc_terms)
        return math.log((count + 1) / (self.document_frequency(term) + 1)) + 1.0

    def average_document_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return sum(self._doc_lengths.values()) / len(self._doc_lengths)

    def tfidf_vector(self, doc_id: str) -> dict[str, float]:
        """TF-IDF weights of every term in one document."""
        counts = self._doc_terms[doc_id]
        length = max(self._doc_lengths[doc_id], 1)
        return {
            term: (frequency / length) * self.inverse_document_frequency(term)
            for term, frequency in counts.items()
        }

    def top_terms(self, doc_id: str, limit: int = 10) -> list[tuple[str, float]]:
        """The highest-TF-IDF terms of one document, best first."""
        vector = self.tfidf_vector(doc_id)
        ranked = sorted(vector.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:limit]

    # -- retrieval -------------------------------------------------------

    def candidates(self, query_terms: Iterable[str]) -> set[str]:
        """Documents containing at least one query term."""
        matches: set[str] = set()
        for term in query_terms:
            matches |= self._postings.get(term, set())
        return matches

    def bm25_scores(
        self,
        query: str,
        k1: float = 1.5,
        b: float = 0.75,
    ) -> list[tuple[str, float]]:
        """BM25 scores of all candidate documents for ``query``, best first.

        The ``k1`` and ``b`` knobs are exposed so that the different
        simulated search engines can rank genuinely differently.
        """
        query_terms = self._terms_of(query)
        if not query_terms:
            return []
        total_docs = len(self._doc_terms)
        avg_length = self.average_document_length() or 1.0
        scores: dict[str, float] = {}
        for term in set(query_terms):
            doc_frequency = self.document_frequency(term)
            if doc_frequency == 0:
                continue
            idf = math.log(1 + (total_docs - doc_frequency + 0.5) / (doc_frequency + 0.5))
            for doc_id in self._postings[term]:
                frequency = self._doc_terms[doc_id][term]
                length_norm = 1 - b + b * self._doc_lengths[doc_id] / avg_length
                scores[doc_id] = scores.get(doc_id, 0.0) + idf * (
                    frequency * (k1 + 1) / (frequency + k1 * length_norm)
                )
        return sorted(scores.items(), key=lambda item: (-item[1], item[0]))


def cosine_similarity(vector_a: dict[str, float], vector_b: dict[str, float]) -> float:
    """Cosine similarity between two sparse term-weight vectors."""
    if not vector_a or not vector_b:
        return 0.0
    shorter, longer = sorted((vector_a, vector_b), key=len)
    dot = sum(weight * longer.get(term, 0.0) for term, weight in shorter.items())
    norm_a = math.sqrt(sum(weight**2 for weight in vector_a.values()))
    norm_b = math.sqrt(sum(weight**2 for weight in vector_b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)
