"""Text-processing substrate.

Everything the simulated cognitive services need to do *real* language
work locally: tokenization, sentence splitting, Porter stemming, stop
words, n-grams, HTML parsing, TF-IDF, and edit distance.  The NLU
providers in :mod:`repro.services.nlu`, the search engines in
:mod:`repro.services.search`, and the spell checkers are all built on
this package.
"""

from repro.textproc.tokenizer import tokenize, word_tokens, split_sentences
from repro.textproc.stemmer import porter_stem
from repro.textproc.stopwords import STOPWORDS, is_stopword, remove_stopwords
from repro.textproc.ngrams import ngrams, bigrams
from repro.textproc.html import strip_html, extract_title, render_html
from repro.textproc.tfidf import TfidfIndex, term_frequencies
from repro.textproc.distance import levenshtein, damerau_levenshtein, similarity_ratio

__all__ = [
    "tokenize",
    "word_tokens",
    "split_sentences",
    "porter_stem",
    "STOPWORDS",
    "is_stopword",
    "remove_stopwords",
    "ngrams",
    "bigrams",
    "strip_html",
    "extract_title",
    "render_html",
    "TfidfIndex",
    "term_frequencies",
    "levenshtein",
    "damerau_levenshtein",
    "similarity_ratio",
]
