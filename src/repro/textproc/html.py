"""Minimal HTML generation and stripping.

The simulated web corpus serves documents as HTML (like the real web);
the Rich SDK fetches pages, stores them, strips the markup and hands
plain text to NLU services — exactly the flow in Figure 3 of the paper.
"""

from __future__ import annotations

import html as _html
import re

_TAG_RE = re.compile(r"<[^>]+>")
_TITLE_RE = re.compile(r"<title[^>]*>(.*?)</title>", re.IGNORECASE | re.DOTALL)
_SCRIPT_STYLE_RE = re.compile(
    r"<(script|style)[^>]*>.*?</\1>", re.IGNORECASE | re.DOTALL
)
_BLOCK_TAG_RE = re.compile(r"</?(p|div|br|h[1-6]|li|tr|title)[^>]*>", re.IGNORECASE)
_WHITESPACE_RE = re.compile(r"[ \t]+")
_BLANK_LINES_RE = re.compile(r"\n\s*\n+")


def render_html(title: str, paragraphs: list[str], metadata: dict[str, str] | None = None) -> str:
    """Render a simple HTML page with a title and body paragraphs."""
    meta_tags = "".join(
        f'<meta name="{_html.escape(name)}" content="{_html.escape(value)}">'
        for name, value in (metadata or {}).items()
    )
    body = "".join(f"<p>{_html.escape(paragraph)}</p>" for paragraph in paragraphs)
    return (
        "<!DOCTYPE html><html><head>"
        f"<title>{_html.escape(title)}</title>{meta_tags}"
        f"</head><body><h1>{_html.escape(title)}</h1>{body}</body></html>"
    )


def extract_title(document: str) -> str:
    """The contents of the first ``<title>`` element, or an empty string."""
    match = _TITLE_RE.search(document)
    if match is None:
        return ""
    return _html.unescape(match.group(1)).strip()


def strip_html(document: str) -> str:
    """Convert an HTML document to plain text.

    Scripts and styles are removed entirely; block-level tags become
    newlines so sentence splitting still sees paragraph boundaries;
    entities are unescaped; runs of whitespace are collapsed.
    """
    text = _SCRIPT_STYLE_RE.sub(" ", document)
    text = _BLOCK_TAG_RE.sub("\n", text)
    text = _TAG_RE.sub(" ", text)
    text = _html.unescape(text)
    text = _WHITESPACE_RE.sub(" ", text)
    text = _BLANK_LINES_RE.sub("\n", text)
    return "\n".join(line.strip() for line in text.splitlines() if line.strip())
