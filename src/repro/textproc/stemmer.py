"""Porter stemming algorithm (Porter, 1980), implemented from scratch.

Used to fold morphological variants together in the TF-IDF index, the
keyword extractor, and the search engines, so that a query for
``connections`` matches documents about ``connecting``.
"""

from __future__ import annotations

_VOWELS = "aeiou"


def _is_consonant(word: str, index: int) -> bool:
    letter = word[index]
    if letter in _VOWELS:
        return False
    if letter == "y":
        return index == 0 or not _is_consonant(word, index - 1)
    return True


def _measure(stem: str) -> int:
    """Porter's m: the number of VC sequences in the stem."""
    count = 0
    previous_vowel = False
    for index in range(len(stem)):
        consonant = _is_consonant(stem, index)
        if consonant and previous_vowel:
            count += 1
        previous_vowel = not consonant
    return count


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, index) for index in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """Ends consonant-vowel-consonant where the final consonant is not w, x or y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace_suffix(word: str, suffix: str, replacement: str, min_measure: int) -> str | None:
    """Replace ``suffix`` with ``replacement`` when m(stem) > min_measure."""
    if not word.endswith(suffix):
        return None
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > min_measure:
        return stem + replacement
    return word


def _step1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    for suffix in ("ed", "ing"):
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if not _contains_vowel(stem):
                return word
            if stem.endswith(("at", "bl", "iz")):
                return stem + "e"
            if _ends_double_consonant(stem) and stem[-1] not in "lsz":
                return stem[:-1]
            if _measure(stem) == 1 and _ends_cvc(stem):
                return stem + "e"
            return stem
    return word


def _step1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_SUFFIXES = [
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
]

_STEP3_SUFFIXES = [
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
]

_STEP4_SUFFIXES = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def _step2(word: str) -> str:
    for suffix, replacement in _STEP2_SUFFIXES:
        replaced = _replace_suffix(word, suffix, replacement, 0)
        if replaced is not None:
            return replaced
    return word


def _step3(word: str) -> str:
    for suffix, replacement in _STEP3_SUFFIXES:
        replaced = _replace_suffix(word, suffix, replacement, 0)
        if replaced is not None:
            return replaced
    return word


def _step4(word: str) -> str:
    if word.endswith("ion"):
        stem = word[:-3]
        if stem and stem[-1] in "st" and _measure(stem) > 1:
            return stem
        return word
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    return word


def _step5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        measure = _measure(stem)
        if measure > 1 or (measure == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step5b(word: str) -> str:
    if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
        return word[:-1]
    return word


def porter_stem(word: str) -> str:
    """Return the Porter stem of ``word`` (input assumed lowercase)."""
    if len(word) <= 2:
        return word
    word = _step1a(word)
    word = _step1b(word)
    word = _step1c(word)
    word = _step2(word)
    word = _step3(word)
    word = _step4(word)
    word = _step5a(word)
    word = _step5b(word)
    return word
