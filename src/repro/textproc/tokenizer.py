"""Tokenization and sentence splitting.

Deliberately rule-based and dependency-free: the goal is predictable,
testable behaviour for the simulated NLU services, not state-of-the-art
segmentation.
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(
    r"""
    [A-Za-z]+(?:'[A-Za-z]+)?   # words, with an optional internal apostrophe
    | \d+(?:\.\d+)?            # integers and decimals
    """,
    re.VERBOSE,
)

_ABBREVIATIONS = frozenset(
    {"mr", "mrs", "ms", "dr", "prof", "inc", "corp", "ltd", "co", "vs", "etc", "e.g", "i.e", "u.s", "st"}
)

_SENTENCE_END_RE = re.compile(r"([.!?]+)(\s+|$)")


def tokenize(text: str, lowercase: bool = True) -> list[str]:
    """Split ``text`` into word and number tokens.

    Punctuation is dropped; apostrophes inside words are kept
    (``don't`` stays one token).
    """
    tokens = _TOKEN_RE.findall(text)
    if lowercase:
        tokens = [token.lower() for token in tokens]
    return tokens


def word_tokens(text: str, lowercase: bool = True) -> list[str]:
    """Tokens that are words (numbers filtered out)."""
    return [token for token in tokenize(text, lowercase=lowercase) if not token[0].isdigit()]


def split_sentences(text: str) -> list[str]:
    """Split ``text`` into sentences on ., ! and ? boundaries.

    Common abbreviations (Mr., Inc., U.S., ...) do not end a sentence.
    Whitespace-only fragments are dropped; each returned sentence is
    stripped.
    """
    sentences: list[str] = []
    start = 0
    for match in _SENTENCE_END_RE.finditer(text):
        candidate = text[start : match.end(1)]
        preceding = candidate[: match.start(1) - start]
        last_word = preceding.rsplit(None, 1)[-1].lower() if preceding.split() else ""
        last_word = last_word.rstrip(".")
        if match.group(1) == "." and last_word in _ABBREVIATIONS:
            continue
        stripped = candidate.strip()
        if stripped:
            sentences.append(stripped)
        start = match.end()
    tail = text[start:].strip()
    if tail:
        sentences.append(tail)
    return sentences
