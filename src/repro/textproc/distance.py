"""String edit distances, used by the spell checkers and disambiguation."""

from __future__ import annotations


def levenshtein(first: str, second: str, limit: int | None = None) -> int:
    """Classic Levenshtein distance (insert / delete / substitute).

    When ``limit`` is given and the true distance exceeds it, returns
    ``limit + 1`` — the early exit keeps dictionary scans fast.
    """
    if first == second:
        return 0
    if len(first) > len(second):
        first, second = second, first
    if limit is not None and len(second) - len(first) > limit:
        return limit + 1

    previous = list(range(len(first) + 1))
    for row, char_second in enumerate(second, start=1):
        current = [row]
        best_in_row = row
        for column, char_first in enumerate(first, start=1):
            cost = 0 if char_first == char_second else 1
            value = min(
                previous[column] + 1,       # deletion
                current[column - 1] + 1,    # insertion
                previous[column - 1] + cost # substitution
            )
            current.append(value)
            best_in_row = min(best_in_row, value)
        if limit is not None and best_in_row > limit:
            return limit + 1
        previous = current
    return previous[-1]


def damerau_levenshtein(first: str, second: str) -> int:
    """Edit distance that also counts adjacent transpositions as one edit.

    (The restricted "optimal string alignment" variant, which is what
    spell checkers conventionally use.)
    """
    rows = len(first) + 1
    columns = len(second) + 1
    table = [[0] * columns for _ in range(rows)]
    for row in range(rows):
        table[row][0] = row
    for column in range(columns):
        table[0][column] = column
    for row in range(1, rows):
        for column in range(1, columns):
            cost = 0 if first[row - 1] == second[column - 1] else 1
            value = min(
                table[row - 1][column] + 1,
                table[row][column - 1] + 1,
                table[row - 1][column - 1] + cost,
            )
            if (
                row > 1
                and column > 1
                and first[row - 1] == second[column - 2]
                and first[row - 2] == second[column - 1]
            ):
                value = min(value, table[row - 2][column - 2] + 1)
            table[row][column] = value
    return table[-1][-1]


def similarity_ratio(first: str, second: str) -> float:
    """Normalized similarity in [0, 1]: 1 − distance / max length."""
    if not first and not second:
        return 1.0
    longest = max(len(first), len(second))
    return 1.0 - levenshtein(first, second) / longest
