"""Command-line entry point: ``python -m repro.chaos``.

Runs the named chaos scenarios, prints each byte-stable invariant
report, and (with ``--strict``) exits non-zero when any applicable
invariant fails.  ``--no-protections`` runs the naive-caller control,
which is *expected* to fail the deadline and lost-update invariants —
CI runs both modes to prove the invariants have teeth.
"""

from __future__ import annotations

import argparse
import sys

from repro.chaos.scenarios import SCENARIOS, run_all, run_scenario


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Deterministic chaos harness: seeded fault injection "
                    "with machine-checked resilience invariants.")
    parser.add_argument("--all", action="store_true",
                        help="run every scenario (the default)")
    parser.add_argument("--scenario", action="append", default=[],
                        metavar="NAME", choices=sorted(SCENARIOS),
                        help="run one named scenario (repeatable)")
    parser.add_argument("--seed", type=int, default=7,
                        help="fault-plan seed (default: 7); same seed, "
                             "same bytes")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 if any applicable invariant fails")
    parser.add_argument("--no-protections", action="store_true",
                        help="run the naive-caller control (expected to "
                             "fail deadline/lost-update invariants)")
    parser.add_argument("--list", action="store_true",
                        help="list scenario names and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in SCENARIOS:
            print(name)
        return 0

    protections = not args.no_protections
    if args.scenario and not args.all:
        results = [run_scenario(name, seed=args.seed,
                                protections=protections)
                   for name in args.scenario]
    else:
        results = run_all(seed=args.seed, protections=protections)

    for result in results:
        print(result.render())
        print()

    passed = sum(1 for result in results if result.passed)
    mode = "on" if protections else "off"
    print(f"chaos: {passed}/{len(results)} scenarios passed "
          f"(seed={args.seed} protections={mode})")
    if args.strict and passed != len(results):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
