"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a frozen, ordered collection of fault specs,
each scoped to a time :class:`Window` on the simulation clock and
optionally to one endpoint.  Plans are pure data — compiling one into
a live :class:`~repro.chaos.inject.ChaosInjector` (via
:meth:`FaultPlan.injector`) is what arms the transport.  Because the
specs are frozen and the injector draws randomness from a seed derived
with :func:`repro.util.rng.derive_seed`, the same plan + seed replays
the exact same fault schedule, call for call.

Spec catalogue (all timings in simulated seconds):

* :class:`ErrorBurst` — an endpoint answers 5xx/429 during a window,
  each call failing with ``probability``.
* :class:`LatencySpike` — responses slow down: ``extra`` seconds added
  and/or the sampled latency multiplied by ``factor`` (slow-drip).
* :class:`Partition` — the network (or one endpoint's route) is
  unreachable for a window.
* :class:`FlappingLink` — connectivity flaps with a duty cycle,
  compiling to a train of short partitions.
* :class:`PayloadCorruption` — response payloads are mangled on the
  wire, which the service client surfaces as a 502.
* :class:`ClockSkew` — a peer's clock runs ``offset`` seconds apart
  (consumed by :class:`~repro.chaos.inject.SkewedClock`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Window:
    """A half-open interval ``[start, end)`` of simulated time."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"window end must be >= start, got [{self.start}, {self.end})")

    def contains(self, now: float) -> bool:
        """Whether ``now`` falls inside this window."""
        return self.start <= now < self.end

    def describe(self) -> str:
        """Stable textual form, used in plan descriptions."""
        return f"[{self.start:g}, {self.end:g})"


@dataclass(frozen=True)
class FaultSpec:
    """Base class for every fault the plan can schedule."""

    def active(self, endpoint: str, now: float) -> bool:
        """Whether this spec applies to ``endpoint`` at time ``now``."""
        window = getattr(self, "window", None)
        if window is not None and not window.contains(now):
            return False
        scoped = getattr(self, "endpoint", None)
        return scoped is None or scoped == endpoint

    def describe(self) -> str:
        """One stable line for :meth:`FaultPlan.describe`."""
        raise NotImplementedError


@dataclass(frozen=True)
class ErrorBurst(FaultSpec):
    """An endpoint returns ``status`` errors during ``window``.

    ``endpoint=None`` bursts every endpoint.  ``probability`` < 1 makes
    the burst flaky rather than solid; the draw comes from the
    injector's own rng stream so it replays exactly.
    """

    window: Window
    endpoint: str | None = None
    status: int = 500
    probability: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}")
        if not 400 <= self.status <= 599:
            raise ValueError(f"status must be 4xx/5xx, got {self.status}")

    def describe(self) -> str:
        scope = self.endpoint if self.endpoint is not None else "*"
        return (f"error-burst {scope} {self.window.describe()} "
                f"status={self.status} p={self.probability:g}")


@dataclass(frozen=True)
class LatencySpike(FaultSpec):
    """Responses slow down during ``window``.

    The shaped wire latency is ``sampled * factor + extra``; a large
    ``factor`` models a slow-drip response, a large ``extra`` models a
    stalled hop.
    """

    window: Window
    endpoint: str | None = None
    extra: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.extra < 0:
            raise ValueError(f"extra must be >= 0, got {self.extra}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")

    def describe(self) -> str:
        scope = self.endpoint if self.endpoint is not None else "*"
        return (f"latency-spike {scope} {self.window.describe()} "
                f"extra={self.extra:g} factor={self.factor:g}")


@dataclass(frozen=True)
class Partition(FaultSpec):
    """The network (or one endpoint's route) is down during ``window``."""

    window: Window
    endpoint: str | None = None

    def describe(self) -> str:
        scope = self.endpoint if self.endpoint is not None else "*"
        return f"partition {scope} {self.window.describe()}"


@dataclass(frozen=True)
class FlappingLink(FaultSpec):
    """Connectivity flaps during ``window``.

    Each ``period`` starts with ``duty_offline * period`` seconds of
    outage followed by connectivity; :meth:`offline_windows` expands
    the flapping into plain :class:`Partition`-shaped windows.
    """

    window: Window
    period: float
    duty_offline: float = 0.5
    endpoint: str | None = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if not 0.0 < self.duty_offline < 1.0:
            raise ValueError(
                f"duty_offline must be in (0, 1), got {self.duty_offline}")

    def offline_windows(self) -> list[Window]:
        """The train of outage windows this flapping link produces."""
        windows: list[Window] = []
        start = self.window.start
        while start < self.window.end:
            end = min(start + self.period * self.duty_offline, self.window.end)
            windows.append(Window(start, end))
            start += self.period
        return windows

    def active(self, endpoint: str, now: float) -> bool:
        """Offline phases of the duty cycle count as active."""
        if not self.window.contains(now):
            return False
        if self.endpoint is not None and self.endpoint != endpoint:
            return False
        phase = (now - self.window.start) % self.period
        return phase < self.period * self.duty_offline

    def describe(self) -> str:
        scope = self.endpoint if self.endpoint is not None else "*"
        return (f"flapping {scope} {self.window.describe()} "
                f"period={self.period:g} duty={self.duty_offline:g}")


@dataclass(frozen=True)
class PayloadCorruption(FaultSpec):
    """Response payloads are mangled on the wire during ``window``.

    The mangled payload stays JSON-serializable but loses the fields
    the service client requires, so the failure surfaces as a 502
    :class:`~repro.simnet.errors.RemoteServiceError` — retryable, like
    a real garbled proxy response.
    """

    window: Window
    endpoint: str | None = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}")

    def describe(self) -> str:
        scope = self.endpoint if self.endpoint is not None else "*"
        return (f"corruption {scope} {self.window.describe()} "
                f"p={self.probability:g}")


@dataclass(frozen=True)
class ClockSkew(FaultSpec):
    """A peer's clock runs ``offset`` seconds apart during ``window``.

    Consumed by :class:`~repro.chaos.inject.SkewedClock`; the transport
    itself ignores skew specs (the simulation has one true clock).
    """

    window: Window
    offset: float = 0.0

    def describe(self) -> str:
        return f"clock-skew {self.window.describe()} offset={self.offset:g}"


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, frozen set of fault specs plus the seed to replay them."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def of_type(self, spec_type: type) -> list[FaultSpec]:
        """Every spec of one class, in plan order."""
        return [spec for spec in self.specs if isinstance(spec, spec_type)]

    def offline_windows(self, endpoint: str | None = None) -> list[Window]:
        """All outage windows affecting ``endpoint`` (None = global only).

        Partitions scoped to a *different* endpoint are excluded;
        flapping links are expanded into their duty-cycle windows.
        """
        windows: list[Window] = []
        for spec in self.specs:
            scoped = getattr(spec, "endpoint", None)
            if scoped is not None and scoped != endpoint:
                continue
            if isinstance(spec, Partition):
                windows.append(spec.window)
            elif isinstance(spec, FlappingLink):
                windows.extend(spec.offline_windows())
        return sorted(windows, key=lambda window: (window.start, window.end))

    def skew_at(self, now: float) -> float:
        """Accumulated clock-skew offset active at time ``now``."""
        return sum(spec.offset for spec in self.of_type(ClockSkew)
                   if spec.window.contains(now))

    def injector(self, obs=None) -> "ChaosInjector":
        """Compile this plan into a live, seeded injector."""
        from repro.chaos.inject import ChaosInjector

        return ChaosInjector(self, obs=obs)

    def describe(self) -> str:
        """Stable multi-line description (safe to diff across runs)."""
        lines = [f"fault-plan seed={self.seed} specs={len(self.specs)}"]
        lines.extend(f"  - {spec.describe()}" for spec in self.specs)
        return "\n".join(lines)


def offline_transitions(windows: list[Window]) -> list[float]:
    """Flatten outage windows into :class:`ScriptedConnectivity` flips.

    Overlapping or touching windows are merged first; the result is the
    sorted transition list for a model that starts online.
    """
    merged: list[list[float]] = []
    for window in sorted(windows, key=lambda w: (w.start, w.end)):
        if merged and window.start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], window.end)
        else:
            merged.append([window.start, window.end])
    transitions: list[float] = []
    for start, end in merged:
        transitions.extend((start, end))
    return transitions
