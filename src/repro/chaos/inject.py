"""Live fault injection: the machinery a :class:`FaultPlan` arms.

:class:`ChaosInjector` is consulted by
:meth:`repro.simnet.transport.Transport._call` at four points —
partition check, error burst, latency shaping and payload corruption —
and keeps per-kind counts so scenarios can assert on exactly what was
injected.  Its randomness comes from a child rng derived from the
plan's seed, **separate** from the transport's latency rng: arming a
plan never perturbs the latency stream an unfaulted run would sample,
which is what keeps protections-on and protections-off runs of the
same scenario comparable.

Two further injection points live outside the transport:

* :class:`SkewedClock` — wraps a clock so a peer (e.g. a second writer
  in a sync scenario) observes skewed timestamps;
* :class:`FaultyStore` — wraps a :class:`KeyValueStore` so a *local*
  storage backend can fail on schedule too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chaos.plan import (
    ErrorBurst,
    FaultPlan,
    FaultSpec,
    FlappingLink,
    LatencySpike,
    Partition,
    PayloadCorruption,
    Window,
)
from repro.obs import names
from repro.simnet.errors import RemoteServiceError
from repro.stores.kvstore import KeyValueStore
from repro.util.clock import Clock
from repro.util.rng import SeededRng, derive_seed

#: Marker key the corruptor leaves in mangled payloads (handy in tests).
CORRUPTION_MARKER = "x-chaos-corrupted"


@dataclass
class InjectionStats:
    """How many faults of each kind actually fired."""

    errors: int = 0
    latency_spikes: int = 0
    partitions: int = 0
    corruptions: int = 0

    @property
    def total(self) -> int:
        """All injected faults, regardless of kind."""
        return (self.errors + self.latency_spikes + self.partitions
                + self.corruptions)


class ChaosInjector:
    """Consults a :class:`FaultPlan` on every transport call.

    Install on a transport with
    :meth:`repro.simnet.transport.Transport.install_injector` (or the
    :meth:`install` convenience).  All decision methods take the
    endpoint and the current simulated time so the injector itself
    stays stateless apart from counters and its private rng stream.
    """

    def __init__(self, plan: FaultPlan, obs=None) -> None:
        self.plan = plan
        self.stats = InjectionStats()
        self._rng = SeededRng(derive_seed(plan.seed, "chaos-inject"))
        self._metric_faults = None
        if obs is not None and getattr(obs, "enabled", False):
            self.bind_metrics(obs.metrics)

    def bind_metrics(self, registry) -> None:
        """Mirror injected-fault counts into a MetricsRegistry (by kind)."""
        if self._metric_faults is None:
            self._metric_faults = registry.counter(
                names.CHAOS_FAULTS_INJECTED_TOTAL,
                "Faults injected by the chaos harness, by kind.")

    def install(self, transport) -> "ChaosInjector":
        """Arm ``transport`` with this injector; returns self."""
        transport.install_injector(self)
        return self

    def _count(self, field_name: str, kind: str) -> None:
        setattr(self.stats, field_name, getattr(self.stats, field_name) + 1)
        if self._metric_faults is not None:
            self._metric_faults.inc(kind=kind)

    def _drew(self, probability: float) -> bool:
        # probability == 1.0 skips the draw so solid faults do not
        # advance the rng stream (keeps flaky faults independent).
        return probability >= 1.0 or self._rng.bernoulli(probability)

    # -- decision points (called by Transport._call) -------------------------

    def offline(self, endpoint: str, now: float) -> bool:
        """Whether a partition or flapping outage blocks this call."""
        for spec in self.plan.specs:
            if isinstance(spec, (Partition, FlappingLink)) and spec.active(
                    endpoint, now):
                self._count("partitions", "partition")
                return True
        return False

    def error_status(self, endpoint: str, now: float) -> int | None:
        """The injected error status for this call, or None."""
        for spec in self.plan.specs:
            if isinstance(spec, ErrorBurst) and spec.active(endpoint, now):
                if self._drew(spec.probability):
                    self._count("errors", "error")
                    return spec.status
        return None

    def shape_latency(self, endpoint: str, now: float, seconds: float) -> float:
        """Sampled wire latency after any active spikes are applied."""
        shaped = seconds
        spiked = False
        for spec in self.plan.specs:
            if isinstance(spec, LatencySpike) and spec.active(endpoint, now):
                shaped = shaped * spec.factor + spec.extra
                spiked = True
        if spiked:
            self._count("latency_spikes", "latency")
        return shaped

    def corrupt(self, endpoint: str, now: float, payload: dict) -> dict:
        """The (possibly mangled) response payload for this call."""
        for spec in self.plan.specs:
            if isinstance(spec, PayloadCorruption) and spec.active(
                    endpoint, now):
                if self._drew(spec.probability):
                    self._count("corruptions", "corruption")
                    return {CORRUPTION_MARKER: True, "endpoint": endpoint}
        return payload


class SkewedClock(Clock):
    """A clock that reads ``offset`` seconds apart from its inner clock.

    Models one peer's skewed view of time (e.g. the writer on another
    machine in a sync scenario).  Charges delegate to the inner clock —
    skew shifts what a peer *observes*, not how fast simulated time
    advances.
    """

    def __init__(self, inner: Clock, offset: float) -> None:
        self.inner = inner
        self.offset = offset

    def now(self) -> float:
        """The skewed observation of the shared simulated time."""
        return self.inner.now() + self.offset

    def charge(self, seconds: float) -> None:
        """Spend time on the shared (inner) clock."""
        self.inner.charge(seconds)


class StorageFaultError(RemoteServiceError):
    """A storage backend failed on schedule (503 analogue).

    Derives from :class:`~repro.simnet.errors.RemoteServiceError` so
    existing retry/queue paths classify it as a transient network-side
    failure.
    """

    def __init__(self, endpoint: str) -> None:
        super().__init__(endpoint, "injected storage fault", status=503)


class FaultyStore(KeyValueStore):
    """A :class:`KeyValueStore` that fails during scheduled windows.

    The storage-backend injection point: wraps any store and raises
    :class:`StorageFaultError` on every operation whose time falls in
    one of ``fault_windows`` on ``clock``.
    """

    def __init__(self, inner: KeyValueStore, clock: Clock,
                 fault_windows: list[Window],
                 name: str = "faulty-store") -> None:
        self.inner = inner
        self.clock = clock
        self.fault_windows = list(fault_windows)
        self.name = name
        self.faults_raised = 0

    def _gate(self) -> None:
        now = self.clock.now()
        for window in self.fault_windows:
            if window.contains(now):
                self.faults_raised += 1
                raise StorageFaultError(self.name)

    def put(self, key: str, value: object) -> None:
        """Store ``value`` under ``key`` (unless a fault window is active)."""
        self._gate()
        self.inner.put(key, value)

    def get(self, key: str, *args, **kwargs) -> object:
        """Read ``key`` (unless a fault window is active).

        Forwards ``default`` untouched so the inner store's
        missing-key semantics (raise vs. default) are preserved.
        """
        self._gate()
        return self.inner.get(key, *args, **kwargs)

    def delete(self, key: str) -> bool:
        """Delete ``key`` (unless a fault window is active)."""
        self._gate()
        return self.inner.delete(key)

    def keys(self, prefix: str = "") -> list[str]:
        """List keys (unless a fault window is active)."""
        self._gate()
        return self.inner.keys(prefix)


class SqliteWriteBurst:
    """A mid-transaction write fault for the SQLite triple backend.

    Pass as ``fault_hook`` to
    :class:`~repro.stores.backends.sqlite.SqliteTripleStore`: the
    backend consults the hook *between chunks of one open batch
    transaction*.  Each consultation charges ``chunk_cost`` simulated
    seconds on ``clock`` and raises :class:`StorageFaultError` if time
    has entered one of ``fault_windows`` — so the failure lands with
    earlier chunks already executed, exactly where a partial-write bug
    would surface.  The backend's contract under this fault is total
    rollback: no triple from the failed batch (and no interned term)
    may ever become visible, which
    ``tests/chaos/test_sqlite_faults.py`` asserts.
    """

    def __init__(self, clock: Clock, fault_windows: list[Window],
                 chunk_cost: float = 0.01,
                 name: str = "sqlite-shard") -> None:
        self.clock = clock
        self.fault_windows = list(fault_windows)
        self.chunk_cost = chunk_cost
        self.name = name
        self.faults_raised = 0
        self.chunks_seen = 0

    def __call__(self, chunk_index: int) -> None:
        """Charge one chunk's write time, then fail if inside a window."""
        self.chunks_seen += 1
        self.clock.charge(self.chunk_cost)
        now = self.clock.now()
        for window in self.fault_windows:
            if window.contains(now):
                self.faults_raised += 1
                raise StorageFaultError(self.name)


def _specs_summary(specs: tuple[FaultSpec, ...]) -> str:
    """Short stable summary used by scenario descriptions."""
    return ", ".join(spec.describe() for spec in specs) if specs else "none"
