"""Machine-checked resilience invariants over one chaos scenario run.

A scenario does not "look OK" — it produces a :class:`ScenarioRun`
evidence ledger (every logical call with its timing and deadline, every
breaker, every stale serve, the expected vs. observed replicated state)
and :func:`check_all` grades that ledger against five invariants:

* **deadline-honored** — no call finished more than one transport step
  past its end-to-end deadline.  Clamped timeouts and deadline-aware
  queue waits make the overshoot exactly zero in the protections-on
  harness; a retry loop that sleeps through the budget (the
  protections-off control) fails this check by construction.
* **no-lost-updates** — after partitions heal and :meth:`sync` runs,
  the remote store holds the last locally-written value for every key.
* **breaker-conformance** — every recorded circuit-breaker transition
  is an edge of :data:`~repro.core.circuitbreaker.LEGAL_TRANSITIONS`.
* **bounded-staleness** — every degraded (stale) serve's age is within
  ``ttl + stale_grace``.
* **counter-consistency** — every issued request is accounted for:
  ``requests == successes + degraded + failures + sheds``.

Reports are **byte-stable**: no wall-clock content, floats rendered
with a fixed ``%.6f`` format, and every number derived from the
simulation clock and the scenario's seeded rng — replaying the same
scenario with the same seed renders the identical report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.circuitbreaker import LEGAL_TRANSITIONS, CircuitBreaker

#: Float-comparison tolerance for the timing invariants.
EPSILON = 1e-9

#: The call-outcome kinds a scenario may record.
KINDS = ("success", "degraded", "failure", "shed")


@dataclass(frozen=True)
class CallOutcome:
    """One logical call, as the scenario's caller experienced it."""

    kind: str  # one of KINDS
    started: float
    ended: float
    deadline_expires: float | None = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")


@dataclass
class ScenarioRun:
    """The evidence ledger one scenario fills in while it runs.

    ``requests`` is incremented at *issue* time (:meth:`issue`) and the
    outcome appended at completion (:meth:`record`) — keeping the two
    separate is what gives the counter-consistency invariant teeth: a
    dropped or double-counted call shows up as an imbalance instead of
    silently vanishing.
    """

    scenario: str
    seed: int
    protections: bool
    #: Largest single indivisible wait a call may experience (the
    #: allowed deadline overshoot).
    max_transport_step: float = 0.0
    requests: int = 0
    calls: list[CallOutcome] = field(default_factory=list)
    breakers: list[CircuitBreaker] = field(default_factory=list)
    #: Ages of degraded (stale) serves, against ``staleness_bound``.
    stale_ages: list[float] = field(default_factory=list)
    staleness_bound: float | None = None
    #: key -> last locally written value (what sync must converge to).
    expected_state: dict[str, object] = field(default_factory=dict)
    #: key -> value actually read back from the remote store.
    remote_state: dict[str, object] = field(default_factory=dict)
    #: Injected-fault counts by kind (from InjectionStats).
    injected: dict[str, int] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def issue(self) -> None:
        """Count one logical request at issue time."""
        self.requests += 1

    def record(self, kind: str, started: float, ended: float,
               deadline_expires: float | None = None,
               detail: str = "") -> None:
        """Record the outcome of one issued request."""
        self.calls.append(
            CallOutcome(kind, started, ended, deadline_expires, detail))

    def count(self, kind: str) -> int:
        """How many recorded calls ended with ``kind``."""
        return sum(1 for call in self.calls if call.kind == kind)

    def note(self, text: str) -> None:
        """Attach one stable free-form line to the report."""
        self.notes.append(text)


@dataclass(frozen=True)
class InvariantResult:
    """One invariant's verdict over a scenario run.

    ``applicable=False`` marks an invariant the scenario exercised no
    evidence for (e.g. no replicated state in a latency scenario); it
    renders as SKIP and never fails the report.
    """

    name: str
    passed: bool
    applicable: bool
    detail: str

    @property
    def verdict(self) -> str:
        if not self.applicable:
            return "SKIP"
        return "PASS" if self.passed else "FAIL"


@dataclass
class InvariantReport:
    """Every invariant's verdict for one scenario run, renderable."""

    scenario: str
    seed: int
    protections: bool
    results: list[InvariantResult]
    counts: dict[str, int]
    injected: dict[str, int]
    notes: list[str]

    @property
    def passed(self) -> bool:
        """True when no *applicable* invariant failed."""
        return all(result.passed for result in self.results
                   if result.applicable)

    def failures(self) -> list[InvariantResult]:
        """The applicable invariants that failed."""
        return [result for result in self.results
                if result.applicable and not result.passed]

    def render(self) -> str:
        """Byte-stable multi-line report (same seed => same bytes)."""
        protections = "on" if self.protections else "off"
        lines = [
            f"chaos scenario={self.scenario} seed={self.seed} "
            f"protections={protections}",
            ("requests={requests} successes={success} degraded={degraded} "
             "failures={failure} sheds={shed}").format(**self.counts),
            ("injected: errors={errors} latency={latency} "
             "partitions={partitions} corruptions={corruptions}").format(
                **self.injected),
        ]
        lines.extend(f"note: {note}" for note in self.notes)
        for result in self.results:
            dotted = f"invariant {result.name} ".ljust(40, ".")
            lines.append(f"{dotted} {result.verdict} {result.detail}")
        lines.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


# -- the five invariants ------------------------------------------------------

def check_deadline_honored(run: ScenarioRun) -> InvariantResult:
    """No call finished more than one transport step past its deadline."""
    deadlined = [call for call in run.calls
                 if call.deadline_expires is not None]
    if not deadlined:
        return InvariantResult(
            "deadline-honored", True, False,
            "no deadlined calls in this scenario")
    overshoot = max(call.ended - call.deadline_expires for call in deadlined)
    allowed = run.max_transport_step
    passed = overshoot <= allowed + EPSILON
    return InvariantResult(
        "deadline-honored", passed, True,
        f"max overshoot {overshoot:.6f}s vs allowed step {allowed:.6f}s "
        f"over {len(deadlined)} deadlined call(s)")


def check_no_lost_updates(run: ScenarioRun) -> InvariantResult:
    """The remote store converged to the last local write for every key."""
    if not run.expected_state:
        return InvariantResult(
            "no-lost-updates", True, False,
            "no replicated state in this scenario")
    lost = sorted(
        key for key, value in run.expected_state.items()
        if key not in run.remote_state or run.remote_state[key] != value)
    extra = sorted(set(run.remote_state) - set(run.expected_state))
    passed = not lost and not extra
    if passed:
        detail = (f"{len(run.expected_state)} key(s) converged after "
                  f"offline windows")
    else:
        detail = (f"lost/stale keys: {lost}; unexpected keys: {extra} "
                  f"(expected {len(run.expected_state)} key(s))")
    return InvariantResult("no-lost-updates", passed, True, detail)


def check_breaker_conformance(run: ScenarioRun) -> InvariantResult:
    """Every breaker transition is an edge of the legal state machine."""
    if not run.breakers:
        return InvariantResult(
            "breaker-conformance", True, False,
            "no circuit breakers in this scenario")
    transitions = 0
    illegal: list[str] = []
    for breaker in run.breakers:
        for transition in breaker.transitions:
            transitions += 1
            edge = (transition.source, transition.target)
            if edge not in LEGAL_TRANSITIONS:
                illegal.append(
                    f"{breaker.service}:{transition.source.value}"
                    f"->{transition.target.value}@{transition.at:.6f}")
    passed = not illegal
    detail = (f"{transitions} transition(s) across {len(run.breakers)} "
              f"breaker(s), all legal" if passed
              else f"illegal transition(s): {sorted(illegal)}")
    return InvariantResult("breaker-conformance", passed, True, detail)


def check_bounded_staleness(run: ScenarioRun) -> InvariantResult:
    """Every degraded serve's age is within ``ttl + stale_grace``."""
    if run.staleness_bound is None or not run.stale_ages:
        return InvariantResult(
            "bounded-staleness", True, False,
            "no stale serves in this scenario")
    worst = max(run.stale_ages)
    passed = worst <= run.staleness_bound + EPSILON
    return InvariantResult(
        "bounded-staleness", passed, True,
        f"max stale age {worst:.6f}s vs bound {run.staleness_bound:.6f}s "
        f"over {len(run.stale_ages)} stale serve(s)")


def check_counter_consistency(run: ScenarioRun) -> InvariantResult:
    """Every issued request is accounted for exactly once."""
    if run.requests == 0:
        return InvariantResult(
            "counter-consistency", True, False,
            "no requests issued in this scenario")
    successes = run.count("success")
    degraded = run.count("degraded")
    failures = run.count("failure")
    sheds = run.count("shed")
    accounted = successes + degraded + failures + sheds
    passed = accounted == run.requests
    return InvariantResult(
        "counter-consistency", passed, True,
        f"{run.requests} == {successes}+{degraded}+{failures}+{sheds}"
        if passed else
        f"{run.requests} issued but {accounted} accounted "
        f"({successes}+{degraded}+{failures}+{sheds})")


#: The full battery, in report order.
ALL_CHECKS = (
    check_deadline_honored,
    check_no_lost_updates,
    check_breaker_conformance,
    check_bounded_staleness,
    check_counter_consistency,
)


def check_all(run: ScenarioRun) -> InvariantReport:
    """Grade one scenario run against every invariant."""
    counts = {
        "requests": run.requests,
        "success": run.count("success"),
        "degraded": run.count("degraded"),
        "failure": run.count("failure"),
        "shed": run.count("shed"),
    }
    injected = {
        "errors": run.injected.get("errors", 0),
        "latency": run.injected.get("latency_spikes", 0),
        "partitions": run.injected.get("partitions", 0),
        "corruptions": run.injected.get("corruptions", 0),
    }
    return InvariantReport(
        scenario=run.scenario,
        seed=run.seed,
        protections=run.protections,
        results=[check(run) for check in ALL_CHECKS],
        counts=counts,
        injected=injected,
        notes=list(run.notes),
    )
