"""Deterministic chaos harness for the Rich SDK and the PKB.

The paper's robustness claims (failover, redundancy, caching, offline
sync) are only as good as the fault schedules they are tested against.
This package provides:

* :mod:`repro.chaos.plan` — declarative, composable fault specs
  (error bursts, latency spikes, partitions, flapping links, payload
  corruption, clock skew) compiled into a seeded :class:`FaultPlan`;
* :mod:`repro.chaos.inject` — the :class:`ChaosInjector` that the
  simulated transport consults on every call, plus storage and clock
  fault wrappers;
* :mod:`repro.chaos.invariants` — machine-checked resilience
  invariants (no lost updates, breaker conformance, bounded staleness,
  deadline honored, counter consistency) rendered as byte-stable
  reports;
* :mod:`repro.chaos.scenarios` — named end-to-end scenarios combining
  all of the above, runnable via ``python -m repro.chaos``.

Everything runs on the simulation clock and a :class:`SeededRng`, so a
scenario replayed with the same seed yields a byte-identical report.
"""

from repro.chaos.inject import (
    ChaosInjector,
    FaultyStore,
    SkewedClock,
    SqliteWriteBurst,
    StorageFaultError,
)
from repro.chaos.invariants import InvariantReport, InvariantResult
from repro.chaos.plan import (
    ClockSkew,
    ErrorBurst,
    FaultPlan,
    FlappingLink,
    LatencySpike,
    Partition,
    PayloadCorruption,
    Window,
)
from repro.chaos.scenarios import (
    SCENARIOS,
    ScenarioResult,
    run_all,
    run_scenario,
)

__all__ = [
    "ChaosInjector",
    "ClockSkew",
    "ErrorBurst",
    "FaultPlan",
    "FaultyStore",
    "FlappingLink",
    "InvariantReport",
    "InvariantResult",
    "LatencySpike",
    "Partition",
    "PayloadCorruption",
    "SCENARIOS",
    "ScenarioResult",
    "SkewedClock",
    "SqliteWriteBurst",
    "StorageFaultError",
    "Window",
    "run_all",
    "run_scenario",
]
