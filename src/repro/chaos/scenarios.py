"""Named end-to-end chaos scenarios, runnable via ``python -m repro.chaos``.

Each scenario builds a fresh simulated world, arms a declarative
:class:`~repro.chaos.plan.FaultPlan` on its transport, drives the Rich
SDK / PKB stack through the fault schedule, and grades the evidence
ledger with :func:`repro.chaos.invariants.check_all`.  Everything runs
on a :class:`ManualClock` and seeded rngs, so the same ``(name, seed,
protections)`` triple renders a byte-identical report.

``protections=True`` drives the stack the way a production caller
should: end-to-end :class:`~repro.util.deadline.Deadline`s, deadline-
aware retry/admission, serve-stale-on-error degradation, circuit
breakers and offline-sync queues.  ``protections=False`` is the
**control**: the same fault schedule against a naive caller — retry
loops that sleep through the budget and a write-through store that
swallows offline errors — which demonstrably *fails* the deadline and
lost-update invariants.  The control failing is part of the harness's
contract: it proves the invariants can catch the bugs the protections
exist to prevent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.stats import percentile
from repro.chaos.inject import ChaosInjector, SkewedClock
from repro.chaos.invariants import InvariantReport, ScenarioRun, check_all
from repro.chaos.plan import (
    ClockSkew,
    ErrorBurst,
    FaultPlan,
    FlappingLink,
    LatencySpike,
    Partition,
    PayloadCorruption,
    Window,
)
from repro.core.admission import (
    AdmissionController,
    AdmissionLimit,
    AdmissionRejectedError,
)
from repro.core.caching import ServiceCache, cache_key
from repro.core.circuitbreaker import CircuitBreakerRegistry, CircuitOpenError
from repro.core.invoker import RichClient
from repro.core.retry import (
    FailoverInvoker,
    RetriesExhaustedError,
    RetryPolicy,
    invoke_with_retry,
)
from repro.crypto.cipher import StreamCipher
from repro.kb.secure import SecureRemoteStore
from repro.kb.sync import OfflineSyncStore
from repro.obs import names
from repro.services.catalog import build_world
from repro.simnet.errors import NetworkError
from repro.stores.kvstore import InMemoryKeyValueStore
from repro.util.deadline import Deadline
from repro.util.errors import NotFoundError

#: 32-byte key for the scenarios' secure remote stores (fixed: the
#: harness must be deterministic, not secret).
_CIPHER_KEY = b"chaos-harness-key-0123456789abcd"

_TEXTS = (
    "IBM shares rose sharply after the announcement.",
    "Globex results were excellent this quarter.",
    "Initech stumbled badly on weak guidance.",
    "Umbrella Corporation expanded into new markets.",
    "Acme Corporation beat every forecast.",
)


@dataclass
class ScenarioResult:
    """One scenario's graded report plus benchmark-friendly numbers."""

    name: str
    report: InvariantReport
    metrics: dict[str, float]

    @property
    def passed(self) -> bool:
        return self.report.passed

    def render(self) -> str:
        """The report's byte-stable text."""
        return self.report.render()


def _advance_to(clock, when: float) -> None:
    """Charge the clock forward to ``when`` (no-op if already past)."""
    delta = when - clock.now()
    if delta > 0:
        clock.charge(delta)


def _scenario_span(client: RichClient, run: ScenarioRun):
    """The ``chaos.scenario`` span wrapping one scenario's action."""
    return client.obs.tracer.span(
        names.SPAN_CHAOS_SCENARIO,
        {"scenario": run.scenario, "protections": run.protections})


def _finish(run: ScenarioRun, injector: ChaosInjector) -> ScenarioRun:
    """Copy the injector's fault counts into the run ledger."""
    stats = injector.stats
    run.injected = {
        "errors": stats.errors,
        "latency_spikes": stats.latency_spikes,
        "partitions": stats.partitions,
        "corruptions": stats.corruptions,
    }
    return run

def _read_remote(run: ScenarioRun, secure: SecureRemoteStore) -> None:
    """Read back every expected key from the remote store (post-heal)."""
    for key in sorted(run.expected_state):
        try:
            run.remote_state[key] = secure.get(key)
        except NotFoundError:  # repro: ignore[RA002] — a missing key IS the evidence the lost-update check needs
            pass


def _metrics_from(run: ScenarioRun) -> dict[str, float]:
    """Benchmark-friendly aggregates over the run's call ledger."""
    durations = sorted(call.ended - call.started for call in run.calls)
    requests = max(1, run.requests)
    served = run.count("success") + run.count("degraded")
    return {
        "requests": float(run.requests),
        "successes": float(run.count("success")),
        "degraded": float(run.count("degraded")),
        "failures": float(run.count("failure")),
        "sheds": float(run.count("shed")),
        "success_rate": served / requests,
        "degraded_fraction": run.count("degraded") / requests,
        "p99_latency": percentile(durations, 0.99) if durations else 0.0,
        "faults_injected": float(sum(run.injected.values())),
    }


class _NaiveWriteThroughStore:
    """The protections-off control store: swallows offline write errors.

    Writes locally, then writes through to the remote store — and when
    the network is down it just *drops* the remote write instead of
    queueing it.  This is the bug :class:`OfflineSyncStore` exists to
    prevent, kept here so the no-lost-updates invariant has a positive
    control to catch.
    """

    def __init__(self, remote: SecureRemoteStore) -> None:
        self.remote = remote
        self.local = InMemoryKeyValueStore()
        self.dropped = 0

    def put(self, key: str, value: object) -> None:
        self.local.put(key, value)
        try:
            self.remote.put(key, value)
        except NetworkError:
            self.dropped += 1  # the lost update, silently

    def get(self, key: str) -> object:
        return self.local.get(key)


# -- scenarios ---------------------------------------------------------------

def scenario_error_burst(seed: int, protections: bool) -> ScenarioRun:
    """The premium NLU provider answers 500 for a sustained window.

    Protections on: deadlined calls degrade to in-grace stale cache
    entries, and failover walks to a healthy sibling within budget.
    Protections off: a patient retry loop sleeps far past the caller's
    2-second budget — the deadline invariant catches the overshoot.
    """
    plan = FaultPlan(
        (ErrorBurst(Window(5.0, 60.0), endpoint="lexica-prime", status=500),),
        seed=seed)
    world = build_world(seed=seed, corpus_size=12)
    clock = world.clock
    injector = plan.injector().install(world.transport)
    run = ScenarioRun("error_burst", seed, protections,
                      max_transport_step=1.0)
    budget = 2.0

    if protections:
        cache = ServiceCache(capacity=64, ttl=3.0, clock=clock,
                             stale_grace=30.0)
        run.staleness_bound = 33.0
        client = RichClient(
            world.registry, cache=cache, serve_stale_on_error=True,
            failover=FailoverInvoker(
                default_policy=RetryPolicy(max_attempts=2, backoff=0.1),
                clock=clock))
        try:
            with _scenario_span(client, run):
                for text in _TEXTS[:3]:  # warm the cache pre-burst
                    run.issue()
                    started = clock.now()
                    client.invoke("lexica-prime", "analyze", {"text": text})
                    run.record("success", started, clock.now())
                _advance_to(clock, 5.5)  # inside the burst; entries stale
                for text in _TEXTS[:3]:
                    run.issue()
                    started = clock.now()
                    deadline = Deadline.after(clock, budget)
                    result = client.invoke(
                        "lexica-prime", "analyze", {"text": text},
                        deadline=deadline)
                    kind = "degraded" if result.degraded else "success"
                    if result.degraded and result.stale_age is not None:
                        run.stale_ages.append(result.stale_age)
                    run.record(kind, started, clock.now(),
                               deadline_expires=deadline.expires_at)
                for text in _TEXTS[3:]:  # failover reaches a healthy sibling
                    run.issue()
                    started = clock.now()
                    deadline = Deadline.after(clock, budget)
                    result = client.invoke_with_failover(
                        "nlu", "analyze", {"text": text}, deadline=deadline)
                    run.record("degraded" if result.degraded else "success",
                               started, clock.now(),
                               deadline_expires=deadline.expires_at)
        finally:
            client.close()
        return _finish(run, injector)

    client = RichClient(world.registry)
    policy = RetryPolicy(max_attempts=3, backoff=4.0)
    try:
        with _scenario_span(client, run):
            _advance_to(clock, 5.5)
            for text in _TEXTS[:3]:
                run.issue()
                started = clock.now()
                try:
                    invoke_with_retry(
                        lambda text=text: client.invoke(
                            "lexica-prime", "analyze", {"text": text},
                            use_cache=False),
                        policy, clock=clock, service="lexica-prime")
                    kind = "success"
                except RetriesExhaustedError:
                    kind = "failure"
                # The caller HAD a 2-second SLA; this stack ignored it.
                run.record(kind, started, clock.now(),
                           deadline_expires=started + budget)
    finally:
        client.close()
    return _finish(run, injector)


def scenario_latency_spike(seed: int, protections: bool) -> ScenarioRun:
    """One provider's responses stall by 2.5 simulated seconds.

    Protections on: the wire timeout is clamped to the 1-second
    deadline, so the call is cut at exactly the budget and answered
    from grace-window cache.  Protections off: the caller rides out the
    full stalled response, overshooting the budget.
    """
    plan = FaultPlan(
        (LatencySpike(Window(2.0, 40.0), endpoint="glotta", extra=2.5),),
        seed=seed)
    world = build_world(seed=seed, corpus_size=12)
    clock = world.clock
    injector = plan.injector().install(world.transport)
    run = ScenarioRun("latency_spike", seed, protections,
                      max_transport_step=1.0)
    budget = 1.0

    if protections:
        cache = ServiceCache(capacity=64, ttl=1.0, clock=clock,
                             stale_grace=20.0)
        run.staleness_bound = 21.0
        client = RichClient(world.registry, cache=cache,
                            serve_stale_on_error=True)
    else:
        client = RichClient(world.registry)
    try:
        with _scenario_span(client, run):
            for text in _TEXTS[:2]:  # warm before the spike
                run.issue()
                started = clock.now()
                client.invoke("glotta", "analyze", {"text": text})
                run.record("success", started, clock.now())
            _advance_to(clock, 3.0)  # inside the spike; entries stale
            for text in _TEXTS[:2]:
                run.issue()
                started = clock.now()
                if protections:
                    deadline = Deadline.after(clock, budget)
                    result = client.invoke("glotta", "analyze",
                                           {"text": text}, deadline=deadline)
                    kind = "degraded" if result.degraded else "success"
                    if result.degraded and result.stale_age is not None:
                        run.stale_ages.append(result.stale_age)
                else:
                    client.invoke("glotta", "analyze", {"text": text},
                                  use_cache=False)
                    kind = "success"  # a slow success is still a success...
                run.record(kind, started, clock.now(),
                           deadline_expires=started + budget)
            # An unspiked provider stays fast either way.
            run.issue()
            started = clock.now()
            client.invoke("lexica-prime", "analyze", {"text": _TEXTS[4]},
                          use_cache=False)
            run.record("success", started, clock.now(),
                       deadline_expires=started + budget)
    finally:
        client.close()
    return _finish(run, injector)


def scenario_partition_sync(seed: int, protections: bool) -> ScenarioRun:
    """A full network partition while the PKB keeps writing.

    Protections on: :class:`OfflineSyncStore` queues the writes and
    replays them after the partition heals — no update is lost.
    Protections off: the naive write-through store silently drops the
    offline writes, and the no-lost-updates invariant catches it.
    """
    plan = FaultPlan((Partition(Window(2.0, 6.0)),), seed=seed)
    world = build_world(seed=seed, corpus_size=12)
    clock = world.clock
    injector = plan.injector().install(world.transport)
    run = ScenarioRun("partition_sync", seed, protections)
    client = RichClient(world.registry)
    secure = SecureRemoteStore(client, "store-standard",
                               StreamCipher(_CIPHER_KEY))
    try:
        with _scenario_span(client, run):
            if protections:
                store = OfflineSyncStore(remote=secure)
                run.issue()
                started = clock.now()
                store.put("alpha", {"v": 1})  # online: pushed immediately
                run.record("success", started, clock.now())
                _advance_to(clock, 2.5)  # partitioned
                for key, value in (("alpha", {"v": 2}), ("beta", {"v": 1})):
                    run.issue()
                    started = clock.now()
                    store.put(key, value)  # local write + queued push
                    run.record("success", started, clock.now(),
                               detail="queued offline")
                run.issue()
                started = clock.now()
                assert store.get("alpha") == {"v": 2}  # local-first read
                run.record("success", started, clock.now())
                _advance_to(clock, 4.0)  # still partitioned
                run.issue()
                started = clock.now()
                if store.sync() == 0:  # connectivity still down
                    run.record("failure", started, clock.now(),
                               detail="sync attempt while partitioned")
                else:
                    run.record("success", started, clock.now())
                _advance_to(clock, 6.5)  # healed
                run.issue()
                started = clock.now()
                applied = store.sync()
                run.record("success", started, clock.now())
                run.note(f"sync applied={applied} "
                         f"pending={store.pending_count}")
                run.expected_state = {"alpha": {"v": 2}, "beta": {"v": 1}}
            else:
                store = _NaiveWriteThroughStore(secure)
                run.issue()
                started = clock.now()
                store.put("alpha", {"v": 1})
                run.record("success", started, clock.now())
                _advance_to(clock, 2.5)
                for key, value in (("alpha", {"v": 2}), ("beta", {"v": 1})):
                    run.issue()
                    started = clock.now()
                    store.put(key, value)  # remote write silently dropped
                    run.record("success", started, clock.now(),
                               detail="write-through dropped offline")
                _advance_to(clock, 6.5)
                run.note(f"naive store dropped {store.dropped} "
                         f"remote write(s)")
                run.expected_state = {"alpha": {"v": 2}, "beta": {"v": 1}}
            _read_remote(run, secure)
    finally:
        client.close()
    return _finish(run, injector)


def scenario_flapping_link(seed: int, protections: bool) -> ScenarioRun:
    """Connectivity flaps on a 2-second duty cycle for 8 seconds.

    Writes land in both online and offline phases, with sync attempts
    interleaved (including one mid-outage that must fail cleanly and
    keep its queue).  Convergence across *multiple* short outages is
    exactly what distinguishes a real offline queue from a lucky one.
    """
    plan = FaultPlan(
        (FlappingLink(Window(1.0, 9.0), period=2.0, duty_offline=0.5),),
        seed=seed)
    world = build_world(seed=seed, corpus_size=12)
    clock = world.clock
    injector = plan.injector().install(world.transport)
    run = ScenarioRun("flapping_link", seed, protections)
    client = RichClient(world.registry)
    secure = SecureRemoteStore(client, "store-standard",
                               StreamCipher(_CIPHER_KEY))

    if protections:
        store = OfflineSyncStore(remote=secure)
    else:
        store = _NaiveWriteThroughStore(secure)

    def write(key: str, value: object, detail: str = "") -> None:
        run.issue()
        started = clock.now()
        store.put(key, value)
        run.record("success", started, clock.now(), detail=detail)

    def try_sync() -> None:
        if not protections:
            return
        run.issue()
        started = clock.now()
        if store.sync() == 0 and store.pending_count:
            run.record("failure", started, clock.now(),
                       detail="sync attempt while link down")
        else:
            run.record("success", started, clock.now())

    try:
        with _scenario_span(client, run):
            _advance_to(clock, 0.3)   # online
            write("a", {"v": 1})
            _advance_to(clock, 1.2)   # offline phase 1
            write("a", {"v": 2}, detail="offline")
            write("b", {"v": 1}, detail="offline")
            _advance_to(clock, 2.2)   # online phase
            try_sync()
            _advance_to(clock, 3.3)   # offline phase 2
            write("b", {"v": 2}, detail="offline")
            try_sync()                # must fail cleanly, keep the queue
            _advance_to(clock, 4.2)   # online
            try_sync()
            _advance_to(clock, 5.4)   # offline phase 3
            write("c", {"v": 3}, detail="offline")
            _advance_to(clock, 6.3)   # online
            write("d", {"v": 4})
            _advance_to(clock, 8.4)   # flapping over
            try_sync()
            run.expected_state = {"a": {"v": 2}, "b": {"v": 2},
                                  "c": {"v": 3}, "d": {"v": 4}}
            if not protections:
                run.note(f"naive store dropped {store.dropped} "
                         f"remote write(s)")
            _read_remote(run, secure)
    finally:
        client.close()
    return _finish(run, injector)


def scenario_corrupt_payload(seed: int, protections: bool) -> ScenarioRun:
    """Responses from the budget NLU provider are mangled on the wire.

    The garbled payload surfaces as a retryable 502.  Protections on:
    previously-seen requests degrade to in-grace cache entries; a
    never-seen request still fails (there is nothing to degrade to) —
    honest degradation, not invention.
    """
    plan = FaultPlan(
        (PayloadCorruption(Window(2.0, 30.0), endpoint="wordsmith-lite"),),
        seed=seed)
    world = build_world(seed=seed, corpus_size=12)
    clock = world.clock
    injector = plan.injector().install(world.transport)
    run = ScenarioRun("corrupt_payload", seed, protections,
                      max_transport_step=1.5)
    budget = 1.5

    if protections:
        cache = ServiceCache(capacity=64, ttl=1.5, clock=clock,
                             stale_grace=20.0)
        run.staleness_bound = 21.5
        client = RichClient(world.registry, cache=cache,
                            serve_stale_on_error=True)
    else:
        client = RichClient(world.registry)
    try:
        with _scenario_span(client, run):
            for text in _TEXTS[:2]:  # warm before corruption starts
                run.issue()
                started = clock.now()
                client.invoke("wordsmith-lite", "analyze", {"text": text})
                run.record("success", started, clock.now())
            _advance_to(clock, 2.5)  # corruption window active
            for text in _TEXTS[:2]:
                run.issue()
                started = clock.now()
                deadline = (Deadline.after(clock, budget)
                            if protections else None)
                try:
                    result = client.invoke(
                        "wordsmith-lite", "analyze", {"text": text},
                        deadline=deadline, use_cache=protections)
                    kind = "degraded" if result.degraded else "success"
                    if result.degraded and result.stale_age is not None:
                        run.stale_ages.append(result.stale_age)
                except NetworkError:
                    kind = "failure"
                run.record(kind, started, clock.now(),
                           deadline_expires=(deadline.expires_at
                                             if deadline else None))
            # A request never seen before has no stale entry to fall
            # back on: it must fail, not fabricate an answer.
            run.issue()
            started = clock.now()
            deadline = Deadline.after(clock, budget) if protections else None
            try:
                client.invoke("wordsmith-lite", "analyze",
                              {"text": _TEXTS[4]}, deadline=deadline,
                              use_cache=protections)
                kind = "success"
            except NetworkError:
                kind = "failure"
            run.record(kind, started, clock.now(),
                       deadline_expires=(deadline.expires_at
                                         if deadline else None))
    finally:
        client.close()
    return _finish(run, injector)


def scenario_burst_partition(seed: int, protections: bool) -> ScenarioRun:
    """An error burst rolling straight into a partition (the worst case).

    Protections on: the circuit breaker trips during the burst, its
    half-open probe fails into the partition (a legal re-open), and the
    caller rides on grace-window cache until the probe finally lands —
    every breaker transition is checked against the legal state
    machine.  Protections off: a patient retry loop grinds through
    every failure, overshooting the 0.4-second budget by seconds.
    """
    plan = FaultPlan(
        (ErrorBurst(Window(1.0, 4.0), endpoint="glotta", status=500),
         Partition(Window(4.0, 6.0))),
        seed=seed)
    world = build_world(seed=seed, corpus_size=12)
    clock = world.clock
    injector = plan.injector().install(world.transport)
    run = ScenarioRun("burst_partition", seed, protections,
                      max_transport_step=0.4)
    budget = 0.4
    ticks = [1.0 + 0.5 * index for index in range(15)]  # t = 1.0 .. 8.0

    if protections:
        cache = ServiceCache(capacity=64, ttl=0.8, clock=clock,
                             stale_grace=30.0)
        run.staleness_bound = 30.8
        client = RichClient(world.registry, cache=cache,
                            serve_stale_on_error=True)
        breakers = CircuitBreakerRegistry(clock, failure_threshold=3,
                                          cooldown=1.5)
        breakers.bind_metrics(client.obs.metrics)
        breaker = breakers.breaker("glotta")
        run.breakers = breakers.all_breakers()

        def degrade(payload: dict) -> str:
            stale = cache.get_stale(cache_key("glotta", "analyze", payload))
            if stale is None:
                return "shed"
            run.stale_ages.append(stale.age)
            return "degraded"

        try:
            with _scenario_span(client, run):
                for text in _TEXTS[:2]:  # warm pre-burst
                    run.issue()
                    started = clock.now()
                    client.invoke("glotta", "analyze", {"text": text})
                    run.record("success", started, clock.now())
                for index, tick in enumerate(ticks):
                    _advance_to(clock, tick)
                    payload = {"text": _TEXTS[index % 2]}
                    run.issue()
                    started = clock.now()
                    deadline = Deadline.after(clock, budget)
                    try:
                        # Breaker outside, degradation after: a stale
                        # serve must not mask failures from the breaker.
                        result = breaker.call(
                            lambda: client.invoke(
                                "glotta", "analyze", payload,
                                deadline=deadline, allow_stale=False))
                        kind = ("degraded" if result.degraded
                                else "success")
                    except CircuitOpenError:
                        kind = degrade(payload)
                    except NetworkError:
                        kind = degrade(payload)
                        if kind == "shed":
                            kind = "failure"  # wire failure, no fallback
                    run.record(kind, started, clock.now(),
                               deadline_expires=deadline.expires_at)
                run.note(f"breaker opens={breaker.stats.opens} "
                         f"closes={breaker.stats.closes} "
                         f"rejected={breaker.stats.calls_rejected}")
        finally:
            client.close()
        return _finish(run, injector)

    client = RichClient(world.registry)
    policy = RetryPolicy(max_attempts=3, backoff=2.0)
    try:
        with _scenario_span(client, run):
            for index, tick in enumerate(ticks[:4]):
                _advance_to(clock, tick)
                payload = {"text": _TEXTS[index % 2]}
                run.issue()
                started = clock.now()
                try:
                    invoke_with_retry(
                        lambda payload=payload: client.invoke(
                            "glotta", "analyze", payload, use_cache=False),
                        policy, clock=clock, service="glotta")
                    kind = "success"
                except RetriesExhaustedError:
                    kind = "failure"
                run.record(kind, started, clock.now(),
                           deadline_expires=started + budget)
    finally:
        client.close()
    return _finish(run, injector)


def scenario_clock_skew_sync(seed: int, protections: bool) -> ScenarioRun:
    """A writer whose clock runs 45 seconds slow syncs across an outage.

    Protections on: :class:`OfflineSyncStore` orders its replay by
    local *sequence number*, so the skewed timestamps embedded in the
    values are irrelevant to convergence.  Protections off: a
    timestamp-LWW merge trusts the skewed clock and drops the newer
    write — the textbook skew-induced lost update.
    """
    plan = FaultPlan(
        (ClockSkew(Window(0.0, 100.0), offset=-45.0),
         Partition(Window(2.0, 5.0))),
        seed=seed)
    world = build_world(seed=seed, corpus_size=12)
    clock = world.clock
    injector = plan.injector().install(world.transport)
    run = ScenarioRun("clock_skew_sync", seed, protections)
    writer_clock = SkewedClock(clock, plan.skew_at(0.0))
    client = RichClient(world.registry)
    secure = SecureRemoteStore(client, "store-standard",
                               StreamCipher(_CIPHER_KEY))
    try:
        with _scenario_span(client, run):
            _advance_to(clock, 1.0)
            if protections:
                store = OfflineSyncStore(remote=secure)
                first = {"value": "v1", "written_at": writer_clock.now()}
                run.issue()
                started = clock.now()
                store.put("note", first)  # online: pushed
                run.record("success", started, clock.now())
                _advance_to(clock, 2.5)  # partitioned
                second = {"value": "v2", "written_at": writer_clock.now()}
                journal = {"value": "j1", "written_at": writer_clock.now()}
                for key, value in (("note", second), ("journal", journal)):
                    run.issue()
                    started = clock.now()
                    store.put(key, value)
                    run.record("success", started, clock.now(),
                               detail="queued offline, skewed stamp")
                _advance_to(clock, 5.5)  # healed
                run.issue()
                started = clock.now()
                applied = store.sync()
                run.record("success", started, clock.now())
                run.note(f"sync applied={applied} with writer skew "
                         f"{plan.skew_at(0.0):.6f}s (replay by sequence)")
                run.expected_state = {"note": second, "journal": journal}
            else:
                # Control: merge remote state by (skewed) timestamp.
                first = {"value": "v1", "written_at": clock.now()}
                run.issue()
                started = clock.now()
                secure.put("note", first)  # an unskewed peer wrote first
                run.record("success", started, clock.now())
                _advance_to(clock, 2.5)
                # The skewed writer's update: later in real time, but
                # stamped ~45s in the past.
                second = {"value": "v2", "written_at": writer_clock.now()}
                run.issue()
                started = clock.now()
                run.record("success", started, clock.now(),
                           detail="held offline, skewed stamp")
                _advance_to(clock, 5.5)
                run.issue()
                started = clock.now()
                current = secure.get("note")
                if second["written_at"] > current["written_at"]:
                    secure.put("note", second)
                    run.record("success", started, clock.now())
                else:
                    run.record("failure", started, clock.now(),
                               detail="timestamp merge dropped the "
                                      "newer write")
                run.note("timestamp-LWW merge trusted a clock running "
                         f"{plan.skew_at(0.0):.6f}s slow")
                run.expected_state = {"note": second}
            _read_remote(run, secure)
    finally:
        client.close()
    return _finish(run, injector)


def scenario_deadline_storm(seed: int, protections: bool) -> ScenarioRun:
    """A stuck upstream call pins the bulkhead while deadlined work piles up.

    Protections on: admission control clamps every queue wait to the
    caller's remaining budget — work that cannot finish in time is shed
    *at* its deadline with an honest ``retry_after`` (the queue window,
    never the caller's own budget), and callers with warm cache degrade
    instead.  Protections off: every caller waits out the full queue
    timeout, blowing through its budget before being shed anyway.
    """
    plan = FaultPlan((), seed=seed)  # the fault is load, not the network
    world = build_world(seed=seed, corpus_size=12)
    clock = world.clock
    injector = plan.injector().install(world.transport)
    run = ScenarioRun("deadline_storm", seed, protections,
                      max_transport_step=0.5)
    budget = 0.3
    queue_timeout = 0.5 if protections else 2.0
    admission = AdmissionController(clock, limits={
        "glotta": AdmissionLimit(max_concurrent=1, max_queue=4,
                                 queue_timeout=queue_timeout)})
    cache = ServiceCache(capacity=64, ttl=0.5, clock=clock,
                         stale_grace=10.0)
    if protections:
        run.staleness_bound = 10.5
    client = RichClient(world.registry, cache=cache, admission=admission,
                        serve_stale_on_error=protections)
    try:
        with _scenario_span(client, run):
            warm = {"text": _TEXTS[0]}
            run.issue()
            started = clock.now()
            client.invoke("glotta", "analyze", warm)
            run.record("success", started, clock.now())
            bulkhead = admission.bulkhead_for("glotta")
            assert bulkhead.try_acquire()  # the stuck call holds the permit
            _advance_to(clock, 1.0)        # warm entry expired, in grace
            storm = [warm] + [{"text": text} for text in _TEXTS[1:4]]
            for payload in storm:
                run.issue()
                started = clock.now()
                deadline = (Deadline.after(clock, budget)
                            if protections else None)
                try:
                    result = client.invoke("glotta", "analyze", payload,
                                           deadline=deadline)
                    kind = "degraded" if result.degraded else "success"
                    if result.degraded and result.stale_age is not None:
                        run.stale_ages.append(result.stale_age)
                except AdmissionRejectedError as error:
                    kind = "shed"
                    run.note(f"shed reason={error.reason} "
                             f"retry_after={error.retry_after:.6f}")
                run.record(kind, started, clock.now(),
                           deadline_expires=started + budget)
            bulkhead.release()  # the stuck call finally finishes
            for text in _TEXTS[3:]:  # recovery: permits flow again
                run.issue()
                started = clock.now()
                deadline = (Deadline.after(clock, 2.0)
                            if protections else None)
                client.invoke("glotta", "analyze", {"text": text},
                              deadline=deadline, use_cache=False)
                run.record("success", started, clock.now(),
                           deadline_expires=(deadline.expires_at
                                             if deadline else None))
            run.note(f"bulkhead shed_deadline="
                     f"{bulkhead.stats.shed_deadline} "
                     f"shed_timeout={bulkhead.stats.shed_timeout} "
                     f"admitted={bulkhead.stats.admitted}")
    finally:
        client.close()
    return _finish(run, injector)


#: Every named scenario, in the order ``run_all`` executes them.
SCENARIOS = {
    "error_burst": scenario_error_burst,
    "latency_spike": scenario_latency_spike,
    "partition_sync": scenario_partition_sync,
    "flapping_link": scenario_flapping_link,
    "corrupt_payload": scenario_corrupt_payload,
    "burst_partition": scenario_burst_partition,
    "clock_skew_sync": scenario_clock_skew_sync,
    "deadline_storm": scenario_deadline_storm,
}


def run_scenario(name: str, seed: int = 7,
                 protections: bool = True) -> ScenarioResult:
    """Run one named scenario and grade it against every invariant."""
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}")
    run = SCENARIOS[name](seed, protections)
    return ScenarioResult(name=name, report=check_all(run),
                          metrics=_metrics_from(run))


def run_all(seed: int = 7, protections: bool = True) -> list[ScenarioResult]:
    """Run the full suite, in registry order."""
    return [run_scenario(name, seed=seed, protections=protections)
            for name in SCENARIOS]
