"""Failure handling: retries and ranked failover (§2.1).

"If a service is unresponsive, the rich SDK has the ability to retry a
service multiple times.  The number of retries can be specified by the
user. ... It would generally be preferable to start with higher ranked
services and continue with lower ranked services until a responsive
service is found.  The number of times to retry each service before
moving on to the next one ... may be different for different services."
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import TypeVar

from repro.obs import names
from repro.simnet.errors import NetworkError
from repro.util.clock import Clock
from repro.util.errors import ReproError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry one service.

    ``max_attempts`` counts the first try (``max_attempts=3`` means up
    to two retries).  ``backoff`` seconds are waited before the first
    retry, multiplied by ``backoff_multiplier`` each further retry.
    Only ``retryable`` exception types are retried; anything else (e.g.
    a 400-style validation error) propagates immediately.
    """

    max_attempts: int = 3
    backoff: float = 0.0
    backoff_multiplier: float = 2.0
    retryable: tuple[type[BaseException], ...] = field(default=(NetworkError,))

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be non-negative, got {self.backoff}")

    def delay_before_attempt(self, attempt_index: int) -> float:
        """Seconds to wait before attempt ``attempt_index`` (0-based)."""
        if attempt_index == 0 or self.backoff == 0.0:
            return 0.0
        return self.backoff * self.backoff_multiplier ** (attempt_index - 1)

    def is_retryable(self, error: BaseException) -> bool:
        """Whether this error class is worth another attempt."""
        return isinstance(error, self.retryable)


@dataclass
class AttemptLog:
    """What happened on one attempt (for diagnostics and benchmarks)."""

    service: str
    attempt: int
    error: str | None


class RetriesExhaustedError(ReproError):
    """A single service kept failing through its retry budget.

    ``deadline`` (a :class:`repro.util.deadline.Deadline`, when the
    caller passed one) records the end-to-end budget the retry loop was
    running under; ``deadline_truncated`` marks the case where the loop
    stopped *early* because the remaining budget could not cover the
    next backoff — the attempts counted are then fewer than the
    policy's ``max_attempts``.
    """

    def __init__(self, service: str, attempts: int, last_error: BaseException,
                 deadline=None, deadline_truncated: bool = False) -> None:
        suffix = ""
        if deadline_truncated:
            suffix = " (stopped early: deadline budget below next backoff)"
        super().__init__(
            f"service {service!r} failed {attempts} attempt(s); "
            f"last error: {last_error}{suffix}"
        )
        self.service = service
        self.attempts = attempts
        self.last_error = last_error
        self.deadline = deadline
        self.deadline_truncated = deadline_truncated


class AllServicesFailedError(ReproError):
    """Every candidate service failed through its retry budget."""

    def __init__(self, attempts: list[AttemptLog]) -> None:
        services = sorted({log.service for log in attempts})
        super().__init__(
            f"all {len(services)} candidate service(s) failed after "
            f"{len(attempts)} total attempt(s): {services}"
        )
        self.attempts = attempts


def invoke_with_retry(
    invoke_once: Callable[[], T],
    policy: RetryPolicy,
    clock: Clock | None = None,
    service: str = "<service>",
    log: list[AttemptLog] | None = None,
    tracer=None,
    backoff_counter=None,
    deadline=None,
) -> T:
    """Call ``invoke_once`` under a retry policy.

    Backoff waits are charged to ``clock`` (simulated time).  Raises
    :class:`RetriesExhaustedError` once the budget is spent.

    A ``deadline`` (:class:`repro.util.deadline.Deadline`) makes the
    loop budget-aware: when the remaining budget cannot cover the next
    backoff (or is already spent), the loop **stops instead of
    sleeping** — overshooting the caller's budget just to fail later is
    never useful.  The resulting :class:`RetriesExhaustedError` carries
    the deadline and ``deadline_truncated=True``.

    With a ``tracer``, every attempt runs inside its own child span and
    each backoff wait is recorded as a ``retry.backoff`` event (with its
    duration in seconds) on the enclosing span, which is what lets the
    attribution analyzer bill sleep time separately from wire time.
    ``backoff_counter`` (a metrics counter) accumulates the same waits
    fleet-wide.
    """
    last_error: BaseException | None = None
    for attempt in range(policy.max_attempts):
        delay = policy.delay_before_attempt(attempt)
        if deadline is not None and last_error is not None:
            remaining = deadline.remaining()
            if remaining <= 0.0 or remaining < delay:
                raise RetriesExhaustedError(
                    service, attempt, last_error, deadline=deadline,
                    deadline_truncated=True) from last_error
        if delay and clock is not None:
            if tracer is not None:
                tracer.add_event(
                    "retry.backoff",
                    {"service": service, "attempt": attempt, "seconds": delay})
            if backoff_counter is not None:
                backoff_counter.inc(delay, service=service)
            clock.charge(delay)
        try:
            if tracer is not None and tracer.enabled:
                with tracer.span(names.SPAN_FAILOVER_ATTEMPT,
                                 {"service": service, "attempt": attempt}):
                    result = invoke_once()
            else:
                result = invoke_once()
        except BaseException as error:  # noqa: BLE001 — classified below
            if not policy.is_retryable(error):
                raise
            last_error = error
            if log is not None:
                log.append(AttemptLog(service, attempt, repr(error)))
            continue
        if log is not None:
            log.append(AttemptLog(service, attempt, None))
        return result
    assert last_error is not None
    raise RetriesExhaustedError(service, policy.max_attempts, last_error,
                                deadline=deadline) from last_error


class FailoverInvoker:
    """Tries ranked candidates in order, each under its own retry policy."""

    def __init__(
        self,
        default_policy: RetryPolicy | None = None,
        per_service: Mapping[str, RetryPolicy] | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.default_policy = default_policy if default_policy is not None else RetryPolicy()
        self.per_service = dict(per_service or {})
        self.clock = clock
        self.tracer = None
        self._metric_backoff = None
        self._metric_exhausted = None

    def bind_obs(self, obs) -> None:
        """Attach observability: attempt spans, backoff events/counters."""
        if obs is None or not obs.enabled or self.tracer is not None:
            return
        self.tracer = obs.tracer
        self._metric_backoff = obs.metrics.counter(
            names.RETRY_BACKOFF_SECONDS_TOTAL,
            "Simulated seconds slept in retry backoff, by service.")
        self._metric_exhausted = obs.metrics.counter(
            names.FAILOVER_EXHAUSTED_TOTAL,
            "Candidates whose retry budget was exhausted during failover.")

    def policy_for(self, service: str) -> RetryPolicy:
        """This service's retry policy (or the default)."""
        return self.per_service.get(service, self.default_policy)

    def invoke(
        self,
        ordered_services: Sequence[str],
        invoke_once: Callable[[str], T],
        deadline=None,
    ) -> tuple[str, T, list[AttemptLog]]:
        """Invoke the first responsive service.

        ``ordered_services`` should come pre-ranked (best first) from
        :class:`repro.core.ranking.ServiceRanker`.  Returns the serving
        service's name, its result and the full attempt log; raises
        :class:`AllServicesFailedError` when every candidate is down.

        With a ``deadline``, each candidate's retry loop is
        budget-aware (see :func:`invoke_with_retry`) and the failover
        walk itself stops moving down the ranking once the budget is
        spent — failing over to a service there is no time left to call
        only adds load.
        """
        if not ordered_services:
            raise ValueError("no candidate services to invoke")
        attempts: list[AttemptLog] = []
        last_exhausted: RetriesExhaustedError | None = None
        for service in ordered_services:
            if (deadline is not None and deadline.expired()
                    and attempts):
                break
            try:
                result = invoke_with_retry(
                    lambda: invoke_once(service),
                    self.policy_for(service),
                    clock=self.clock,
                    service=service,
                    log=attempts,
                    tracer=self.tracer,
                    backoff_counter=self._metric_backoff,
                    deadline=deadline,
                )
            except RetriesExhaustedError as error:
                # The per-attempt errors are already in `attempts`; count
                # the exhaustion so fleet dashboards see failover churn.
                last_exhausted = error
                if self._metric_exhausted is not None:
                    self._metric_exhausted.inc(service=service)
                continue
            return service, result, attempts
        raise AllServicesFailedError(attempts) from last_exhausted
