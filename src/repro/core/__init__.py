"""The Rich SDK — the paper's primary contribution.

A client-side layer over remote services that adds everything the
paper's Figure 2 depicts: monitoring and data collection, service
quality evaluation, ranking, failure handling, caching, and synchronous
and asynchronous invocation — plus the natural-language-understanding
support layer of Figure 3 (web search → fetch → store → analyze →
aggregate).

Typical entry point::

    from repro.core import RichClient
    from repro.services.catalog import build_world

    world = build_world()
    client = RichClient(world.registry)
    response = client.invoke("lexica-prime", "analyze", {"text": "..."})
"""

from repro.core.admission import (
    AdmissionController,
    AdmissionLimit,
    AdmissionRejectedError,
    Bulkhead,
)
from repro.core.batching import (
    Flight,
    FlightCancelledError,
    MicroBatcher,
    RequestCoalescer,
)
from repro.core.futures import ListenableFuture, CallbackExecutor
from repro.core.monitoring import ServiceMonitor, InvocationRecord
from repro.core.latency import LatencyPredictor
from repro.core.ranking import (
    Estimate,
    ServiceRanker,
    weighted_score,
    normalized_score,
    Weights,
)
from repro.core.retry import RetryPolicy, FailoverInvoker, AllServicesFailedError
from repro.core.caching import ServiceCache, CacheStats
from repro.core.quota import ClientQuotaTracker
from repro.core.invoker import RichClient
from repro.core.aggregation import DocumentSetAggregator, MultiServiceCombiner
from repro.core.websearch import WebSearchAnalyzer, DocumentArchive
from repro.core.quality import (
    GoldBasedEvaluator,
    AgreementEvaluator,
    CompositeEvaluator,
    RollingQualityTracker,
)
from repro.core.loadbalancer import (
    Balancer,
    RoundRobinBalancer,
    WeightedScoreBalancer,
    LeastSpendBalancer,
    StickyBalancer,
)
from repro.core.gateway import SdkGateway
from repro.core.hedging import HedgedInvoker
from repro.core.imagery import ImageSearchAnalyzer
from repro.core.ratelimit import ServiceRateLimiter, TokenBucket

__all__ = [
    "AdmissionController",
    "AdmissionLimit",
    "AdmissionRejectedError",
    "Bulkhead",
    "Flight",
    "FlightCancelledError",
    "MicroBatcher",
    "RequestCoalescer",
    "ListenableFuture",
    "CallbackExecutor",
    "ServiceMonitor",
    "InvocationRecord",
    "LatencyPredictor",
    "Estimate",
    "ServiceRanker",
    "weighted_score",
    "normalized_score",
    "Weights",
    "RetryPolicy",
    "FailoverInvoker",
    "AllServicesFailedError",
    "ServiceCache",
    "CacheStats",
    "ClientQuotaTracker",
    "RichClient",
    "DocumentSetAggregator",
    "MultiServiceCombiner",
    "WebSearchAnalyzer",
    "DocumentArchive",
    "GoldBasedEvaluator",
    "AgreementEvaluator",
    "CompositeEvaluator",
    "RollingQualityTracker",
    "Balancer",
    "RoundRobinBalancer",
    "WeightedScoreBalancer",
    "LeastSpendBalancer",
    "StickyBalancer",
    "SdkGateway",
    "HedgedInvoker",
    "ImageSearchAnalyzer",
    "ServiceRateLimiter",
    "TokenBucket",
]
