"""Hedged requests: racing a backup call against a slow primary.

Another way to "mitigate the latency" of remote services when several
provide similar functionality (§2): send the request to the best-ranked
service, and if no reply arrives within a deadline (typically that
service's observed p95), fire the same request at the runner-up and
take whichever answers first.  Hedging trades a small amount of extra
load (only the slowest ~5% of requests fire a backup) for a large
reduction in tail latency — the classic tail-at-scale technique, built
here from the SDK's own monitoring, ranking and async machinery.

Requires a real (scaled) clock: hedging is inherently about racing
wall-clock timers against in-flight calls.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.invoker import InvocationResult, RichClient
from repro.core.ranking import Weights
from repro.obs import names
from repro.util.deadline import Deadline


@dataclass
class HedgeStats:
    """How often the hedge fired and who won."""

    requests: int = 0
    hedges_fired: int = 0
    hedge_wins: int = 0
    primary_wins: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def hedge_rate(self) -> float:
        """Fraction of hedged requests whose backup actually fired."""
        return self.hedges_fired / self.requests if self.requests else 0.0


class HedgedInvoker:
    """Race a backup call against a slow primary.

    The primary leg goes through the normal :meth:`RichClient.invoke`
    path (cache, coalescing, admission); the backup leg is fired with
    ``coalesce=False`` so it never joins an in-flight identical call —
    a hedge that waits behind the request it is hedging would be
    useless.  Mirrors its fire/win counters to the client's metrics
    registry when observability is enabled.
    """

    def __init__(
        self,
        client: RichClient,
        deadline_percentile: float = 0.95,
        default_deadline: float = 0.5,
        weights: Weights = Weights(),
    ) -> None:
        if not 0.0 < deadline_percentile < 1.0:
            raise ValueError(
                f"deadline_percentile must be in (0, 1), got {deadline_percentile}")
        self.client = client
        self.deadline_percentile = deadline_percentile
        self.default_deadline = default_deadline
        self.weights = weights
        self.stats = HedgeStats()
        obs = client.obs
        if obs.enabled:
            self._metric_requests = obs.metrics.counter(
                names.HEDGE_REQUESTS_TOTAL, "Requests that went through the hedged invoker.")
            self._metric_fired = obs.metrics.counter(
                names.HEDGES_FIRED_TOTAL, "Requests whose backup call was actually sent.")
            self._metric_wins = obs.metrics.counter(
                names.HEDGE_WINS_TOTAL, "Requests won by the backup call.")
        else:
            self._metric_requests = self._metric_fired = self._metric_wins = None

    def deadline_for(self, service: str) -> float:
        """The hedge deadline: the service's observed latency percentile."""
        latencies = self.client.monitor.latencies(service)
        if len(latencies) < 5:
            return self.default_deadline
        from repro.analytics.stats import percentile

        return percentile(latencies, self.deadline_percentile)

    def invoke(
        self,
        kind: str,
        operation: str,
        payload: Mapping[str, object] | None = None,
        use_cache: bool = True,
        candidates: list[str] | None = None,
        deadline: Deadline | None = None,
    ) -> InvocationResult:
        """Invoke with hedging across the top two ranked services.

        The primary request goes to the best-ranked service; if it has
        not completed within the primary's deadline, the same request
        is issued to the second-ranked service and the first completed
        result wins.  With fewer than two candidates this degrades to a
        plain invocation.  ``candidates`` (already ordered, best first)
        overrides the live ranking — the ranking is adaptive, so pin it
        when an experiment needs a fixed primary.

        An end-to-end ``deadline`` is carried into both legs, the hedge
        wait is clamped to the remaining budget, and **no backup is
        launched past expiry** — a hedge that cannot beat the deadline
        is pure extra load.
        """
        with self.client.obs.tracer.span(
                names.SPAN_SDK_HEDGED_INVOKE, {"kind": kind, "operation": operation}):
            return self._invoke_traced(kind, operation, payload, use_cache,
                                       candidates, deadline)

    def _invoke_traced(
        self,
        kind: str,
        operation: str,
        payload: Mapping[str, object] | None,
        use_cache: bool,
        candidates: list[str] | None,
        deadline: Deadline | None = None,
    ) -> InvocationResult:
        tracer = self.client.obs.tracer
        if candidates is None:
            candidates = [service.name for service in
                          self.client.registry.services_of_kind(kind)]
            if not candidates:
                raise ValueError(f"no services of kind {kind!r}")
            ranked = [name for name, _ in self.client.ranker.rank(
                candidates, weights=self.weights)]
        else:
            if not candidates:
                raise ValueError("empty candidates override")
            ranked = list(candidates)
        primary = ranked[0]
        self.stats.requests += 1
        if self._metric_requests is not None:
            self._metric_requests.inc()
        start = self.client.clock.now()

        if len(ranked) == 1:
            result = self.client.invoke(primary, operation, payload,
                                        use_cache=use_cache,
                                        deadline=deadline)
            self.stats.primary_wins += 1
            self.stats.latencies.append(self.client.clock.now() - start)
            return result

        backup = ranked[1]
        first_done = threading.Event()
        outcomes: list[tuple[str, InvocationResult | Exception]] = []
        lock = threading.Lock()

        def record(role: str):
            def callback(future):
                error = future.exception()
                with lock:
                    outcomes.append((role, error if error is not None
                                     else future.get()))
                first_done.set()
            return callback

        primary_future = self.client.invoke_async(
            primary, operation, payload, use_cache=use_cache,
            deadline=deadline)
        primary_future.add_listener(record("primary"))

        def first_success():
            with lock:
                for role, outcome in outcomes:
                    if not isinstance(outcome, Exception):
                        return role, outcome
            return None

        hedge_after = self.deadline_for(primary)
        if deadline is not None:
            # Never wait past the caller's budget before deciding.
            hedge_after = min(hedge_after, deadline.remaining())
        real_deadline = hedge_after * getattr(self.client.clock, "time_scale", 1.0)
        wait_start = self.client.clock.now()
        completed_early = first_done.wait(timeout=real_deadline)
        tracer.add_event("hedge.wait",
                         {"service": primary,
                          "seconds": self.client.clock.now() - wait_start,
                          "deadline": hedge_after})
        # Hedge when the primary is slow — or when it already failed
        # (an error is the slowest possible answer).
        fired_hedge = not completed_early or (
            completed_early and first_success() is None
        )
        if fired_hedge and deadline is not None and deadline.expired():
            # A backup launched past the deadline cannot produce a
            # usable answer; ride out the primary leg instead.
            fired_hedge = False
        if fired_hedge:
            self.stats.hedges_fired += 1
            if self._metric_fired is not None:
                self._metric_fired.inc()
            # The backup must be an independent upstream probe: if it
            # coalesced onto an already-slow in-flight identical call
            # it would just wait behind the same laggard it is meant to
            # outrun.
            backup_future = self.client.invoke_async(
                backup, operation, payload, use_cache=use_cache,
                coalesce=False, deadline=deadline)
            backup_future.add_listener(record("backup"))
            first_done.wait()

        expected = 2 if fired_hedge else 1
        winner = None
        while winner is None:
            # Snapshot once so the success check and the all-finished
            # check see the same state (a success landing between two
            # separate reads must not be missed).
            with lock:
                snapshot = list(outcomes)
            for role, outcome in snapshot:
                if not isinstance(outcome, Exception):
                    winner = (role, outcome)
                    break
            if winner is not None:
                break
            if len(snapshot) >= expected:
                raise snapshot[0][1]  # every leg failed
            # Poll-wait: avoids the lost-wakeup race between checking
            # outcomes and re-arming the event.
            first_done.wait(timeout=0.005)

        role, result = winner
        if role == "primary":
            self.stats.primary_wins += 1
        else:
            self.stats.hedge_wins += 1
            if self._metric_wins is not None:
                self._metric_wins.inc()
        self.stats.latencies.append(self.client.clock.now() - start)
        return result
