"""The SDK's HTTP-style gateway.

"In order to allow programs written in other languages to access the
rich SDK, the rich SDK can expose an HTTP interface."  There is no real
network in this reproduction, so the gateway is modelled the way the
transport is: JSON request dict in, JSON response dict out, with every
payload round-tripped through ``json`` to guarantee that only
serializable data crosses — exactly the contract an HTTP server would
impose.  A non-Python client is anything that can produce these
envelopes.

Request envelope::

    {"method": "invoke",
     "params": {"service": "lexica-prime", "operation": "analyze",
                "payload": {"text": "..."}}}

Response envelope::

    {"status": 200, "result": ...}
    {"status": 404, "error": "...", "error_type": "NotFoundError"}
"""

from __future__ import annotations

import json
from collections.abc import Mapping

from repro.core.admission import AdmissionRejectedError
from repro.core.circuitbreaker import CircuitOpenError
from repro.core.invoker import RichClient
from repro.core.quota import BudgetExceededError
from repro.core.ranking import Weights
from repro.core.ratelimit import RateLimitExceededError
from repro.core.retry import AllServicesFailedError
from repro.obs.attribution import TraceAnalyzer
from repro.simnet.errors import (
    ConnectivityError,
    RemoteServiceError,
    ServiceTimeoutError,
)
from repro.tenancy.context import tenant_scope
from repro.tenancy.model import TenantSuspendedError
from repro.util.deadline import Deadline, DeadlineExceededError
from repro.util.errors import NotFoundError, SerializationError


def _status_for(error: Exception) -> int:
    if isinstance(error, NotFoundError):
        return 404
    # A suspended tenant is authenticated but forbidden: 403, not 429 —
    # no amount of backoff will help until the operator unsuspends it.
    if isinstance(error, TenantSuspendedError):
        return 403
    # 429-family: the caller should back off and retry, not report a
    # server failure.  Rate limits, open circuits and shed admissions
    # carry a concrete "when" that handle() surfaces as a retry_after
    # hint.
    if isinstance(error, (BudgetExceededError, RateLimitExceededError,
                          CircuitOpenError, AdmissionRejectedError)):
        return 429
    # A spent end-to-end deadline is the gateway-side analogue of an
    # upstream timeout: the caller's budget ran out, 504.
    if isinstance(error, (ServiceTimeoutError, DeadlineExceededError)):
        return 504
    if isinstance(error, (ConnectivityError, AllServicesFailedError)):
        return 503
    if isinstance(error, RemoteServiceError):
        return error.status
    if isinstance(error, (ValueError, KeyError, TypeError, SerializationError)):
        return 400
    return 500


class SdkGateway:
    """Dispatches JSON envelopes onto a :class:`RichClient`.

    Methods: ``invoke``, ``invoke_many``, ``invoke_failover``, ``rank_services``,
    ``best_service``, ``service_summaries``, ``cache_stats``, ``spend``,
    ``tenant_usage``, ``metrics``, ``traces``, ``attribution`` and ``health``.

    A top-level ``"tenant"`` field in the request envelope (the
    HTTP-header analogue) runs the method inside that tenant's scope,
    so per-tenant budgets, rate limits, cache namespaces and fair
    scheduling all apply; tenant policy refusals map to 429 (budget /
    rate) or 403 (suspended).
    """

    def __init__(self, client: RichClient) -> None:
        self.client = client
        self.requests_served = 0
        self.errors_returned = 0

    # -- envelope handling ---------------------------------------------------

    def handle(self, request: Mapping[str, object]) -> dict:
        """Serve one request envelope; never raises."""
        self.requests_served += 1
        try:
            request = json.loads(json.dumps(dict(request)))
        except (TypeError, ValueError) as error:
            return self._error(400, f"request is not JSON-serializable: {error}",
                               "SerializationError")
        method = request.get("method")
        params = request.get("params") or {}
        if not isinstance(method, str):
            return self._error(400, "missing or invalid 'method'", "ValueError")
        if not isinstance(params, dict):
            return self._error(400, "'params' must be an object", "ValueError")
        handler = getattr(self, f"_method_{method}", None)
        if handler is None:
            return self._error(404, f"unknown method {method!r}", "NotFoundError")
        tenant = request.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            return self._error(400, "'tenant' must be a string", "ValueError")
        try:
            if tenant is not None:
                # The envelope's tenant field is the HTTP-header analogue:
                # the whole method runs inside that tenant's scope.
                with tenant_scope(tenant):
                    result = handler(params)
            else:
                result = handler(params)
        except Exception as error:  # noqa: BLE001 — mapped to a status code
            return self._error(_status_for(error), str(error),
                               type(error).__name__,
                               retry_after=self._retry_after(error))
        return json.loads(json.dumps({"status": 200, "result": result}))

    def _retry_after(self, error: Exception) -> float | None:
        """Seconds until a 429'd caller can usefully try again."""
        if isinstance(error, RateLimitExceededError):
            return max(0.0, error.wait_needed)
        if isinstance(error, CircuitOpenError):
            return max(0.0, error.retry_at - self.client.clock.now())
        if isinstance(error, AdmissionRejectedError):
            return max(0.0, error.retry_after)
        return None

    def handle_json(self, request_text: str) -> str:
        """Text-in/text-out variant: the literal wire format."""
        try:
            request = json.loads(request_text)
        except json.JSONDecodeError as error:
            return json.dumps(self._error(400, f"invalid JSON: {error}",
                                          "SerializationError"))
        if not isinstance(request, dict):
            return json.dumps(self._error(400, "request must be a JSON object",
                                          "ValueError"))
        return json.dumps(self.handle(request))

    def _error(self, status: int, message: str, error_type: str,
               retry_after: float | None = None) -> dict:
        self.errors_returned += 1
        envelope = {"status": status, "error": message, "error_type": error_type}
        if retry_after is not None:
            envelope["retry_after"] = round(retry_after, 6)
        return envelope

    # -- methods ------------------------------------------------------------

    @staticmethod
    def _weights_from(params: Mapping[str, object]) -> Weights:
        raw = params.get("weights") or {}
        if not isinstance(raw, Mapping):
            raise ValueError("'weights' must be an object")
        return Weights(
            response_time=float(raw.get("response_time", 1.0)),
            cost=float(raw.get("cost", 1.0)),
            quality=float(raw.get("quality", 1.0)),
        )

    def _deadline_from(self, params: Mapping[str, object]) -> Deadline | None:
        """An optional per-request budget: ``{"deadline": seconds}``."""
        raw = params.get("deadline")
        if raw is None:
            return None
        return Deadline.after(self.client.clock, float(raw))

    def _method_invoke(self, params: Mapping[str, object]) -> dict:
        result = self.client.invoke(
            str(params["service"]),
            str(params["operation"]),
            params.get("payload") or {},
            timeout=params.get("timeout"),
            use_cache=bool(params.get("use_cache", True)),
            deadline=self._deadline_from(params),
        )
        return {
            "value": result.value,
            "latency": result.latency,
            "cost": result.cost,
            "service": result.service,
            "cached": result.cached,
            "degraded": result.degraded,
        }

    def _method_invoke_many(self, params: Mapping[str, object]) -> dict:
        """Batch entry point: one envelope, many payloads, per-item results."""
        payloads = params.get("payloads")
        if not isinstance(payloads, list):
            raise ValueError("'payloads' must be a list of objects")
        outcomes = self.client.invoke_many(
            str(params["service"]),
            str(params["operation"]),
            [dict(payload) for payload in payloads],
            timeout=params.get("timeout"),
            use_cache=bool(params.get("use_cache", True)),
            deadline=self._deadline_from(params),
        )
        items = []
        for outcome in outcomes:
            if isinstance(outcome, Exception):
                items.append({
                    "status": _status_for(outcome),
                    "error": str(outcome),
                    "error_type": type(outcome).__name__,
                })
            else:
                items.append({
                    "status": 200,
                    "value": outcome.value,
                    "latency": outcome.latency,
                    "cost": outcome.cost,
                    "cached": outcome.cached,
                    "coalesced": outcome.coalesced,
                    "batched": outcome.batched,
                })
        return {"results": items}

    def _method_invoke_failover(self, params: Mapping[str, object]) -> dict:
        result = self.client.invoke_with_failover(
            str(params["kind"]),
            str(params["operation"]),
            params.get("payload") or {},
            timeout=params.get("timeout"),
            weights=self._weights_from(params),
            use_cache=bool(params.get("use_cache", True)),
            deadline=self._deadline_from(params),
        )
        return {
            "value": result.value,
            "served_by": result.service,
            "degraded": result.degraded,
            "attempts": [
                {"service": log.service, "attempt": log.attempt,
                 "failed": log.error is not None}
                for log in result.attempts
            ],
        }

    def _method_rank_services(self, params: Mapping[str, object]) -> list:
        ranked = self.client.rank_services(
            str(params["kind"]),
            latency_params=params.get("latency_params"),
            weights=self._weights_from(params),
            formula=str(params.get("formula", "weighted")),
        )
        return [{"service": name, "score": score} for name, score in ranked]

    def _method_best_service(self, params: Mapping[str, object]) -> dict:
        return {
            "service": self.client.best_service(
                str(params["kind"]),
                latency_params=params.get("latency_params"),
                weights=self._weights_from(params),
            )
        }

    def _method_service_summaries(self, params: Mapping[str, object]) -> list:
        return self.client.service_summaries()

    def _method_cache_stats(self, params: Mapping[str, object]) -> dict:
        stats = self.client.cache.stats
        return {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_ratio": stats.hit_ratio,
            "evictions": stats.evictions,
            "expirations": stats.expirations,
            "expired_reads": stats.expired_reads,
            "entries": len(self.client.cache),
        }

    def _method_spend(self, params: Mapping[str, object]) -> dict:
        service = params.get("service")
        if service is not None:
            return {
                "service": service,
                "calls": self.client.quota.calls(str(service)),
                "cost": self.client.quota.cost(str(service)),
            }
        return {"total_cost": self.client.quota.total_cost()}

    def _method_tenant_usage(self, params: Mapping[str, object]) -> dict:
        """Per-tenant ledgers: one tenant's, or every registered tenant's."""
        tenancy = self.client.tenancy
        if tenancy is None:
            raise ValueError("this deployment has no tenancy layer")
        tenant = params.get("tenant")
        if tenant is not None:
            return tenancy.usage(str(tenant))
        return {"tenants": tenancy.usage_report()}

    def _method_metrics(self, params: Mapping[str, object]) -> dict:
        """The SDK's metrics registry: exposition text plus raw numbers."""
        registry = self.client.obs.metrics
        return {
            "exposition": registry.render(),
            "metrics": registry.snapshot(),
        }

    def _method_traces(self, params: Mapping[str, object]) -> dict:
        """Completed traces from the in-memory span collector."""
        collector = self.client.obs.collector
        limit = params.get("limit")
        traces = [
            {"trace_id": trace_id,
             "spans": [span.to_dict() for span in spans]}
            for trace_id, spans in collector.traces().items()
        ]
        if limit is not None:
            traces = traces[-int(limit):]
        return {
            "traces": traces,
            "dropped_spans": collector.dropped,
        }

    def _method_attribution(self, params: Mapping[str, object]) -> dict:
        """Latency attribution rolled up from the collected traces."""
        analyzer = TraceAnalyzer(self.client.obs.collector)
        return {
            "traces": [report.to_dict() for report in analyzer.report()],
            "aggregate": analyzer.aggregate(),
        }

    def _method_health(self, params: Mapping[str, object]) -> dict:
        online = True
        for service in self.client.registry:
            online = service.transport.is_online()
            break
        return {
            "online": online,
            "services_registered": len(self.client.registry),
            "requests_served": self.requests_served,
        }
