"""Latency prediction from latency parameters.

The paper: "Latency values can also be correlated with one or more
parameters ... The rich SDK can store past latency measurements along
with the latency parameters ... It can then predict the latency of a
service invocation based on the latency parameters."

:class:`LatencyPredictor` fits a per-service regression of observed
latency on a chosen latency parameter (simple linear by default,
polynomial on request) over the monitor's history, and falls back to
the plain mean latency when there is no parameter correlation to
exploit or too little data.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.analytics.regression import LinearRegression, PolynomialRegression
from repro.core.monitoring import ServiceMonitor


class LatencyPredictor:
    """Regression-backed latency estimates over monitoring history."""

    def __init__(
        self,
        monitor: ServiceMonitor,
        param: str = "size",
        min_observations: int = 5,
        degree: int = 1,
    ) -> None:
        if min_observations < 2:
            raise ValueError("min_observations must be at least 2")
        self.monitor = monitor
        self.param = param
        self.min_observations = min_observations
        self.degree = degree

    def _fit(self, service: str):
        observations = self.monitor.latency_observations(service, self.param)
        if len(observations) < self.min_observations:
            return None
        xs = [x for x, _ in observations]
        ys = [y for _, y in observations]
        if len(set(xs)) < 2:
            return None  # no parameter variation — nothing to regress on
        if self.degree == 1:
            return LinearRegression(xs, ys)
        return PolynomialRegression(xs, ys, degree=self.degree)

    def predict(
        self,
        service: str,
        latency_params: Mapping[str, float] | None = None,
    ) -> float | None:
        """Predicted latency for a request with the given parameters.

        Falls back to the service's mean observed latency when no
        usable regression exists; returns None with no history at all.
        Predictions are clamped to be non-negative (an extrapolated
        regression can dip below zero).
        """
        params = dict(latency_params or {})
        if self.param in params:
            model = self._fit(service)
            if model is not None:
                return max(0.0, model.predict(float(params[self.param])))
        return self.monitor.mean_latency(service)

    def model_summary(self, service: str) -> dict | None:
        """Slope/intercept/r² of the fitted model (None if unfittable)."""
        model = self._fit(service)
        if model is None:
            return None
        if isinstance(model, LinearRegression):
            return {
                "kind": "linear",
                "slope": model.slope,
                "intercept": model.intercept,
                "r_squared": model.r_squared,
                "observations": model.n,
            }
        return {
            "kind": f"poly-{model.degree}",
            "coefficients": model.coefficients,
            "r_squared": model.r_squared,
        }

    def crossover(self, first: str, second: str) -> float | None:
        """Parameter value where the two services' predicted latencies cross.

        Only defined when both services have linear models with
        different slopes and the crossing is at a non-negative
        parameter value — the paper's small-objects-vs-large-objects
        routing point.
        """
        model_first = self._fit(first)
        model_second = self._fit(second)
        if not isinstance(model_first, LinearRegression):
            return None
        if not isinstance(model_second, LinearRegression):
            return None
        if model_first.slope == model_second.slope:
            return None
        crossing = (model_second.intercept - model_first.intercept) / (
            model_first.slope - model_second.slope
        )
        return crossing if crossing >= 0 else None
