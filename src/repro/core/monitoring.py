"""Service monitoring and data collection.

"Our rich SDK can collect data on services related to performance,
availability, and the quality and accuracy of responses."  The monitor
records one :class:`InvocationRecord` per call — latency, monetary
cost, success/failure, the request's latency parameters, and an
optional user-assigned quality rating — and answers the aggregate
questions the ranking and prediction layers ask: mean/percentile
latency, availability, mean cost, mean quality, latency histograms,
and (parameter, latency) histories for regression.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.analytics.histogram import Histogram
from repro.analytics.stats import DescriptiveStats, describe
from repro.obs import names


@dataclass(frozen=True)
class InvocationRecord:
    """One observed service invocation."""

    service: str
    operation: str
    timestamp: float
    latency: float | None  # None when the call failed before completing
    cost: float
    success: bool
    error: str | None = None
    latency_params: Mapping[str, float] = field(default_factory=dict)
    quality: float | None = None
    cached: bool = False
    trace_id: str | None = None  # cross-reference into repro.obs traces


class ServiceMonitor:
    """Bounded per-service history of invocation records.

    ``max_records`` bounds memory per service; the oldest records are
    evicted first (the recent past predicts better anyway).
    """

    def __init__(self, max_records: int = 10_000) -> None:
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self.max_records = max_records
        self._records: dict[str, deque[InvocationRecord]] = {}
        self._ratings: dict[str, deque[float]] = {}
        self._lock = threading.Lock()
        # Metrics mirroring (bind_metrics): record() is the single choke
        # point every invocation passes through, so incrementing here is
        # what guarantees monitor and metrics can never disagree.
        self._metric_invocations = None
        self._metric_latency = None
        self._bound_counters: dict[tuple[str, str], object] = {}

    def bind_metrics(self, registry) -> None:
        """Mirror per-service success/failure/cached counts and latency
        histograms into a MetricsRegistry."""
        self._metric_invocations = registry.counter(
            names.SDK_INVOCATIONS_TOTAL,
            "SDK invocations by service and outcome (success/failure/cached).")
        self._metric_latency = registry.histogram(
            names.SDK_INVOCATION_LATENCY_SECONDS,
            "Observed latency of successful remote invocations.",
            low=0.0, high=2.0, bins=20)
        self._bound_counters.clear()  # drop binds into any previous registry

    def _outcome_counter(self, service: str, outcome: str):
        key = (service, outcome)
        bound = self._bound_counters.get(key)
        if bound is None:
            bound = self._metric_invocations.bind(service=service, outcome=outcome)
            self._bound_counters[key] = bound
        return bound

    def record(self, record: InvocationRecord) -> None:
        """Append one observation."""
        with self._lock:
            history = self._records.setdefault(
                record.service, deque(maxlen=self.max_records)
            )
            history.append(record)
        if self._metric_invocations is not None:
            outcome = ("cached" if record.cached
                       else "success" if record.success else "failure")
            self._outcome_counter(record.service, outcome).inc()
            if record.success and not record.cached and record.latency is not None:
                self._metric_latency.observe(record.latency, service=record.service)

    def services(self) -> list[str]:
        """Names of every service with at least one record."""
        with self._lock:
            return sorted(self._records)

    def records(self, service: str, include_cached: bool = False) -> list[InvocationRecord]:
        """This service's history (cache hits excluded by default —
        they say nothing about the *service*)."""
        with self._lock:
            history = list(self._records.get(service, ()))
        if include_cached:
            return history
        return [record for record in history if not record.cached]

    def call_count(self, service: str) -> int:
        """Remote calls recorded (cache hits excluded)."""
        return len(self.records(service))

    # -- performance --------------------------------------------------------

    def latencies(self, service: str) -> list[float]:
        """Observed latencies of successful calls."""
        return [
            record.latency
            for record in self.records(service)
            if record.success and record.latency is not None
        ]

    def mean_latency(self, service: str) -> float | None:
        """Average observed latency, or None with no successful calls."""
        values = self.latencies(service)
        return sum(values) / len(values) if values else None

    def latency_stats(self, service: str) -> DescriptiveStats | None:
        """Descriptive stats over observed latencies, or None."""
        values = self.latencies(service)
        return describe(values) if values else None

    def latency_histogram(self, service: str, bins: int = 20) -> Histogram | None:
        """The latency distribution §2 says users can compare."""
        values = self.latencies(service)
        return Histogram.from_values(values, bins=bins) if values else None

    def latency_observations(
        self, service: str, param: str
    ) -> list[tuple[float, float]]:
        """(parameter value, latency) pairs for regression."""
        pairs = []
        for record in self.records(service):
            if record.success and record.latency is not None and param in record.latency_params:
                pairs.append((float(record.latency_params[param]), record.latency))
        return pairs

    # -- availability ---------------------------------------------------------

    def availability(self, service: str) -> float | None:
        """Fraction of calls that succeeded, or None with no history."""
        history = self.records(service)
        if not history:
            return None
        return sum(1 for record in history if record.success) / len(history)

    def failure_count(self, service: str) -> int:
        """Failed remote calls recorded."""
        return sum(1 for record in self.records(service) if not record.success)

    # -- cost and quality -------------------------------------------------------

    def mean_cost(self, service: str) -> float | None:
        """Average cost of successful calls, or None."""
        history = [record for record in self.records(service) if record.success]
        if not history:
            return None
        return sum(record.cost for record in history) / len(history)

    def total_cost(self, service: str) -> float:
        """Total spend recorded for this service."""
        return sum(record.cost for record in self.records(service))

    def mean_quality(self, service: str) -> float | None:
        """Average quality rating (per-call and standalone), or None."""
        ratings = [
            record.quality for record in self.records(service) if record.quality is not None
        ]
        with self._lock:
            ratings.extend(self._ratings.get(service, ()))
        if not ratings:
            return None
        return sum(ratings) / len(ratings)

    def rate_quality(self, service: str, quality: float) -> None:
        """Record a standalone quality rating.

        Users can rate responses after the fact (e.g. once gold labels
        or human judgments are available); standalone ratings feed the
        ranker's ``q`` without distorting latency or availability.
        """
        with self._lock:
            self._ratings.setdefault(service, deque(maxlen=self.max_records)).append(
                float(quality)
            )

    # -- persistence ----------------------------------------------------------

    def save_to(self, store, namespace: str = "monitor") -> int:
        """Persist the collected histories into a key-value store.

        The paper's SDK "can store past latency measurements along with
        the latency parameters"; persisting the monitor means a
        restarted client ranks and predicts from day one instead of
        re-learning every service.  Returns the record count saved.
        """
        with self._lock:
            payload = {
                "records": {
                    service: [
                        {
                            "operation": record.operation,
                            "timestamp": record.timestamp,
                            "latency": record.latency,
                            "cost": record.cost,
                            "success": record.success,
                            "error": record.error,
                            "latency_params": dict(record.latency_params),
                            "quality": record.quality,
                            "cached": record.cached,
                            "trace_id": record.trace_id,
                        }
                        for record in history
                    ]
                    for service, history in self._records.items()
                },
                "ratings": {service: list(ratings)
                            for service, ratings in self._ratings.items()},
            }
        store.put(namespace, payload)
        return sum(len(records) for records in payload["records"].values())

    def load_from(self, store, namespace: str = "monitor") -> int:
        """Restore histories saved with :meth:`save_to`; returns count."""
        payload = store.get(namespace, default=None)
        if not isinstance(payload, dict):
            return 0
        loaded = 0
        for service, records in payload.get("records", {}).items():
            for fields in records:
                self.record(InvocationRecord(service=service, **fields))
                loaded += 1
        with self._lock:
            for service, ratings in payload.get("ratings", {}).items():
                bucket = self._ratings.setdefault(
                    service, deque(maxlen=self.max_records))
                bucket.extend(float(value) for value in ratings)
        return loaded

    def summary(self, service: str) -> dict:
        """One-look overview used by examples and benchmark output."""
        stats = self.latency_stats(service)
        return {
            "service": service,
            "calls": self.call_count(service),
            "availability": self.availability(service),
            "mean_latency": stats.mean if stats else None,
            "p95_latency": stats.p95 if stats else None,
            "mean_cost": self.mean_cost(service),
            "mean_quality": self.mean_quality(service),
        }
