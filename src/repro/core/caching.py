"""Client-side response caching.

"The rich SDK can cache data from remote services locally to improve
performance and avoid the need to make redundant service calls.
Caching can also help an application to continue executing if the
application has poor connectivity ... Caching will not be applicable
for all remote services" — mutating operations (``put``, ``delete``)
must always reach the service, and "consistency issues may arise in
which a cached value is obsolete", which the TTL bounds.

:class:`ServiceCache` is an LRU cache with optional TTL keyed by
(service, operation, canonicalized payload).  It can persist through
any :class:`repro.stores.kvstore.KeyValueStore`, giving the PKB a
cache that survives restarts and disconnections.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass

from repro.obs import names
from repro.stores.kvstore import KeyValueStore
from repro.util.clock import Clock

#: Operations that are safe to serve from cache: they read remote state
#: without changing it.  Mutations (put/delete) and anything unknown
#: always cross the network.
DEFAULT_CACHEABLE_OPERATIONS = frozenset(
    {
        "analyze", "analyze_url", "disambiguate",
        "search", "fetch",
        "lookup", "entities_of_type", "property_names",
        "quote", "history", "locate", "climate",
        "classify", "suggest", "correct",
        "get", "exists", "keys",
    }
)

_SENTINEL = object()


@dataclass(frozen=True)
class StaleEntry:
    """An expired-but-retained entry served in degraded mode.

    ``age`` is seconds since the entry was stored — by construction at
    most ``ttl + stale_grace``, which is the bounded-staleness
    guarantee the chaos harness checks.
    """

    value: object
    age: float


@dataclass
class CacheStats:
    """Hit/miss accounting (the caching benchmarks report these).

    The removal counters are disjoint and precise:

    * ``evictions`` — entries pushed out by LRU **capacity pressure**
      only (on :meth:`ServiceCache.put` or when :meth:`~ServiceCache.load_from`
      overfills the cache).  TTL plays no part in this number.
    * ``expirations`` — entries dropped because their **TTL passed**,
      wherever that is detected (currently on read; see
      ``expired_reads``).
    * ``expired_reads`` — the subset of ``expirations`` discovered by a
      read probe: :meth:`~ServiceCache.get` found the key but the entry
      was stale, so the probe *also* counts as a miss.  Earlier
      versions folded these into ``evictions``/``expirations``
      interchangeably in the docs; they are distinct events and are
      now counted separately.
    * ``invalidations`` — entries dropped explicitly
      (:meth:`~ServiceCache.invalidate` / consistency-driven
      :meth:`~ServiceCache.invalidate_service`).

    ``hits + misses`` equals the number of :meth:`~ServiceCache.get`
    probes; :meth:`~ServiceCache.peek` and ``in`` checks touch neither.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    expirations: int = 0
    expired_reads: int = 0
    invalidations: int = 0
    stale_serves: int = 0

    @property
    def hit_ratio(self) -> float:
        """hits / (hits + misses), 0.0 before any probe."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def cache_key(service: str, operation: str, payload: Mapping[str, object],
              tenant: str | None = None) -> str:
    """Canonical cache key: sorted-key JSON of the full request.

    ``tenant`` namespaces the key for multi-tenant isolation — two
    tenants issuing the identical request get distinct entries, so one
    can never read a response cached for the other.  Untenanted keys
    (the default) are byte-identical to the historical format.
    """
    request = {"service": service, "operation": operation,
               "payload": dict(payload)}
    if tenant is not None:
        request["tenant"] = tenant
    return json.dumps(request, sort_keys=True, separators=(",", ":"))


class ServiceCache:
    """LRU + TTL cache over service responses."""

    def __init__(
        self,
        capacity: int = 1024,
        ttl: float | None = None,
        clock: Clock | None = None,
        stale_grace: float | None = None,
    ) -> None:
        """Build the cache.

        ``stale_grace`` (simulated seconds) opts in to graceful
        degradation: expired entries are *retained* for that long past
        their TTL and can be served via :meth:`get_stale` when the
        upstream service is failing.  ``None`` (the default) keeps the
        strict behaviour — expired entries are dropped on first probe.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive (or None), got {ttl}")
        if ttl is not None and clock is None:
            raise ValueError("a clock is required when ttl is set")
        if stale_grace is not None and stale_grace <= 0:
            raise ValueError(
                f"stale_grace must be positive (or None), got {stale_grace}")
        if stale_grace is not None and ttl is None:
            raise ValueError("stale_grace requires a ttl")
        self.capacity = capacity
        self.ttl = ttl
        self.clock = clock
        self.stale_grace = stale_grace
        self.stats = CacheStats()
        # key -> (value, stored_at); insertion order tracks recency.
        self._entries: OrderedDict[str, tuple[object, float]] = OrderedDict()
        # Pre-bound metric counters (see bind_metrics); None = unmirrored.
        self._metric_hits = None
        self._metric_misses = None
        self._metric_evictions = None
        self._metric_expirations = None
        self._metric_invalidations = None
        self._metric_stale_serves = None

    def bind_metrics(self, registry) -> None:
        """Mirror hit/miss/eviction accounting into a MetricsRegistry.

        The counters are pre-bound so the per-probe cost is one lock and
        one add — :class:`CacheStats` stays the source of truth and the
        registry can never disagree with it from this point on.
        """
        self._metric_hits = registry.counter(
            names.CACHE_HITS_TOTAL, "Service responses served from the local cache.").bind()
        self._metric_misses = registry.counter(
            names.CACHE_MISSES_TOTAL, "Cache probes that had to go remote.").bind()
        self._metric_evictions = registry.counter(
            names.CACHE_EVICTIONS_TOTAL, "Entries evicted by LRU capacity pressure.").bind()
        self._metric_expirations = registry.counter(
            names.CACHE_EXPIRATIONS_TOTAL, "Entries dropped because their TTL passed.").bind()
        self._metric_invalidations = registry.counter(
            names.CACHE_INVALIDATIONS_TOTAL, "Entries dropped by explicit invalidation.").bind()
        self._metric_stale_serves = registry.counter(
            names.CACHE_STALE_SERVES_TOTAL,
            "Expired entries served in degraded mode within the grace window.").bind()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Live-entry membership; stat-free (an earlier version routed
        through :meth:`get`, inflating hit/miss counts on every ``in``
        check)."""
        return self.peek(key) is not None or key in self._entries

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def _expired(self, stored_at: float) -> bool:
        return self.ttl is not None and self._now() - stored_at > self.ttl

    def _beyond_grace(self, stored_at: float) -> bool:
        """Expired *and* past the stale-grace window (drop it)."""
        if self.stale_grace is None:
            return True
        return self._now() - stored_at > self.ttl + self.stale_grace

    def get(self, key: str, default: object = _SENTINEL) -> object:
        """Cached value, refreshing recency; counts a miss when absent/expired.

        With ``stale_grace`` set, an expired-but-in-grace entry still
        misses here (fresh reads never see stale data) but is retained
        so :meth:`get_stale` can serve it in degraded mode.
        """
        entry = self._entries.get(key)
        if entry is not None:
            value, stored_at = entry
            if self._expired(stored_at):
                self.stats.expired_reads += 1
                if self._beyond_grace(stored_at):
                    del self._entries[key]
                    self.stats.expirations += 1
                    if self._metric_expirations is not None:
                        self._metric_expirations.inc()
            else:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                if self._metric_hits is not None:
                    self._metric_hits.inc()
                return value
        self.stats.misses += 1
        if self._metric_misses is not None:
            self._metric_misses.inc()
        if default is _SENTINEL:
            return None
        return default

    def peek(self, key: str) -> object | None:
        """Like :meth:`get` but without touching stats or recency."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        value, stored_at = entry
        return None if self._expired(stored_at) else value

    def get_stale(self, key: str) -> StaleEntry | None:
        """Serve an entry in degraded mode, fresh or stale.

        Returns a :class:`StaleEntry` for any retained entry — fresh,
        or expired but within ``stale_grace`` — and ``None`` otherwise.
        Serving an actually-stale entry counts on ``stats.stale_serves``
        (and the ``cache_stale_serves_total`` metric); fresh serves do
        not, so the counter measures degradation, not traffic.  This is
        the serve-stale-on-error / stale-while-revalidate read path
        used by :class:`repro.core.invoker.RichClient`.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        value, stored_at = entry
        age = self._now() - stored_at
        if not self._expired(stored_at):
            return StaleEntry(value, age)
        if self._beyond_grace(stored_at):
            del self._entries[key]
            self.stats.expirations += 1
            if self._metric_expirations is not None:
                self._metric_expirations.inc()
            return None
        self.stats.stale_serves += 1
        if self._metric_stale_serves is not None:
            self._metric_stale_serves.inc()
        return StaleEntry(value, age)

    def put(self, key: str, value: object) -> None:
        """Insert/refresh an entry, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (value, self._now())
        self.stats.puts += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self._metric_evictions is not None:
                self._metric_evictions.inc()

    def invalidate(self, key: str) -> bool:
        """Drop one entry (consistency hook); returns whether it existed."""
        existed = self._entries.pop(key, None) is not None
        if existed:
            self.stats.invalidations += 1
            if self._metric_invalidations is not None:
                self._metric_invalidations.inc()
        return existed

    def invalidate_service(self, service: str) -> int:
        """Drop every entry belonging to one service."""
        prefix = json.dumps({"service": service}, separators=(",", ":"))[1:-1]
        doomed = [key for key in self._entries if prefix in key]
        for key in doomed:
            del self._entries[key]
        self.stats.invalidations += len(doomed)
        if doomed and self._metric_invalidations is not None:
            self._metric_invalidations.inc(len(doomed))
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        self._entries.clear()

    # -- persistence -------------------------------------------------------

    def save_to(self, store: KeyValueStore, namespace: str = "cache") -> int:
        """Persist all live entries into a key-value store."""
        snapshot = {
            key: [value, stored_at]
            for key, (value, stored_at) in self._entries.items()
            if not self._expired(stored_at)
        }
        store.put(namespace, snapshot)
        return len(snapshot)

    def load_from(self, store: KeyValueStore, namespace: str = "cache") -> int:
        """Restore entries previously saved with :meth:`save_to`."""
        snapshot = store.get(namespace, default=None)
        if not isinstance(snapshot, dict):
            return 0
        loaded = 0
        for key, (value, stored_at) in snapshot.items():
            if not self._expired(stored_at):
                self._entries[key] = (value, stored_at)
                loaded += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self._metric_evictions is not None:
                self._metric_evictions.inc()
        return loaded
