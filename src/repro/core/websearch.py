"""The Figure-3 pipeline: web search → fetch → store → NLU → aggregate.

"We provide the ability to perform Web searches, analyze all of the
documents returned by a Web search, and aggregate the results from all
analyzed documents."  Key behaviours reproduced:

* each URL goes to the NLU service in a **separate request** ("the
  APIs generally only support analysis of a single document at a
  time");
* services that can analyze URLs directly are used that way; others
  get the fetched, HTML-stripped text;
* fetched documents are archived locally **along with the query itself
  and the time the query was made**, because web documents disappear
  and search results drift;
* whole directories of stored files can be re-analyzed without
  touching the network.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.aggregation import DocumentSetAggregator
from repro.core.invoker import InvocationResult, RichClient
from repro.services.nlu import ALL_FEATURES
from repro.simnet.errors import RemoteServiceError
from repro.stores.kvstore import InMemoryKeyValueStore, KeyValueStore
from repro.textproc.html import strip_html


class DocumentArchive:
    """Local store of fetched documents and the searches that found them."""

    def __init__(self, store: KeyValueStore | None = None) -> None:
        self.store = store if store is not None else InMemoryKeyValueStore()

    @staticmethod
    def _doc_key(url: str) -> str:
        return f"doc::{url}"

    @staticmethod
    def _search_key(query: str, engine: str, timestamp: float) -> str:
        return f"search::{engine}::{query}::{timestamp:.6f}"

    def store_document(self, url: str, html: str, fetched_at: float) -> None:
        """Archive one fetched page under its URL."""
        self.store.put(self._doc_key(url), {
            "url": url, "html": html, "fetched_at": fetched_at,
        })

    def get_document(self, url: str) -> dict | None:
        """The archived record for a URL, or None."""
        value = self.store.get(self._doc_key(url), default=None)
        return value if isinstance(value, dict) else None

    def has_document(self, url: str) -> bool:
        """Whether a URL has been archived."""
        return self.get_document(url) is not None

    def document_urls(self) -> list[str]:
        """Every archived document URL."""
        return [key[len("doc::"):] for key in self.store.keys("doc::")]

    def store_search(self, query: str, engine: str, timestamp: float,
                     result_urls: list[str]) -> None:
        """Record a search with its query, engine, time and result URLs."""
        self.store.put(self._search_key(query, engine, timestamp), {
            "query": query,
            "engine": engine,
            "timestamp": timestamp,
            "result_urls": result_urls,
        })

    def searches(self, query: str | None = None) -> list[dict]:
        """All recorded searches, optionally filtered by query text."""
        found = []
        for key in self.store.keys("search::"):
            record = self.store.get(key)
            if isinstance(record, dict) and (query is None or record["query"] == query):
                found.append(record)
        found.sort(key=lambda record: record["timestamp"])
        return found

    def export_to_directory(self, directory: str | Path) -> int:
        """Write every archived document as an .html file; returns count.

        File names are derived from URLs so a directory re-analysis
        (:meth:`WebSearchAnalyzer.analyze_directory`) can proceed
        offline, as §2.2 describes.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        count = 0
        for url in self.document_urls():
            document = self.get_document(url)
            safe_name = url.replace("://", "_").replace("/", "_") + ".html"
            (target / safe_name).write_text(document["html"])
            count += 1
        return count


class WebSearchAnalyzer:
    """Search engines + the web + NLU services, composed via the RichClient."""

    def __init__(
        self,
        client: RichClient,
        web_service: str = "worldwide-web",
        archive: DocumentArchive | None = None,
    ) -> None:
        self.client = client
        self.web_service = web_service
        self.archive = archive if archive is not None else DocumentArchive()

    # -- search ------------------------------------------------------------

    def search(
        self,
        query: str,
        engine: str | None = None,
        limit: int = 10,
        news_only: bool = False,
    ) -> InvocationResult:
        """Run one search (on the best-ranked engine unless named) and
        archive the query, engine, time and result URLs."""
        engine = engine or self.client.best_service("search")
        result = self.client.invoke(
            engine, "search", {"query": query, "limit": limit, "news_only": news_only}
        )
        self.archive.store_search(
            query=query,
            engine=engine,
            timestamp=self.client.clock.now(),
            result_urls=[hit["url"] for hit in result.value["results"]],
        )
        return result

    def multi_engine_search(
        self,
        query: str,
        engines: list[str] | None = None,
        limit: int = 10,
        news_only: bool = False,
    ) -> list[str]:
        """Union of several engines' results, preserving best-rank order.

        Different engines crawl different slices of the web, so the
        union sees more than any single engine — the reason the SDK
        "allows different search engines to be used".
        """
        if engines is None:
            engines = [service.name for service in
                       self.client.registry.services_of_kind("search")]
        merged: list[str] = []
        seen: set[str] = set()
        per_engine = [
            self.search(query, engine, limit=limit, news_only=news_only).value["results"]
            for engine in engines
        ]
        for rank in range(max((len(results) for results in per_engine), default=0)):
            for results in per_engine:
                if rank < len(results):
                    url = results[rank]["url"]
                    if url not in seen:
                        seen.add(url)
                        merged.append(url)
        return merged

    # -- fetch and store ------------------------------------------------------

    def fetch(self, url: str, store: bool = True) -> str:
        """Fetch a page's HTML (archive-first, then the web service)."""
        archived = self.archive.get_document(url)
        if archived is not None:
            return archived["html"]
        result = self.client.invoke(self.web_service, "fetch", {"url": url})
        html = result.value["html"]
        if store:
            self.archive.store_document(url, html, fetched_at=self.client.clock.now())
        return html

    # -- analyze ------------------------------------------------------------------

    def analyze_url(
        self,
        url: str,
        nlu_service: str,
        features: tuple[str, ...] = ALL_FEATURES,
    ) -> dict:
        """Analyze one URL with one NLU service (one request per URL).

        Prefers the service's own ``analyze_url`` (paper: "if the
        natural language understanding service has the ability to
        analyze Web documents specified by a URL, the rich SDK can pass
        the URLs"); otherwise fetches the page and sends stripped text.
        """
        try:
            result = self.client.invoke(
                nlu_service, "analyze_url", {"url": url, "features": list(features)}
            )
            return result.value
        except RemoteServiceError as error:
            if error.status != 400:
                raise
        html = self.fetch(url)
        result = self.client.invoke(
            nlu_service, "analyze", {"text": strip_html(html), "features": list(features)}
        )
        return result.value

    def analyze_search_results(
        self,
        query: str,
        engine: str | None = None,
        nlu_service: str | None = None,
        limit: int = 10,
        news_only: bool = False,
        features: tuple[str, ...] = ALL_FEATURES,
    ) -> DocumentSetAggregator:
        """The full Figure-3 flow for one query.

        Searches, fetches and archives each hit, analyzes every
        document individually, and aggregates the results.
        """
        nlu_service = nlu_service or self.client.best_service("nlu")
        search_result = self.search(query, engine, limit=limit, news_only=news_only)
        aggregator = DocumentSetAggregator()
        for hit in search_result.value["results"]:
            self.fetch(hit["url"])  # archive before analysis, per the paper
            analysis = self.analyze_url(hit["url"], nlu_service, features)
            aggregator.add_analysis(analysis)
        return aggregator

    def analyze_texts(
        self,
        texts: list[str],
        nlu_service: str | None = None,
        features: tuple[str, ...] = ALL_FEATURES,
    ) -> DocumentSetAggregator:
        """Analyze a list of local text documents and aggregate."""
        nlu_service = nlu_service or self.client.best_service("nlu")
        aggregator = DocumentSetAggregator()
        for text in texts:
            result = self.client.invoke(
                nlu_service, "analyze", {"text": text, "features": list(features)}
            )
            aggregator.add_analysis(result.value)
        return aggregator

    def analyze_directory(
        self,
        directory: str | Path,
        nlu_service: str | None = None,
        features: tuple[str, ...] = ALL_FEATURES,
        pattern: str = "*.html",
    ) -> DocumentSetAggregator:
        """Analyze every matching file in a directory and aggregate.

        HTML files are stripped to text first; the directory typically
        holds the archived results of an earlier web search (§2.2's
        "directory contains all HTML documents identified by responses
        to a search engine query made at a certain point in time").
        """
        texts = []
        for path in sorted(Path(directory).glob(pattern)):
            content = path.read_text()
            if path.suffix.lower() in (".html", ".htm"):
                content = strip_html(content)
            texts.append(content)
        return self.analyze_texts(texts, nlu_service, features)
