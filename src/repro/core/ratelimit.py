"""Proactive client-side rate limiting (token bucket on simulated time).

Services enforce quotas by *rejecting* over-limit calls (HTTP 429);
a well-behaved client should not get there.  :class:`TokenBucket`
smooths the client's own request rate so it stays under a service's
published limit, complementing the reactive budget checks in
:mod:`repro.core.quota`: the budget says "stop when spent", the bucket
says "slow down so you never trip the server".

Time comes from the simulation clock, so tests and benchmarks can
drive weeks of traffic in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.clock import Clock
from repro.util.errors import ReproError


class RateLimitExceededError(ReproError):
    """A non-blocking acquire found the bucket empty."""

    def __init__(self, service: str, wait_needed: float) -> None:
        super().__init__(
            f"rate limit for {service!r}: next permit in {wait_needed:.3f}s")
        self.service = service
        self.wait_needed = wait_needed


@dataclass
class BucketStats:
    """Counters for one bucket: permits granted, throttles, wait time."""
    acquired: int = 0
    throttled: int = 0
    total_wait: float = 0.0


class TokenBucket:
    """Classic token bucket: ``rate`` permits/second, ``burst`` capacity."""

    def __init__(self, clock: Clock, rate: float, burst: int = 1,
                 service: str = "<service>") -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.clock = clock
        self.rate = rate
        self.burst = burst
        self.service = service
        self.stats = BucketStats()
        self._tokens = float(burst)
        self._last_refill = clock.now()

    def _refill(self) -> None:
        now = self.clock.now()
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last_refill = now

    @property
    def available(self) -> float:
        """Permits available right now (after refill)."""
        self._refill()
        return self._tokens

    def try_acquire(self) -> bool:
        """Take a permit if one is available; never waits."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.stats.acquired += 1
            return True
        self.stats.throttled += 1
        return False

    def acquire(self) -> float:
        """Take a permit, waiting (on the simulation clock) if needed.

        Returns the time waited.  Waiting *charges* the clock, so the
        throttling shows up in end-to-end simulated latency, as it
        would in wall time.
        """
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.stats.acquired += 1
            return 0.0
        needed = (1.0 - self._tokens) / self.rate
        self.clock.charge(needed)
        self.stats.total_wait += needed
        self.stats.throttled += 1
        self._refill()
        self._tokens -= 1.0
        self.stats.acquired += 1
        return needed

    def acquire_or_raise(self) -> None:
        """Non-blocking acquire; raises when empty (for async callers)."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.stats.acquired += 1
            return
        self.stats.throttled += 1
        raise RateLimitExceededError(self.service,
                                     (1.0 - self._tokens) / self.rate)


class ServiceRateLimiter:
    """Per-service buckets, typically sized from the services' quotas."""

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    def configure(self, service: str, rate: float, burst: int = 1) -> TokenBucket:
        """Install a token bucket for this service."""
        bucket = TokenBucket(self.clock, rate, burst, service=service)
        self._buckets[service] = bucket
        return bucket

    def bucket(self, service: str) -> TokenBucket | None:
        """This service's bucket, or None if unconfigured."""
        return self._buckets.get(service)

    def acquire(self, service: str) -> float:
        """Wait for a permit (no-op for unconfigured services)."""
        bucket = self._buckets.get(service)
        if bucket is None:
            return 0.0
        return bucket.acquire()

    def acquire_or_raise(self, service: str) -> None:
        """Non-blocking acquire (no-op for unconfigured services).

        Raises :class:`RateLimitExceededError` when the bucket is empty —
        the error carries ``wait_needed``, which the SDK gateway turns
        into a 429 envelope with a ``retry_after`` hint.
        """
        bucket = self._buckets.get(service)
        if bucket is not None:
            bucket.acquire_or_raise()
