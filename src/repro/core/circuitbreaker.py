"""Circuit breakers: stop hammering a service that keeps failing.

Retry (§2.1) handles *transient* failures; a circuit breaker handles
*sustained* ones.  After ``failure_threshold`` consecutive failures the
circuit **opens**: calls fail immediately (no network, no waiting)
until ``cooldown`` simulated seconds pass.  Then the circuit goes
**half-open**: one probe call is allowed through; success closes the
circuit, failure re-opens it for another cooldown.  This protects both
the client (no latency wasted on a dead service) and the service (no
retry storm while it recovers).

State transitions run on the simulation clock, so tests can script
hour-long outages instantly.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass
from enum import Enum
from typing import TypeVar

from repro.util.clock import Clock
from repro.util.errors import ReproError

T = TypeVar("T")


class CircuitState(Enum):
    """The classic three breaker states."""
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitOpenError(ReproError):
    """The circuit is open: the call was rejected without being sent."""

    def __init__(self, service: str, retry_at: float) -> None:
        super().__init__(
            f"circuit for {service!r} is open; next probe allowed at "
            f"t={retry_at:.3f}s")
        self.service = service
        self.retry_at = retry_at


@dataclass
class BreakerStats:
    """Counters for one breaker: allowed/rejected calls, opens, closes."""
    calls_allowed: int = 0
    calls_rejected: int = 0
    opens: int = 0
    closes: int = 0


class CircuitBreaker:
    """One service's circuit."""

    def __init__(self, clock: Clock, service: str = "<service>",
                 failure_threshold: int = 5, cooldown: float = 30.0) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got "
                             f"{failure_threshold}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.clock = clock
        self.service = service
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.stats = BreakerStats()
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> CircuitState:
        """Current state; an expired cooldown lazily moves OPEN to HALF_OPEN."""
        if (self._state is CircuitState.OPEN
                and self.clock.now() - self._opened_at >= self.cooldown):
            self._state = CircuitState.HALF_OPEN
        return self._state

    # -- bookkeeping hooks --------------------------------------------------

    def allow(self) -> bool:
        """Whether a call may proceed right now."""
        state = self.state
        if state is CircuitState.OPEN:
            self.stats.calls_rejected += 1
            return False
        self.stats.calls_allowed += 1
        return True

    def record_success(self) -> None:
        """Note a success: closes the circuit and resets the failure run."""
        if self._state in (CircuitState.HALF_OPEN, CircuitState.OPEN):
            self.stats.closes += 1
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Note a failure: trips on a failed probe or a full failure run."""
        self._consecutive_failures += 1
        if self._state is CircuitState.HALF_OPEN:
            self._trip()  # the probe failed: straight back to open
        elif (self._state is CircuitState.CLOSED
              and self._consecutive_failures >= self.failure_threshold):
            self._trip()

    def _trip(self) -> None:
        self._state = CircuitState.OPEN
        self._opened_at = self.clock.now()
        self.stats.opens += 1

    # -- call wrapper ----------------------------------------------------------

    def call(self, function: Callable[[], T]) -> T:
        """Run ``function`` under the circuit's protection."""
        if not self.allow():
            raise CircuitOpenError(self.service, self._opened_at + self.cooldown)
        try:
            result = function()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result


class CircuitBreakerRegistry:
    """Per-service breakers sharing one configuration."""

    def __init__(self, clock: Clock, failure_threshold: int = 5,
                 cooldown: float = 30.0,
                 overrides: Mapping[str, tuple[int, float]] | None = None) -> None:
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.overrides = dict(overrides or {})
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, service: str) -> CircuitBreaker:
        """This service's breaker, created on first use (with overrides)."""
        if service not in self._breakers:
            threshold, cooldown = self.overrides.get(
                service, (self.failure_threshold, self.cooldown))
            self._breakers[service] = CircuitBreaker(
                self.clock, service, threshold, cooldown)
        return self._breakers[service]

    def call(self, service: str, function: Callable[[], T]) -> T:
        """Run ``function`` through this service's breaker."""
        return self.breaker(service).call(function)

    def open_circuits(self) -> list[str]:
        """Names of services whose circuit is currently open."""
        return [name for name, breaker in self._breakers.items()
                if breaker.state is CircuitState.OPEN]
