"""Circuit breakers: stop hammering a service that keeps failing.

Retry (§2.1) handles *transient* failures; a circuit breaker handles
*sustained* ones.  After ``failure_threshold`` consecutive failures the
circuit **opens**: calls fail immediately (no network, no waiting)
until ``cooldown`` simulated seconds pass.  Then the circuit goes
**half-open**: exactly one probe call is allowed through — concurrent
callers during the probe fast-fail as if the circuit were still open —
success closes the circuit, failure re-opens it for another cooldown.
This protects both the client (no latency wasted on a dead service) and
the service (no retry storm, and no probe *stampede*, while it
recovers).

State transitions run on the simulation clock, so tests can script
hour-long outages instantly.  Every transition is recorded in a
chronological log (``breaker.transitions``) and, when metrics are
bound, on the ``circuit_transitions_total`` counter — which is what the
chaos harness's state-machine conformance invariant checks against the
legal transition set.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass
from enum import Enum
from typing import TypeVar

from repro.obs import names
from repro.util.clock import Clock
from repro.util.errors import ReproError

T = TypeVar("T")


class CircuitState(Enum):
    """The classic three breaker states."""
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: The legal state machine: every observed transition must be one of
#: these (the chaos conformance invariant checks the transition log
#: against this set).
LEGAL_TRANSITIONS = frozenset({
    (CircuitState.CLOSED, CircuitState.OPEN),        # failure run trips
    (CircuitState.OPEN, CircuitState.HALF_OPEN),     # cooldown elapsed
    (CircuitState.HALF_OPEN, CircuitState.OPEN),     # probe failed
    (CircuitState.HALF_OPEN, CircuitState.CLOSED),   # probe succeeded
})


class CircuitOpenError(ReproError):
    """The circuit is open: the call was rejected without being sent."""

    def __init__(self, service: str, retry_at: float) -> None:
        super().__init__(
            f"circuit for {service!r} is open; next probe allowed at "
            f"t={retry_at:.3f}s")
        self.service = service
        self.retry_at = retry_at


@dataclass
class BreakerStats:
    """Counters for one breaker.

    ``probe_rejections`` counts half-open callers turned away because
    another probe was already in flight (they are also included in
    ``calls_rejected``).
    """

    calls_allowed: int = 0
    calls_rejected: int = 0
    opens: int = 0
    closes: int = 0
    probe_rejections: int = 0


@dataclass(frozen=True)
class Transition:
    """One recorded state change: when, from what, to what."""

    at: float
    source: CircuitState
    target: CircuitState


class CircuitBreaker:
    """One service's circuit."""

    def __init__(self, clock: Clock, service: str = "<service>",
                 failure_threshold: int = 5, cooldown: float = 30.0) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got "
                             f"{failure_threshold}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.clock = clock
        self.service = service
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.stats = BreakerStats()
        self.transitions: list[Transition] = []
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        # At most one half-open probe may be in flight at a time.
        self._probe_inflight = False
        # Pre-bound metric counters (bind_metrics); None = unmirrored.
        self._metric_transitions = None
        self._metric_rejected = None

    def bind_metrics(self, registry) -> None:
        """Mirror transitions/rejections into a MetricsRegistry.

        Registers ``circuit_transitions_total`` (labelled by service
        and from/to state) and ``circuit_rejected_total`` — the two
        series an operator alerts on to see circuits flapping.
        """
        self._metric_transitions = registry.counter(
            names.CIRCUIT_TRANSITIONS_TOTAL,
            "Circuit-breaker state transitions, by service and edge.")
        self._metric_rejected = registry.counter(
            names.CIRCUIT_REJECTED_TOTAL,
            "Calls rejected by an open (or probing) circuit, by service.")

    def _transition(self, target: CircuitState) -> None:
        source = self._state
        if source is target:
            return
        self._state = target
        self.transitions.append(
            Transition(self.clock.now(), source, target))
        if self._metric_transitions is not None:
            self._metric_transitions.inc(
                service=self.service,
                source=source.value, target=target.value)

    @property
    def state(self) -> CircuitState:
        """Current state; an expired cooldown lazily moves OPEN to HALF_OPEN."""
        if (self._state is CircuitState.OPEN
                and self.clock.now() - self._opened_at >= self.cooldown):
            self._transition(CircuitState.HALF_OPEN)
            self._probe_inflight = False
        return self._state

    # -- bookkeeping hooks --------------------------------------------------

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In HALF_OPEN, only the first caller becomes the probe; further
        callers are rejected exactly as if the circuit were open (a
        probe stampede would defeat the point of probing).
        """
        state = self.state
        if state is CircuitState.OPEN:
            self.stats.calls_rejected += 1
            if self._metric_rejected is not None:
                self._metric_rejected.inc(service=self.service)
            return False
        if state is CircuitState.HALF_OPEN:
            if self._probe_inflight:
                self.stats.calls_rejected += 1
                self.stats.probe_rejections += 1
                if self._metric_rejected is not None:
                    self._metric_rejected.inc(service=self.service)
                return False
            self._probe_inflight = True
        self.stats.calls_allowed += 1
        return True

    def record_success(self) -> None:
        """Note a success: closes the circuit and resets the failure run."""
        if self._state in (CircuitState.HALF_OPEN, CircuitState.OPEN):
            self.stats.closes += 1
        self._transition(CircuitState.CLOSED)
        self._consecutive_failures = 0
        self._probe_inflight = False

    def record_failure(self) -> None:
        """Note a failure: trips on a failed probe or a full failure run."""
        self._consecutive_failures += 1
        self._probe_inflight = False
        if self._state is CircuitState.HALF_OPEN:
            self._trip()  # the probe failed: straight back to open
        elif (self._state is CircuitState.CLOSED
              and self._consecutive_failures >= self.failure_threshold):
            self._trip()

    def _trip(self) -> None:
        self._transition(CircuitState.OPEN)
        self._opened_at = self.clock.now()
        self.stats.opens += 1

    # -- call wrapper ----------------------------------------------------------

    def call(self, function: Callable[[], T]) -> T:
        """Run ``function`` under the circuit's protection."""
        if not self.allow():
            raise CircuitOpenError(self.service, self._opened_at + self.cooldown)
        try:
            result = function()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result


class CircuitBreakerRegistry:
    """Per-service breakers sharing one configuration."""

    def __init__(self, clock: Clock, failure_threshold: int = 5,
                 cooldown: float = 30.0,
                 overrides: Mapping[str, tuple[int, float]] | None = None) -> None:
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.overrides = dict(overrides or {})
        self._breakers: dict[str, CircuitBreaker] = {}
        self._metrics = None

    def bind_metrics(self, registry) -> None:
        """Mirror every breaker's transitions into ``registry``."""
        self._metrics = registry
        for breaker in self._breakers.values():
            breaker.bind_metrics(registry)

    def breaker(self, service: str) -> CircuitBreaker:
        """This service's breaker, created on first use (with overrides)."""
        if service not in self._breakers:
            threshold, cooldown = self.overrides.get(
                service, (self.failure_threshold, self.cooldown))
            breaker = CircuitBreaker(self.clock, service, threshold, cooldown)
            if self._metrics is not None:
                breaker.bind_metrics(self._metrics)
            self._breakers[service] = breaker
        return self._breakers[service]

    def call(self, service: str, function: Callable[[], T]) -> T:
        """Run ``function`` through this service's breaker."""
        return self.breaker(service).call(function)

    def open_circuits(self) -> list[str]:
        """Names of services whose circuit is currently open."""
        return [name for name, breaker in self._breakers.items()
                if breaker.state is CircuitState.OPEN]

    def all_breakers(self) -> list[CircuitBreaker]:
        """Every breaker created so far (for invariant checks)."""
        return list(self._breakers.values())
