"""Quality evaluation for service responses.

The paper lets "users provide methods to the rich SDK which evaluate
the quality of data provided by a service" and names "more
sophisticated methods ... for evaluating the quality of responses" as
future work.  This module supplies that machinery:

* :class:`GoldBasedEvaluator` — quality against labelled ground truth
  (entity F1 + sentiment accuracy), when gold data exists;
* :class:`AgreementEvaluator` — *reference-free* quality: score one
  provider's output by its agreement with the consensus of its peers,
  usable in production where no gold labels exist;
* :class:`CompositeEvaluator` — weighted blend of evaluators;
* :class:`RollingQualityTracker` — windowed quality averages per
  service with simple drift detection (recent window vs baseline), so
  an application notices a provider silently degrading.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.aggregation import MultiServiceCombiner


class GoldBasedEvaluator:
    """Quality from labelled documents: mean of entity F1 and sentiment
    accuracy (each in [0, 1])."""

    def evaluate(self, analysis: Mapping[str, object],
                 gold_entities: Sequence[str],
                 gold_sentiment: Mapping[str, int] | None = None) -> float:
        """Score an analysis against gold labels, in [0, 1]."""
        score = MultiServiceCombiner.score_against_gold(
            analysis, list(gold_entities), gold_sentiment)
        parts = [score["f1"]]
        if "sentiment_accuracy" in score:
            parts.append(score["sentiment_accuracy"])
        return sum(parts) / len(parts)


class AgreementEvaluator:
    """Reference-free quality: agreement with the peer consensus.

    Given analyses of the *same* document from several providers, a
    provider's quality is the F1 between its entity set and the set of
    entities a majority of providers found.  A provider that hallucinates
    entities or misses common ones scores low without any gold labels —
    the "comparing the output of these services" idea from §2.1 turned
    into a number.
    """

    def __init__(self, majority_fraction: float = 0.5) -> None:
        if not 0.0 < majority_fraction <= 1.0:
            raise ValueError(
                f"majority_fraction must be in (0, 1], got {majority_fraction}")
        self.majority_fraction = majority_fraction

    def consensus_entities(
        self, analyses: Mapping[str, Mapping[str, object]]
    ) -> set[str]:
        """Entity ids found by at least the majority fraction of providers."""
        combined = MultiServiceCombiner.combine_entities(
            analyses, min_confidence=self.majority_fraction)
        return {entry["id"] for entry in combined}

    def evaluate_all(
        self, analyses: Mapping[str, Mapping[str, object]]
    ) -> dict[str, float]:
        """Per-provider agreement-F1 against the consensus."""
        consensus = self.consensus_entities(analyses)
        scores: dict[str, float] = {}
        for provider, analysis in analyses.items():
            found = {
                entity["id"]
                for entity in analysis.get("entities", ())  # type: ignore[union-attr]
                if entity.get("disambiguated", True)
            }
            if not consensus and not found:
                scores[provider] = 1.0
                continue
            true_positive = len(found & consensus)
            precision = true_positive / len(found) if found else 0.0
            recall = true_positive / len(consensus) if consensus else 0.0
            scores[provider] = (
                2 * precision * recall / (precision + recall)
                if precision + recall else 0.0
            )
        return scores


class CompositeEvaluator:
    """Weighted blend of already-computed quality components."""

    def __init__(self, weights: Mapping[str, float]) -> None:
        if not weights:
            raise ValueError("CompositeEvaluator needs at least one component")
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.weights = {name: weight / total for name, weight in weights.items()}

    def evaluate(self, components: Mapping[str, float]) -> float:
        """Weighted sum of the named components (all must be present)."""
        missing = set(self.weights) - set(components)
        if missing:
            raise ValueError(f"missing quality components: {sorted(missing)}")
        return sum(self.weights[name] * components[name] for name in self.weights)


@dataclass
class DriftReport:
    """Outcome of a drift check for one service."""

    service: str
    baseline_mean: float
    recent_mean: float
    drifted: bool

    @property
    def delta(self) -> float:
        """recent_mean - baseline_mean (negative = got worse)."""
        return self.recent_mean - self.baseline_mean


class RollingQualityTracker:
    """Windowed quality history with degradation detection.

    Keeps the last ``window`` observations per service; the first
    ``baseline`` of them form the reference.  :meth:`check_drift`
    reports services whose recent mean quality fell more than
    ``tolerance`` below their baseline mean — the signal to re-rank or
    fail away from a provider that got worse.
    """

    def __init__(self, window: int = 200, baseline: int = 50,
                 tolerance: float = 0.1) -> None:
        if baseline <= 0 or window <= baseline:
            raise ValueError("need window > baseline > 0")
        self.window = window
        self.baseline = baseline
        self.tolerance = tolerance
        self._history: dict[str, deque[float]] = {}
        self._baselines: dict[str, list[float]] = {}

    def observe(self, service: str, quality: float) -> None:
        """Record one quality observation for a service."""
        history = self._history.setdefault(service, deque(maxlen=self.window))
        history.append(float(quality))
        reference = self._baselines.setdefault(service, [])
        if len(reference) < self.baseline:
            reference.append(float(quality))

    def mean_quality(self, service: str, recent: int | None = None) -> float | None:
        """Mean quality over the window (or the last ``recent``), or None."""
        history = self._history.get(service)
        if not history:
            return None
        values = list(history)[-recent:] if recent else list(history)
        return sum(values) / len(values)

    def check_drift(self, service: str, recent: int = 20) -> DriftReport | None:
        """Compare the last ``recent`` observations to the baseline."""
        reference = self._baselines.get(service)
        history = self._history.get(service)
        if not reference or history is None or len(history) < recent:
            return None
        baseline_mean = sum(reference) / len(reference)
        recent_values = list(history)[-recent:]
        recent_mean = sum(recent_values) / len(recent_values)
        return DriftReport(
            service=service,
            baseline_mean=baseline_mean,
            recent_mean=recent_mean,
            drifted=recent_mean < baseline_mean - self.tolerance,
        )

    def degraded_services(self, recent: int = 20) -> list[DriftReport]:
        """All services currently drifting below their baseline."""
        reports = []
        for service in self._history:
            report = self.check_drift(service, recent=recent)
            if report is not None and report.drifted:
                reports.append(report)
        return reports
