"""Aggregating NLU results across documents and across services (§2.2).

Two aggregators:

* :class:`DocumentSetAggregator` — "support for analyzing multiple
  documents and aggregating the results": entity and keyword
  frequencies over a document set, per-entity aggregate sentiment
  ("how favorably people, companies, and other entities are
  represented on the Web"), concept profiles.

* :class:`MultiServiceCombiner` — "if the results are inconsistent,
  the application could assign a higher degree of confidence to
  entities ... identified by more services": merges analyses of the
  *same* document from several providers, with agreement-based
  confidence, and scores providers against gold labels (the SDK's
  quality-evaluation hook).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field


@dataclass
class EntityAggregate:
    """One entity's footprint across a document set."""

    entity_id: str
    name: str
    entity_type: str
    document_count: int = 0
    total_mentions: int = 0
    sentiment_scores: list[float] = field(default_factory=list)

    @property
    def mean_sentiment(self) -> float | None:
        """Average sentiment across mentions, or None with no scores."""
        if not self.sentiment_scores:
            return None
        return sum(self.sentiment_scores) / len(self.sentiment_scores)

    @property
    def favorability(self) -> str:
        """positive / negative / neutral, from the mean sentiment."""
        mean = self.mean_sentiment
        if mean is None or abs(mean) <= 0.05:
            return "neutral"
        return "positive" if mean > 0 else "negative"


class DocumentSetAggregator:
    """Accumulates per-document NLU analyses into corpus-level results."""

    def __init__(self) -> None:
        self.documents_analyzed = 0
        self._entities: dict[str, EntityAggregate] = {}
        self._keywords: dict[str, int] = defaultdict(int)
        self._keyword_documents: dict[str, int] = defaultdict(int)
        self._concepts: dict[str, int] = defaultdict(int)
        self._document_sentiments: list[float] = []

    def add_analysis(self, analysis: Mapping[str, object]) -> None:
        """Fold in one document's NLU analysis (the service's JSON)."""
        self.documents_analyzed += 1
        for entity in analysis.get("entities", ()):  # type: ignore[union-attr]
            if not entity.get("disambiguated", True):
                continue
            aggregate = self._entities.get(entity["id"])
            if aggregate is None:
                aggregate = EntityAggregate(entity["id"], entity["name"], entity["type"])
                self._entities[entity["id"]] = aggregate
            aggregate.document_count += 1
            aggregate.total_mentions += int(entity.get("count", 1))
        for keyword in analysis.get("keywords", ()):  # type: ignore[union-attr]
            self._keywords[keyword["text"]] += int(keyword.get("count", 1))
            self._keyword_documents[keyword["text"]] += 1
        for concept in analysis.get("concepts", ()):  # type: ignore[union-attr]
            self._concepts[concept["concept"]] += 1
        sentiment = analysis.get("sentiment")
        if isinstance(sentiment, Mapping) and "score" in sentiment:
            self._document_sentiments.append(float(sentiment["score"]))
        entity_sentiment = analysis.get("entity_sentiment")
        if isinstance(entity_sentiment, Mapping):
            for entity_id, details in entity_sentiment.items():
                aggregate = self._entities.get(entity_id)
                if aggregate is not None and isinstance(details, Mapping):
                    aggregate.sentiment_scores.append(float(details["score"]))

    # -- results ----------------------------------------------------------------

    def top_entities(self, limit: int = 10) -> list[EntityAggregate]:
        """Entities by document count then mentions — the most *relevant*
        named entities for the query that produced the document set."""
        ranked = sorted(
            self._entities.values(),
            key=lambda agg: (-agg.document_count, -agg.total_mentions, agg.entity_id),
        )
        return ranked[:limit]

    def top_keywords(self, limit: int = 10) -> list[tuple[str, int, int]]:
        """(keyword, total count, documents containing it), most frequent first."""
        ranked = sorted(
            self._keywords.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            (keyword, count, self._keyword_documents[keyword])
            for keyword, count in ranked[:limit]
        ]

    def concept_profile(self) -> dict[str, int]:
        """Concept -> number of documents exhibiting it."""
        return dict(self._concepts)

    def entity_sentiment_report(self) -> list[dict]:
        """Per-entity favorability across the set, most-discussed first."""
        report = []
        for aggregate in self.top_entities(limit=len(self._entities)):
            report.append(
                {
                    "entity": aggregate.entity_id,
                    "name": aggregate.name,
                    "type": aggregate.entity_type,
                    "documents": aggregate.document_count,
                    "mentions": aggregate.total_mentions,
                    "mean_sentiment": aggregate.mean_sentiment,
                    "favorability": aggregate.favorability,
                }
            )
        return report

    def mean_document_sentiment(self) -> float | None:
        """Average document-level sentiment, or None before any add()."""
        if not self._document_sentiments:
            return None
        return sum(self._document_sentiments) / len(self._document_sentiments)


class MultiServiceCombiner:
    """Combines analyses of one document from several NLU providers."""

    @staticmethod
    def combine_entities(
        analyses: Mapping[str, Mapping[str, object]],
        min_confidence: float = 0.0,
    ) -> list[dict]:
        """Merge entity lists with agreement-based confidence.

        Confidence = fraction of providers that identified the entity.
        Entities found by more services get higher confidence, exactly
        as §2.1 prescribes for inconsistent results.
        """
        provider_count = len(analyses)
        if provider_count == 0:
            return []
        found_by: dict[str, list[str]] = defaultdict(list)
        details: dict[str, dict] = {}
        mention_counts: dict[str, list[int]] = defaultdict(list)
        for provider, analysis in analyses.items():
            for entity in analysis.get("entities", ()):  # type: ignore[union-attr]
                if not entity.get("disambiguated", True):
                    continue
                found_by[entity["id"]].append(provider)
                details.setdefault(entity["id"], {
                    "id": entity["id"],
                    "name": entity["name"],
                    "type": entity["type"],
                })
                mention_counts[entity["id"]].append(int(entity.get("count", 1)))
        combined = []
        for entity_id, providers in found_by.items():
            confidence = len(providers) / provider_count
            if confidence < min_confidence:
                continue
            entry = dict(details[entity_id])
            entry["confidence"] = round(confidence, 4)
            entry["providers"] = sorted(providers)
            entry["count"] = max(mention_counts[entity_id])
            combined.append(entry)
        combined.sort(key=lambda item: (-item["confidence"], item["id"]))
        return combined

    @staticmethod
    def combine_partial(
        outcomes: Mapping[str, object],
        min_confidence: float = 0.0,
    ) -> dict:
        """Degraded aggregation over a mixed success/failure fan-out.

        Takes the per-provider dict produced by
        :meth:`repro.core.invoker.RichClient.invoke_redundant` — where a
        failed provider maps to its *exception* — and combines whatever
        analyses actually arrived.  Confidence is computed against the
        providers that **answered** (an entity found by 2 of 2 live
        providers is unanimous even when a third provider was down),
        and the result is explicitly marked::

            {"entities": [...],          # combine_entities over the answers
             "degraded": bool,           # any provider failed?
             "providers_used": [...],    # sorted names that answered
             "providers_failed": [...],  # sorted names that did not
             "coverage": float}          # used / total, 0.0 when none

        Raises ``ValueError`` when *no* provider answered — there is
        nothing to degrade to, and inventing an empty analysis would
        hide a total outage.
        """
        analyses: dict[str, Mapping[str, object]] = {}
        failed: list[str] = []
        for provider, outcome in outcomes.items():
            if isinstance(outcome, BaseException):
                failed.append(provider)
                continue
            value = getattr(outcome, "value", outcome)
            if isinstance(value, Mapping):
                analyses[provider] = value
            else:
                failed.append(provider)
        if not analyses:
            raise ValueError(
                f"no provider produced an analysis (all "
                f"{len(outcomes)} failed)")
        total = len(outcomes)
        return {
            "entities": MultiServiceCombiner.combine_entities(
                analyses, min_confidence=min_confidence),
            "degraded": bool(failed),
            "providers_used": sorted(analyses),
            "providers_failed": sorted(failed),
            "coverage": round(len(analyses) / total, 4) if total else 0.0,
        }

    @staticmethod
    def combine_entity_sentiment(
        analyses: Mapping[str, Mapping[str, object]]
    ) -> dict[str, dict]:
        """Average per-entity sentiment across providers."""
        totals: dict[str, list[float]] = defaultdict(list)
        for analysis in analyses.values():
            entity_sentiment = analysis.get("entity_sentiment")
            if not isinstance(entity_sentiment, Mapping):
                continue
            for entity_id, detail in entity_sentiment.items():
                totals[entity_id].append(float(detail["score"]))
        combined = {}
        for entity_id, scores in totals.items():
            mean = sum(scores) / len(scores)
            combined[entity_id] = {
                "score": round(mean, 4),
                "providers": len(scores),
                "label": "positive" if mean > 0.05 else
                         "negative" if mean < -0.05 else "neutral",
            }
        return combined

    @staticmethod
    def score_against_gold(
        analysis: Mapping[str, object],
        gold_entities: Sequence[str],
        gold_sentiment: Mapping[str, int] | None = None,
    ) -> dict[str, float]:
        """Precision / recall / F1 of one provider's entities vs gold,
        plus sentiment-sign accuracy when gold stances are given.

        This is the kind of user-supplied quality evaluator the paper
        says can be plugged into the SDK; its F1 feeds the monitor's
        quality history via ``rate_quality``.
        """
        found = {
            entity["id"]
            for entity in analysis.get("entities", ())  # type: ignore[union-attr]
            if entity.get("disambiguated", True)
        }
        gold = set(gold_entities)
        true_positive = len(found & gold)
        precision = true_positive / len(found) if found else 0.0
        recall = true_positive / len(gold) if gold else 1.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        result = {"precision": precision, "recall": recall, "f1": f1}
        if gold_sentiment:
            entity_sentiment = analysis.get("entity_sentiment", {})
            judged = correct = 0
            for entity_id, stance in gold_sentiment.items():
                if stance == 0:
                    continue
                judged += 1
                detail = entity_sentiment.get(entity_id) if isinstance(
                    entity_sentiment, Mapping
                ) else None
                score = float(detail["score"]) if detail else 0.0
                if score != 0 and (score > 0) == (stance > 0):
                    correct += 1
            result["sentiment_accuracy"] = correct / judged if judged else 1.0
        return result
