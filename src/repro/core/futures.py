"""ListenableFuture-style asynchronous results.

The paper implements asynchronous service calls with Guava's
``ListenableFuture``: a future plus the ability to register callbacks
that run when the computation completes.  :class:`ListenableFuture`
reproduces that contract over :mod:`concurrent.futures`, and
:class:`CallbackExecutor` is the bounded thread pool §2.1 prescribes
("to prevent the number of threads from becoming too large in corner
cases, we use thread pools of limited size").
"""

from __future__ import annotations

import contextvars
import threading
from collections.abc import Callable
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Generic, TypeVar

T = TypeVar("T")


class ListenableFuture(Generic[T]):
    """A future with registered completion callbacks.

    Callbacks receive the future itself and run exactly once, on the
    completing thread — or immediately on the registering thread when
    the future is already done (Guava's semantics).

    A callback that raises cannot poison the completing thread or
    starve the remaining callbacks: the exception is captured into
    ``listener_errors`` (Guava logs it the same way) and delivery
    continues.
    """

    def __init__(self) -> None:
        self._future: Future = Future()
        self._listeners: list[Callable[["ListenableFuture[T]"], None]] = []
        self._lock = threading.Lock()
        #: Exceptions raised by listeners, in delivery order.
        self.listener_errors: list[BaseException] = []

    # -- producer side -----------------------------------------------------

    def set_result(self, value: T) -> None:
        """Settle the future with a value and fire listeners."""
        self._future.set_result(value)
        self._fire()

    def set_exception(self, error: BaseException) -> None:
        """Settle the future with an error and fire listeners."""
        self._future.set_exception(error)
        self._fire()

    def _fire(self) -> None:
        with self._lock:
            listeners, self._listeners = self._listeners, []
        for listener in listeners:
            self._deliver(listener)

    def _deliver(self, listener: Callable[["ListenableFuture[T]"], None]) -> None:
        try:
            listener(self)
        except Exception as error:  # noqa: BLE001 — a bad callback is quarantined
            self.listener_errors.append(error)

    # -- consumer side -----------------------------------------------------

    def is_done(self) -> bool:
        """Whether the computation has completed (successfully or not)."""
        return self._future.done()

    def get(self, timeout: float | None = None) -> T:
        """Block until done and return the result (or raise its error)."""
        return self._future.result(timeout=timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The exception the computation raised, if any."""
        return self._future.exception(timeout=timeout)

    def add_listener(self, listener: Callable[["ListenableFuture[T]"], None]) -> None:
        """Register a completion callback (fires immediately if done)."""
        fire_now = False
        with self._lock:
            if self._future.done():
                fire_now = True
            else:
                self._listeners.append(listener)
        if fire_now:
            self._deliver(listener)

    def transform(self, mapper: Callable[[T], object]) -> "ListenableFuture":
        """Derived future holding ``mapper(result)`` (errors propagate)."""
        derived: ListenableFuture = ListenableFuture()

        def relay(completed: "ListenableFuture[T]") -> None:
            error = completed.exception()
            if error is not None:
                derived.set_exception(error)
                return
            try:
                derived.set_result(mapper(completed.get()))
            except BaseException as mapping_error:  # noqa: BLE001 — relayed to waiter
                derived.set_exception(mapping_error)

        self.add_listener(relay)
        return derived

    @classmethod
    def completed(cls, value: T) -> "ListenableFuture[T]":
        """An already-successful future."""
        future: ListenableFuture[T] = cls()
        future.set_result(value)
        return future

    @classmethod
    def failed(cls, error: BaseException) -> "ListenableFuture":
        """An already-failed future."""
        future: ListenableFuture = cls()
        future.set_exception(error)
        return future


class CallbackExecutor:
    """Bounded thread pool producing :class:`ListenableFuture` results."""

    def __init__(self, max_workers: int = 8) -> None:
        if max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(max_workers=max_workers,
                                        thread_name_prefix="repro-sdk")

    def submit(self, function: Callable[..., T], *args, **kwargs) -> ListenableFuture[T]:
        """Run ``function`` on the pool; returns its listenable future.

        The submitting thread's context (contextvars) is copied onto
        the worker, so an observability span that is current at submit
        time is still the parent of spans started on the pool thread.
        """
        listenable: ListenableFuture[T] = ListenableFuture()

        def run() -> None:
            try:
                listenable.set_result(function(*args, **kwargs))
            except BaseException as error:  # noqa: BLE001 — relayed to waiter
                listenable.set_exception(error)

        context = contextvars.copy_context()
        self._pool.submit(context.run, run)
        return listenable

    def map_all(self, function: Callable[[object], T], items: list) -> list[ListenableFuture[T]]:
        """Submit ``function`` for every item; returns all futures."""
        return [self.submit(function, item) for item in items]

    def shutdown(self, wait: bool = True) -> None:
        """Shut the pool down (optionally waiting for queued work)."""
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "CallbackExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
