"""ListenableFuture-style asynchronous results.

The paper implements asynchronous service calls with Guava's
``ListenableFuture``: a future plus the ability to register callbacks
that run when the computation completes.  :class:`ListenableFuture`
reproduces that contract over :mod:`concurrent.futures`, and
:class:`CallbackExecutor` is the bounded thread pool §2.1 prescribes
("to prevent the number of threads from becoming too large in corner
cases, we use thread pools of limited size").
"""

from __future__ import annotations

import contextvars
import threading
from collections import deque
from collections.abc import Callable
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Generic, TypeVar

T = TypeVar("T")


class ListenableFuture(Generic[T]):
    """A future with registered completion callbacks.

    Callbacks receive the future itself and run exactly once.  Delivery
    is **serialized and in registration order**: at any moment at most
    one listener is executing, listeners never run while the future's
    internal lock is held, and a listener registered while an earlier
    one is still being delivered is queued behind it instead of running
    concurrently on the registering thread.  (The pre-async-core
    implementation delivered a late-registered listener immediately on
    the registering thread, which could overlap and reorder callbacks —
    unsafe for the asyncio bridge, whose callbacks assume serialized
    delivery.)  A listener added after delivery has fully drained runs
    immediately on the registering thread, Guava's semantics.

    A callback that raises cannot poison the delivering thread or
    starve the remaining callbacks: the exception is captured into
    ``listener_errors`` (Guava logs it the same way) and delivery
    continues.
    """

    def __init__(self) -> None:
        self._future: Future = Future()
        self._listeners: deque[Callable[["ListenableFuture[T]"], None]] = deque()
        self._lock = threading.Lock()
        # True while some thread is draining the listener queue; makes
        # delivery single-file without holding _lock across callbacks.
        self._delivering = False
        #: Exceptions raised by listeners, in delivery order.
        self.listener_errors: list[BaseException] = []

    # -- producer side -----------------------------------------------------

    def set_result(self, value: T) -> None:
        """Settle the future with a value and fire listeners."""
        self._future.set_result(value)
        self._drain()

    def set_exception(self, error: BaseException) -> None:
        """Settle the future with an error and fire listeners."""
        self._future.set_exception(error)
        self._drain()

    def _drain(self) -> None:
        """Deliver queued listeners one at a time, in order.

        Exactly one thread drains at a time: a second thread arriving
        while delivery is in progress leaves its listener on the queue
        for the draining thread (which re-checks the queue after every
        callback, so nothing is stranded).  The lock is only held to
        pop the queue, never across a callback.
        """
        with self._lock:
            if self._delivering:
                return
            self._delivering = True
        while True:
            with self._lock:
                if not self._listeners:
                    self._delivering = False
                    return
                listener = self._listeners.popleft()
            self._deliver(listener)

    def _deliver(self, listener: Callable[["ListenableFuture[T]"], None]) -> None:
        try:
            listener(self)
        except Exception as error:  # noqa: BLE001 — a bad callback is quarantined
            self.listener_errors.append(error)

    # -- consumer side -----------------------------------------------------

    def is_done(self) -> bool:
        """Whether the computation has completed (successfully or not)."""
        return self._future.done()

    def get(self, timeout: float | None = None) -> T:
        """Block until done and return the result (or raise its error)."""
        return self._future.result(timeout=timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The exception the computation raised, if any."""
        return self._future.exception(timeout=timeout)

    def add_listener(self, listener: Callable[["ListenableFuture[T]"], None]) -> None:
        """Register a completion callback.

        On an unsettled future the listener fires when the future
        settles.  On a settled future it fires before this method
        returns — on the registering thread — unless another thread is
        mid-delivery, in which case it is queued so that delivery stays
        serialized and ordered (that thread delivers it).
        """
        with self._lock:
            self._listeners.append(listener)
            if not self._future.done():
                return
        self._drain()

    def transform(self, mapper: Callable[[T], object]) -> "ListenableFuture":
        """Derived future holding ``mapper(result)`` (errors propagate)."""
        derived: ListenableFuture = ListenableFuture()

        def relay(completed: "ListenableFuture[T]") -> None:
            error = completed.exception()
            if error is not None:
                derived.set_exception(error)
                return
            try:
                derived.set_result(mapper(completed.get()))
            except BaseException as mapping_error:  # noqa: BLE001 — relayed to waiter
                derived.set_exception(mapping_error)

        self.add_listener(relay)
        return derived

    @classmethod
    def completed(cls, value: T) -> "ListenableFuture[T]":
        """An already-successful future."""
        future: ListenableFuture[T] = cls()
        future.set_result(value)
        return future

    @classmethod
    def failed(cls, error: BaseException) -> "ListenableFuture":
        """An already-failed future."""
        future: ListenableFuture = cls()
        future.set_exception(error)
        return future


class CallbackExecutor:
    """Bounded thread pool producing :class:`ListenableFuture` results."""

    def __init__(self, max_workers: int = 8) -> None:
        if max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(max_workers=max_workers,
                                        thread_name_prefix="repro-sdk")

    def submit(self, function: Callable[..., T], *args, **kwargs) -> ListenableFuture[T]:
        """Run ``function`` on the pool; returns its listenable future.

        The submitting thread's context (contextvars) is copied onto
        the worker, so an observability span that is current at submit
        time is still the parent of spans started on the pool thread.
        """
        listenable: ListenableFuture[T] = ListenableFuture()

        def run() -> None:
            try:
                listenable.set_result(function(*args, **kwargs))
            except BaseException as error:  # noqa: BLE001 — relayed to waiter
                listenable.set_exception(error)

        context = contextvars.copy_context()
        self._pool.submit(context.run, run)
        return listenable

    def map_all(self, function: Callable[[object], T], items: list) -> list[ListenableFuture[T]]:
        """Submit ``function`` for every item; returns all futures."""
        return [self.submit(function, item) for item in items]

    def shutdown(self, wait: bool = True) -> None:
        """Shut the pool down (optionally waiting for queued work)."""
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "CallbackExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
