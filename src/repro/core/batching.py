"""Request coalescing and adaptive micro-batching for the SDK hot path.

Two throughput levers for heavy-traffic clients, both built on the
SDK's own :class:`ListenableFuture` machinery:

* **Single-flight coalescing** (:class:`RequestCoalescer`) — when many
  callers concurrently issue the *same* idempotent request, exactly one
  upstream call is made; every other caller joins the in-flight
  :class:`Flight` and receives the shared result (or the shared error)
  when it lands.  This is the classic ``singleflight`` pattern: a cache
  deduplicates *sequential* repeats, coalescing deduplicates
  *concurrent* ones, and together a miss populates the cache exactly
  once no matter how many callers raced on it.

* **Adaptive micro-batching** (:class:`MicroBatcher`) — services that
  declare batch support in the catalog (``batch_max_size`` on
  :class:`repro.services.base.SimulatedService`) accept N requests in
  one transport call.  The batcher holds a bounded window per
  (service, operation): it flushes as soon as ``max_batch_size``
  requests are queued, or when the window has been open longer than
  ``max_wait`` *simulated* seconds.  The window is clock-driven —
  deadlines are checked against the simulation clock on every submit
  and on explicit :meth:`MicroBatcher.flush_due` ticks — so batching is
  fully deterministic under simnet.

Per-item results and errors are unpacked individually: one poisoned
request fails only its own future, never the rest of the batch.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generic, TypeVar

from repro.core.futures import ListenableFuture
from repro.obs import names
from repro.util.deadline import Deadline
from repro.util.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover — import cycle (invoker imports us)
    from repro.core.invoker import InvocationResult, RichClient

T = TypeVar("T")


class FlightCancelledError(ReproError):
    """Every waiter abandoned a coalesced flight before it completed."""

    def __init__(self, key: str) -> None:
        super().__init__(f"coalesced flight {key!r} cancelled: all waiters left")
        self.key = key


class Flight(Generic[T]):
    """One in-flight upstream call that any number of waiters may share.

    The caller that created the flight (the *leader*) performs the real
    work and settles the flight with :meth:`complete` or :meth:`fail`;
    everyone else :meth:`join`\\ s and blocks on :meth:`result`.  A
    waiter that gives up calls :meth:`abandon`; when the last waiter
    abandons an unsettled flight it is **cancelled** — the future is
    failed with :class:`FlightCancelledError` and a late
    ``complete``/``fail`` from the leader becomes a no-op.
    """

    def __init__(self, key: str, on_cancel=None) -> None:
        self.key = key
        self.future: ListenableFuture[T] = ListenableFuture()
        self.cancelled = False
        self._waiters = 1  # the leader
        self._on_cancel = on_cancel
        self._lock = threading.Lock()

    @property
    def waiters(self) -> int:
        """Callers (leader included) still interested in the result."""
        with self._lock:
            return self._waiters

    def join(self) -> "Flight[T]":
        """Register one more waiter on this flight; returns ``self``."""
        with self._lock:
            self._waiters += 1
        return self

    def abandon(self) -> bool:
        """Drop one waiter; cancels the flight when the last one leaves.

        Returns True when this call cancelled the flight.  Abandoning a
        flight that already settled is a harmless no-op bookkeeping
        decrement.
        """
        cancel = False
        with self._lock:
            self._waiters = max(0, self._waiters - 1)
            if (self._waiters == 0 and not self.cancelled
                    and not self.future.is_done()):
                self.cancelled = True
                cancel = True
        if cancel:
            self.future.set_exception(FlightCancelledError(self.key))
            if self._on_cancel is not None:
                self._on_cancel(self)
        return cancel

    def complete(self, value: T) -> bool:
        """Settle the flight successfully; False if it was cancelled."""
        with self._lock:
            if self.cancelled or self.future.is_done():
                return False
        self.future.set_result(value)
        return True

    def fail(self, error: BaseException) -> bool:
        """Settle the flight with an error; False if it was cancelled."""
        with self._lock:
            if self.cancelled or self.future.is_done():
                return False
        self.future.set_exception(error)
        return True

    def result(self, timeout: float | None = None) -> T:
        """Block until the flight settles; raises its error if it failed."""
        return self.future.get(timeout=timeout)


@dataclass
class CoalesceStats:
    """Single-flight accounting (mirrored to metrics when bound)."""

    flights: int = 0
    coalesced: int = 0
    cancelled: int = 0

    @property
    def upstream_saved(self) -> int:
        """Wire calls avoided: one per coalesced waiter."""
        return self.coalesced


class RequestCoalescer:
    """Single-flight table keyed by the full request.

    ``lead_or_join(key)`` either installs a new :class:`Flight` (caller
    becomes leader, performs the upstream call, then settles via
    :meth:`complete`/:meth:`fail`) or joins the existing one.  The
    table entry is removed when the flight settles or is cancelled, so
    later identical requests start a fresh flight — coalescing only
    ever shares *concurrent* duplicates, never stale results.

    Thread-safe.  Note the thread-pool caveat: waiters block their
    thread, so on a bounded pool at most ``max_workers - 1`` callers
    should wait on one flight (the leader needs a thread to run on).
    """

    def __init__(self) -> None:
        self.stats = CoalesceStats()
        self._flights: dict[str, Flight] = {}
        self._lock = threading.Lock()
        # Pre-bound metric counters (bind_metrics); None = unmirrored.
        self._metric_flights = None
        self._metric_hits = None
        self._metric_cancelled = None

    def bind_metrics(self, registry) -> None:
        """Mirror coalescing accounting into a MetricsRegistry.

        Registers ``coalesce_flights_total`` (upstream calls led),
        ``coalesce_hits_total`` (duplicate calls that shared a flight)
        and ``coalesce_cancelled_total``.
        """
        self._metric_flights = registry.counter(
            names.COALESCE_FLIGHTS_TOTAL,
            "Upstream flights led by the request coalescer.").bind()
        self._metric_hits = registry.counter(
            names.COALESCE_HITS_TOTAL,
            "Duplicate in-flight requests folded into a shared flight.").bind()
        self._metric_cancelled = registry.counter(
            names.COALESCE_CANCELLED_TOTAL,
            "Coalesced flights cancelled because every waiter left.").bind()

    def __len__(self) -> int:
        with self._lock:
            return len(self._flights)

    def lead_or_join(self, key: str) -> tuple[bool, Flight]:
        """Install a new flight for ``key``, or join the in-flight one.

        Returns ``(is_leader, flight)``.  The leader **must** settle the
        flight (:meth:`complete` / :meth:`fail`) exactly once.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.join()
                self.stats.coalesced += 1
                if self._metric_hits is not None:
                    self._metric_hits.inc()
                return False, flight
            flight = Flight(key, on_cancel=self._discard)
            self._flights[key] = flight
            self.stats.flights += 1
            if self._metric_flights is not None:
                self._metric_flights.inc()
            return True, flight

    def complete(self, flight: Flight, value) -> None:
        """Leader callback: publish the result to every waiter."""
        self._discard(flight)
        flight.complete(value)

    def fail(self, flight: Flight, error: BaseException) -> None:
        """Leader callback: share the upstream error with every waiter."""
        self._discard(flight)
        flight.fail(error)

    def count_folded(self, amount: int = 1) -> None:
        """Account duplicates folded outside the flight table.

        :meth:`RichClient.invoke_many` deduplicates identical payloads
        *within* a batch; those shares are coalesce hits too, and this
        keeps them on the same counter the acceptance criteria watch.
        """
        if amount > 0:
            self.stats.coalesced += amount
            if self._metric_hits is not None:
                self._metric_hits.inc(amount)

    def _discard(self, flight: Flight) -> None:
        with self._lock:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]
        if flight.cancelled:
            self.stats.cancelled += 1
            if self._metric_cancelled is not None:
                self._metric_cancelled.inc()


# ---------------------------------------------------------------------------
# Micro-batching
# ---------------------------------------------------------------------------

@dataclass
class BatchStats:
    """What the batcher packed and flushed."""

    submitted: int = 0
    flushes: int = 0
    empty_flushes: int = 0
    items_flushed: int = 0
    max_batch: int = 0
    size_flushes: int = 0
    deadline_flushes: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average items per non-empty flush."""
        return self.items_flushed / self.flushes if self.flushes else 0.0


@dataclass
class _Window:
    """One (service, operation) batch window awaiting flush."""

    service: str
    operation: str
    #: Absolute flush deadline (opened_at + max_wait, computed once so a
    #: manual clock advanced by exactly max_wait compares equal bit-for-bit;
    #: ``now - opened_at >= max_wait`` loses that to float rounding).
    deadline: float
    items: list[tuple[dict, ListenableFuture]] = field(default_factory=list)
    #: Tightest end-to-end caller deadline riding in this window (None =
    #: unbounded); the whole batch is one wire call, so it must honour
    #: the most impatient caller's budget.
    call_deadline: Deadline | None = None


class MicroBatcher:
    """Bounded-window batcher over a :class:`RichClient`.

    :meth:`submit` enqueues a request and returns a
    :class:`ListenableFuture` for its individual result.  A window
    flushes synchronously on the submitting caller's thread as soon as
    it holds ``max_batch_size`` items, or on the first submit/tick after
    it has been open ``max_wait`` simulated seconds — there is no
    background thread, which keeps the batcher deterministic under the
    simulated clock.  Call :meth:`flush_due` from an event loop (or
    :meth:`flush_all` at the end of a burst) to drain stragglers.

    Flushing delegates to :meth:`RichClient.invoke_batched`, which packs
    the window into one batch transport call, charges admission control
    once per batch, records per-item monitor entries and populates the
    cache for each item.
    """

    def __init__(self, client: "RichClient", max_batch_size: int | None = None,
                 max_wait: float = 0.05) -> None:
        if max_batch_size is not None and max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self.client = client
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        self.stats = BatchStats()
        self._windows: dict[tuple[str, str], _Window] = {}
        self._lock = threading.Lock()

    def _limit_for(self, service_name: str) -> int:
        service = self.client.registry.get(service_name)
        declared = service.batch_max_size
        if declared is None:
            raise ValueError(
                f"service {service_name!r} does not declare batch support")
        if self.max_batch_size is None:
            return declared
        return min(declared, self.max_batch_size)

    def submit(self, service_name: str, operation: str,
               payload: dict | None = None,
               use_cache: bool = True,
               deadline: Deadline | None = None,
               ) -> "ListenableFuture[InvocationResult]":
        """Queue one request; returns the future for its own result.

        Cache hits resolve immediately without entering a window.  A
        full window flushes before this method returns; an expired
        window (older than ``max_wait``) flushes together with the new
        item.  Raises ``ValueError`` when the service does not declare
        batch support in the catalog.

        A caller ``deadline`` rides with the window: the flush passes
        the *tightest* deadline seen to
        :meth:`RichClient.invoke_batched`, so one impatient caller
        bounds the shared wire call (everyone else simply gets an
        earlier answer).  An already-expired deadline still enqueues —
        the flush fails the batch with ``DeadlineExceededError`` on the
        future, never silently.
        """
        payload = dict(payload or {})
        limit = self._limit_for(service_name)
        cached = self.client.cached_result(service_name, operation, payload,
                                           use_cache=use_cache)
        if cached is not None:
            return ListenableFuture.completed(cached)
        future: ListenableFuture = ListenableFuture()
        now = self.client.clock.now()
        flush_window = None
        with self._lock:
            window = self._windows.get((service_name, operation))
            if window is None:
                window = _Window(service_name, operation,
                                 deadline=now + self.max_wait)
                self._windows[(service_name, operation)] = window
            window.items.append((payload, future))
            if deadline is not None and (
                    window.call_deadline is None
                    or deadline.expires_at < window.call_deadline.expires_at):
                window.call_deadline = deadline
            self.stats.submitted += 1
            if len(window.items) >= limit:
                flush_window = self._take_locked(window)
                self.stats.size_flushes += 1
            elif now >= window.deadline:
                flush_window = self._take_locked(window)
                self.stats.deadline_flushes += 1
        if flush_window is not None:
            self._flush_window(flush_window, use_cache=use_cache)
        return future

    def flush_due(self) -> int:
        """Flush every window older than ``max_wait``; returns items sent.

        This is the clock-driven tick: deterministic under a manual
        clock (compare ``clock.now()`` against each window's open time),
        and cheap to call from a polling loop under a real clock.
        """
        now = self.client.clock.now()
        due: list[_Window] = []
        with self._lock:
            for window in list(self._windows.values()):
                if now >= window.deadline:
                    due.append(self._take_locked(window))
                    self.stats.deadline_flushes += 1
        return sum(self._flush_window(window) for window in due)

    def flush_all(self) -> int:
        """Flush every open window regardless of age; returns items sent.

        Flushing with nothing queued is a counted no-op (the "empty
        flush window" case): no transport call is made.
        """
        with self._lock:
            taken = [self._take_locked(window)
                     for window in list(self._windows.values())]
        if not taken:
            self.stats.empty_flushes += 1
            return 0
        return sum(self._flush_window(window) for window in taken)

    def pending(self) -> int:
        """Items currently queued across all open windows."""
        with self._lock:
            return sum(len(window.items) for window in self._windows.values())

    def _take_locked(self, window: _Window) -> _Window:
        """Caller holds the lock: detach a window for flushing."""
        del self._windows[(window.service, window.operation)]
        return window

    def _flush_window(self, window: _Window, use_cache: bool = True) -> int:
        """Send one detached window as a single batch transport call."""
        if not window.items:
            self.stats.empty_flushes += 1
            return 0
        payloads = [payload for payload, _ in window.items]
        try:
            outcomes = self.client.invoke_batched(
                window.service, window.operation, payloads,
                use_cache=use_cache, deadline=window.call_deadline)
        except Exception as error:  # noqa: BLE001 — fanned out per future
            # A whole-batch failure (offline, timeout, spent deadline)
            # fails every rider's future rather than raising into
            # whichever caller happened to trigger the flush.
            for _, future in window.items:
                future.set_exception(error)
            self.stats.flushes += 1
            self.stats.items_flushed += len(window.items)
            self.stats.max_batch = max(self.stats.max_batch, len(window.items))
            return len(window.items)
        self.stats.flushes += 1
        self.stats.items_flushed += len(window.items)
        self.stats.max_batch = max(self.stats.max_batch, len(window.items))
        for (_, future), outcome in zip(window.items, outcomes):
            if isinstance(outcome, BaseException):
                future.set_exception(outcome)
            else:
                future.set_result(outcome)
        return len(window.items)
