"""Admission control: per-service bulkheads with a bounded wait queue.

Retry, circuit breaking and rate limiting are all *reactive* — they act
after a service has already started failing or throttling.  Admission
control is the proactive complement for heavy-traffic clients: each
service gets a **bulkhead** (a concurrency limit) plus a small bounded
queue, so a slow or overloaded dependency can never absorb every thread
in the SDK's pool.  A request that finds the bulkhead full either waits
briefly in the queue or is **shed** immediately with
:class:`AdmissionRejectedError`, which the gateway maps to HTTP 429 —
load is refused at the front door instead of melting the thread pool.

Queue waits run on the simulation clock: under a :class:`ManualClock`
the wait is *charged* (deterministic, instant in wall time), while a
scaled :class:`RealClock` makes racing threads genuinely block, so the
same bulkhead works in both the simulated and the threaded paths.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs import names
from repro.tenancy.scheduling import DrrScheduler
from repro.util.clock import Clock
from repro.util.errors import ReproError

#: Rejection reasons carried by :class:`AdmissionRejectedError`.
REASON_QUEUE_FULL = "queue-full"
REASON_QUEUE_TIMEOUT = "queue-timeout"
REASON_DEADLINE = "deadline"


class AdmissionRejectedError(ReproError):
    """A request was shed by admission control before reaching the wire.

    ``reason`` is :data:`REASON_QUEUE_FULL` (the bulkhead and its wait
    queue were both full — fast fail, no time spent),
    :data:`REASON_QUEUE_TIMEOUT` (the request queued but no permit
    freed up within ``queue_timeout``) or :data:`REASON_DEADLINE` (the
    caller's end-to-end budget could not cover any queue wait, so the
    request was shed without queueing).  The SDK gateway maps this to a
    429 envelope so non-Python callers can back off and retry —
    ``retry_after`` stays *honest* under deadline pressure: it reports
    when a permit is plausibly free (the queue window), never the
    caller's own remaining budget.
    """

    def __init__(self, service: str, reason: str, retry_after: float = 0.0) -> None:
        super().__init__(
            f"admission control shed call to {service!r} ({reason}); "
            f"retry in ~{retry_after:.3f}s")
        self.service = service
        self.reason = reason
        self.retry_after = retry_after


@dataclass(frozen=True)
class AdmissionLimit:
    """One service's bulkhead sizing.

    ``max_concurrent`` calls may be in flight at once; up to
    ``max_queue`` further callers wait at most ``queue_timeout``
    (simulated) seconds for a permit before being shed.
    """

    max_concurrent: int = 8
    max_queue: int = 16
    queue_timeout: float = 1.0

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.queue_timeout < 0:
            raise ValueError(
                f"queue_timeout must be >= 0, got {self.queue_timeout}")


@dataclass
class BulkheadStats:
    """What one bulkhead admitted, queued and shed."""

    admitted: int = 0
    queued: int = 0
    shed_queue_full: int = 0
    shed_timeout: int = 0
    shed_deadline: int = 0
    peak_inflight: int = 0
    total_queue_wait: float = 0.0
    fair_grants: int = 0
    shed_by_tenant: dict = field(default_factory=dict)

    @property
    def shed(self) -> int:
        """Total requests rejected, for whatever reason."""
        return self.shed_queue_full + self.shed_timeout + self.shed_deadline


class Bulkhead:
    """One service's concurrency limit plus bounded wait queue.

    Thread-safe.  :meth:`acquire` either admits the caller (possibly
    after a bounded queue wait) or raises
    :class:`AdmissionRejectedError`; every successful acquire must be
    paired with :meth:`release` (use :meth:`admit` for the context-
    managed form).
    """

    def __init__(self, clock: Clock, service: str,
                 limit: AdmissionLimit | None = None,
                 fair: bool = False,
                 weight_of: Callable[[str], float] | None = None) -> None:
        """Build the bulkhead.

        ``fair=True`` turns the wait queue into per-tenant sub-queues
        drained by deficit round robin (``weight_of`` maps tenant ids
        to fair-share weights, default 1.0) — under contention an
        aggressor tenant's backlog can no longer starve everyone else,
        because permits are *granted* to the DRR-chosen waiter instead
        of whichever thread wins the wakeup race.  Fairness applies to
        the threaded (scaled real clock) path; single-threaded virtual
        clock runs keep the charge-and-reprobe behaviour, where queue
        order is moot.
        """
        self.clock = clock
        self.service = service
        self.limit = limit if limit is not None else AdmissionLimit()
        self.stats = BulkheadStats()
        self._inflight = 0
        self._waiting = 0
        self._condition = threading.Condition()
        self._fair: DrrScheduler | None = (
            DrrScheduler(weight_of=weight_of) if fair else None)
        # Ticket currently allowed to take the next permit (fair mode).
        self._granted: object | None = None
        # Pre-bound obs instruments (bind_metrics); None = unmirrored.
        self._gauge_inflight = None
        self._gauge_queue = None
        self._metric_admitted = None
        self._metric_shed = None
        self._metric_wait = None
        self._metric_fair_grants = None

    def bind_metrics(self, registry) -> None:
        """Mirror admission accounting into a MetricsRegistry.

        Registers ``admission_inflight`` / ``admission_queue_depth``
        gauges and ``admission_admitted_total`` / ``admission_shed_total``
        / ``admission_queue_wait_seconds_total`` counters, all labelled
        by service (shed additionally by reason).
        """
        self._gauge_inflight = registry.gauge(
            names.ADMISSION_INFLIGHT, "Calls currently holding a bulkhead permit.")
        self._gauge_queue = registry.gauge(
            names.ADMISSION_QUEUE_DEPTH, "Callers waiting for a bulkhead permit.")
        self._metric_admitted = registry.counter(
            names.ADMISSION_ADMITTED_TOTAL, "Calls admitted through the bulkhead.")
        self._metric_shed = registry.counter(
            names.ADMISSION_SHED_TOTAL,
            "Calls shed by admission control, by service and reason.")
        self._metric_wait = registry.counter(
            names.ADMISSION_QUEUE_WAIT_SECONDS_TOTAL,
            "Simulated seconds spent queued for a bulkhead permit.")
        if self._fair is not None:
            self._metric_fair_grants = registry.counter(
                names.ADMISSION_FAIR_GRANTS_TOTAL,
                "Permits granted by the weighted-fair (DRR) scheduler.")

    @property
    def inflight(self) -> int:
        """Calls currently holding a permit."""
        with self._condition:
            return self._inflight

    @property
    def queue_depth(self) -> int:
        """Callers currently waiting for a permit."""
        with self._condition:
            return self._waiting

    def try_acquire(self) -> bool:
        """Take a permit if one is free right now; never waits or sheds."""
        with self._condition:
            if self._inflight < self.limit.max_concurrent:
                self._admit_locked()
                return True
            return False

    def _fast_path_open_locked(self) -> bool:
        """May a newcomer take a free permit without queueing?

        In FIFO mode, any free permit will do.  In fair mode a
        newcomer must queue behind existing waiters (and behind an
        outstanding grant), or it would jump the DRR order.
        """
        if self._inflight >= self.limit.max_concurrent:
            return False
        if self._fair is None:
            return True
        return self._granted is None and not self._fair

    def _maybe_grant_locked(self) -> None:
        """Hand the next free permit to the DRR-chosen waiter."""
        if (self._fair is not None and self._granted is None
                and self._inflight < self.limit.max_concurrent and self._fair):
            self._granted = self._fair.pop_next()
            if self._granted is not None:
                self.stats.fair_grants += 1
                if self._metric_fair_grants is not None:
                    self._metric_fair_grants.inc(service=self.service)
                self._condition.notify_all()

    def _count_shed(self, reason: str, tenant: str | None) -> None:
        """Mirror one shed into stats and (when bound) metrics."""
        if reason == REASON_QUEUE_FULL:
            self.stats.shed_queue_full += 1
        elif reason == REASON_DEADLINE:
            self.stats.shed_deadline += 1
        else:
            self.stats.shed_timeout += 1
        if tenant is not None:
            self.stats.shed_by_tenant[tenant] = (
                self.stats.shed_by_tenant.get(tenant, 0) + 1)
        if self._metric_shed is not None:
            labels = {"service": self.service, "reason": reason}
            if tenant is not None:
                labels["tenant"] = tenant
            self._metric_shed.inc(**labels)

    def acquire(self, deadline=None, tenant: str | None = None) -> float:
        """Take a permit, queueing briefly if the bulkhead is full.

        Returns the (simulated) seconds spent waiting in the queue.
        Raises :class:`AdmissionRejectedError` with reason
        :data:`REASON_QUEUE_FULL` when the wait queue is already at
        capacity (fast fail — no time is spent),
        :data:`REASON_QUEUE_TIMEOUT` when no permit frees up within the
        limit's ``queue_timeout`` (the wait is charged to the clock),
        or :data:`REASON_DEADLINE` when the caller's ``deadline``
        (:class:`repro.util.deadline.Deadline`) leaves no budget to
        queue at all.  With a deadline, the queue wait is clamped to
        the remaining budget — work that cannot finish in time is shed
        instead of queued, with an honest ``retry_after``.
        """
        ticket: object | None = None
        with self._condition:
            if self._fast_path_open_locked():
                self._admit_locked()
                return 0.0
            if deadline is not None and deadline.remaining() <= 0.0:
                self._count_shed(REASON_DEADLINE, tenant)
                raise AdmissionRejectedError(
                    self.service, REASON_DEADLINE,
                    retry_after=self.limit.queue_timeout)
            if self._waiting >= self.limit.max_queue:
                self._count_shed(REASON_QUEUE_FULL, tenant)
                raise AdmissionRejectedError(
                    self.service, REASON_QUEUE_FULL,
                    retry_after=self.limit.queue_timeout)
            self._waiting += 1
            self.stats.queued += 1
            if self._fair is not None:
                ticket = object()
                self._fair.push(tenant, ticket)
                self._maybe_grant_locked()
            if self._gauge_queue is not None:
                self._gauge_queue.set(self._waiting, service=self.service)
        try:
            if ticket is not None:
                waited = self._wait_fair(ticket, tenant, deadline)
            else:
                waited = self._wait_for_permit(deadline, tenant=tenant)
        finally:
            with self._condition:
                self._waiting -= 1
                if self._gauge_queue is not None:
                    self._gauge_queue.set(self._waiting, service=self.service)
        return waited

    def _queue_window(self, deadline) -> tuple[float, str]:
        """The bounded wait window and the shed reason if it lapses."""
        timeout = self.limit.queue_timeout
        if deadline is not None:
            timeout = min(timeout, deadline.remaining())
        # A deadline-clamped window that times out is a deadline shed:
        # the caller was refused because *its* budget ran out, not ours.
        reason = (REASON_DEADLINE
                  if timeout < self.limit.queue_timeout
                  else REASON_QUEUE_TIMEOUT)
        return timeout, reason

    def _wait_for_permit(self, deadline=None, tenant: str | None = None) -> float:
        """Block (scaled real clock) or charge (manual clock) for a permit."""
        timeout, reason = self._queue_window(deadline)
        time_scale = getattr(self.clock, "time_scale", None)
        started = self.clock.now()
        if time_scale is not None:
            # Real clock: genuinely wait for a release() notification.
            wait_until = started + timeout
            with self._condition:
                while self._inflight >= self.limit.max_concurrent:
                    remaining = wait_until - self.clock.now()
                    if remaining <= 0 or not self._condition.wait(
                            timeout=remaining * time_scale):
                        if self._inflight < self.limit.max_concurrent:
                            break
                        return self._timed_out(started, reason, tenant)
                self._admit_locked()
            waited = self.clock.now() - started
        else:
            # Virtual clock: charge the whole queue window, then re-probe.
            # Single-threaded simulations cannot release a permit while we
            # "wait", so this deterministically models the worst case.
            self.clock.charge(timeout)
            with self._condition:
                if self._inflight >= self.limit.max_concurrent:
                    return self._timed_out(started, reason, tenant)
                self._admit_locked()
            waited = timeout
        self.stats.total_queue_wait += waited
        if self._metric_wait is not None:
            self._metric_wait.inc(waited, service=self.service)
        return waited

    def _wait_fair(self, ticket: object, tenant: str | None,
                   deadline=None) -> float:
        """Wait until the DRR scheduler grants this ticket a permit.

        Permits freed by :meth:`release` are handed to the scheduler's
        chosen ticket (``_granted``); every waiter wakes on the
        broadcast and only the granted one admits itself, so wake-up
        order can never override DRR order.  A ticket that times out
        withdraws from its sub-queue (or re-grants, if it was the
        chosen one) before shedding.
        """
        timeout, reason = self._queue_window(deadline)
        time_scale = getattr(self.clock, "time_scale", None)
        started = self.clock.now()
        if time_scale is None:
            # Virtual clock: same deterministic worst-case model as the
            # FIFO path — charge the window, then re-probe.
            self.clock.charge(timeout)
            with self._condition:
                self._withdraw_locked(ticket, tenant)
                if self._inflight >= self.limit.max_concurrent:
                    return self._timed_out(started, reason, tenant)
                self._admit_locked()
            waited = timeout
        else:
            wait_until = started + timeout
            with self._condition:
                while True:
                    if (self._granted is ticket
                            and self._inflight < self.limit.max_concurrent):
                        self._granted = None
                        self._admit_locked()
                        self._maybe_grant_locked()
                        break
                    remaining = wait_until - self.clock.now()
                    if remaining <= 0:
                        self._withdraw_locked(ticket, tenant)
                        return self._timed_out(started, reason, tenant)
                    self._condition.wait(timeout=remaining * time_scale)
            waited = self.clock.now() - started
        self.stats.total_queue_wait += waited
        if self._metric_wait is not None:
            self._metric_wait.inc(waited, service=self.service)
        return waited

    def _withdraw_locked(self, ticket: object, tenant: str | None) -> None:
        """Remove a fair-mode waiter that is giving up (caller holds lock)."""
        if self._granted is ticket:
            self._granted = None
            self._maybe_grant_locked()
        else:
            self._fair.remove(tenant, ticket)

    def _timed_out(self, started: float,
                   reason: str = REASON_QUEUE_TIMEOUT,
                   tenant: str | None = None) -> float:
        waited = self.clock.now() - started
        self.stats.total_queue_wait += waited
        if self._metric_wait is not None:
            self._metric_wait.inc(waited, service=self.service)
        self._count_shed(reason, tenant)
        raise AdmissionRejectedError(self.service, reason,
                                     retry_after=self.limit.queue_timeout)

    def _admit_locked(self) -> None:
        """Caller holds the condition lock."""
        self._inflight += 1
        self.stats.admitted += 1
        self.stats.peak_inflight = max(self.stats.peak_inflight, self._inflight)
        if self._gauge_inflight is not None:
            self._gauge_inflight.set(self._inflight, service=self.service)
        if self._metric_admitted is not None:
            self._metric_admitted.inc(service=self.service)

    def release(self) -> None:
        """Return a permit and wake the next waiter.

        FIFO mode wakes one arbitrary waiter; fair mode grants the
        permit to the DRR scheduler's choice and broadcasts, so the
        chosen waiter (and any granted-but-raced waiter) re-checks.
        """
        with self._condition:
            if self._inflight <= 0:
                raise RuntimeError(
                    f"bulkhead for {self.service!r}: release without acquire")
            self._inflight -= 1
            if self._gauge_inflight is not None:
                self._gauge_inflight.set(self._inflight, service=self.service)
            if self._fair is not None:
                self._maybe_grant_locked()
                self._condition.notify_all()
            else:
                self._condition.notify()

    @contextmanager
    def admit(self, tenant: str | None = None) -> Iterator[None]:
        """Context-managed acquire/release pair."""
        self.acquire(tenant=tenant)
        try:
            yield
        finally:
            self.release()


class AdmissionController:
    """Per-service bulkheads sharing one clock and default sizing.

    Unconfigured services get ``default_limit`` (pass ``None`` to admit
    them without any limit, mirroring :class:`ServiceRateLimiter`'s
    opt-in behaviour).  :class:`repro.core.invoker.RichClient` consults
    the controller on every remote call and releases the permit when
    the wire call finishes, so the bulkhead bounds *concurrency*, not
    call counts.
    """

    def __init__(self, clock: Clock,
                 default_limit: AdmissionLimit | None = None,
                 limits: Mapping[str, AdmissionLimit] | None = None,
                 fair: bool = False,
                 weight_of: Callable[[str], float] | None = None) -> None:
        """Build the controller.

        ``fair=True`` makes every bulkhead drain its wait queue with
        weighted-fair (deficit-round-robin) scheduling over per-tenant
        sub-queues; ``weight_of`` maps a tenant id to its fair-share
        weight (typically ``Tenancy.weight_of``).
        """
        self.clock = clock
        self.default_limit = default_limit
        self.fair = fair
        self.weight_of = weight_of
        self._limits = dict(limits or {})
        self._bulkheads: dict[str, Bulkhead] = {}
        self._metrics = None
        self._lock = threading.Lock()

    def bind_metrics(self, registry) -> None:
        """Mirror every bulkhead's accounting into ``registry``."""
        self._metrics = registry
        with self._lock:
            for bulkhead in self._bulkheads.values():
                bulkhead.bind_metrics(registry)

    def configure(self, service: str, limit: AdmissionLimit) -> Bulkhead:
        """Set one service's bulkhead sizing and return its bulkhead."""
        with self._lock:
            self._limits[service] = limit
            self._bulkheads.pop(service, None)
        return self.bulkhead_for(service)

    def bulkhead_for(self, service: str) -> Bulkhead | None:
        """The service's bulkhead, or None when it is unlimited."""
        with self._lock:
            bulkhead = self._bulkheads.get(service)
            if bulkhead is not None:
                return bulkhead
            limit = self._limits.get(service, self.default_limit)
            if limit is None:
                return None
            bulkhead = Bulkhead(self.clock, service, limit,
                                fair=self.fair, weight_of=self.weight_of)
            if self._metrics is not None:
                bulkhead.bind_metrics(self._metrics)
            self._bulkheads[service] = bulkhead
            return bulkhead

    def shed_total(self) -> int:
        """Requests shed across every bulkhead so far."""
        with self._lock:
            return sum(bulkhead.stats.shed
                       for bulkhead in self._bulkheads.values())
