"""Client-side quota and budget tracking.

Services enforce quotas server-side (:class:`repro.services.base.Quota`);
this tracker is the *client's* bookkeeping: how many invocations and how
much money the application has spent per service, and how much remains
of an optional self-imposed budget.  Together with caching it implements
§2.2's point that "for some services, the client may have a limited
quota of service invocations in a time period ... there is thus an
incentive to limit the number of service invocations."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ReproError


class BudgetExceededError(ReproError):
    """The client refused a call that would exceed its own budget."""

    def __init__(self, service: str, kind: str, limit: float) -> None:
        super().__init__(f"budget for {service!r} exhausted ({kind} limit {limit})")
        self.service = service
        self.kind = kind
        self.limit = limit


@dataclass
class ServiceBudget:
    """Self-imposed per-service limits (None = unlimited)."""

    max_calls: int | None = None
    max_cost: float | None = None


@dataclass
class _Spend:
    calls: int = 0
    cost: float = 0.0


@dataclass
class ClientQuotaTracker:
    """Tracks spend and enforces optional self-imposed budgets."""

    budgets: dict[str, ServiceBudget] = field(default_factory=dict)
    _spend: dict[str, _Spend] = field(default_factory=dict)

    def set_budget(self, service: str, max_calls: int | None = None,
                   max_cost: float | None = None) -> None:
        """Set (or replace) this service's self-imposed budget."""
        self.budgets[service] = ServiceBudget(max_calls=max_calls, max_cost=max_cost)

    def check(self, service: str, upcoming_cost: float = 0.0) -> None:
        """Raise :class:`BudgetExceededError` if one more call would overspend."""
        budget = self.budgets.get(service)
        if budget is None:
            return
        spend = self._spend.get(service, _Spend())
        if budget.max_calls is not None and spend.calls + 1 > budget.max_calls:
            raise BudgetExceededError(service, "calls", budget.max_calls)
        if budget.max_cost is not None and spend.cost + upcoming_cost > budget.max_cost:
            raise BudgetExceededError(service, "cost", budget.max_cost)

    def record(self, service: str, cost: float) -> None:
        """Charge one completed call's cost against the ledger."""
        spend = self._spend.setdefault(service, _Spend())
        spend.calls += 1
        spend.cost += cost

    def calls(self, service: str) -> int:
        """Calls recorded for this service."""
        return self._spend.get(service, _Spend()).calls

    def cost(self, service: str) -> float:
        """Spend recorded for this service."""
        return self._spend.get(service, _Spend()).cost

    def total_cost(self) -> float:
        """Spend recorded across every service."""
        return sum(spend.cost for spend in self._spend.values())

    def remaining_calls(self, service: str) -> int | None:
        """Calls left under the budget (None = unlimited)."""
        budget = self.budgets.get(service)
        if budget is None or budget.max_calls is None:
            return None
        return max(0, budget.max_calls - self.calls(service))
