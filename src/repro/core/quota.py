"""Client-side quota and budget tracking.

Services enforce quotas server-side (:class:`repro.services.base.Quota`);
this tracker is the *client's* bookkeeping: how many invocations and how
much money the application has spent per service, and how much remains
of an optional self-imposed budget.  Together with caching it implements
§2.2's point that "for some services, the client may have a limited
quota of service invocations in a time period ... there is thus an
incentive to limit the number of service invocations."
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.util.errors import ReproError


class BudgetExceededError(ReproError):
    """The client refused a call that would exceed its own budget."""

    def __init__(self, service: str, kind: str, limit: float) -> None:
        super().__init__(f"budget for {service!r} exhausted ({kind} limit {limit})")
        self.service = service
        self.kind = kind
        self.limit = limit


@dataclass
class ServiceBudget:
    """Self-imposed per-service limits (None = unlimited)."""

    max_calls: int | None = None
    max_cost: float | None = None


@dataclass
class _Spend:
    calls: int = 0
    cost: float = 0.0


@dataclass
class QuotaReservation:
    """A call slot plus estimated cost charged atomically up front.

    Handed out by :meth:`ClientQuotaTracker.reserve`; the caller must
    either :meth:`~ClientQuotaTracker.settle` it (the call completed,
    true-up to the billed cost) or :meth:`~ClientQuotaTracker.cancel`
    it (the call failed, refund the slot and the estimate).
    """

    service: str
    estimated_cost: float = 0.0
    open: bool = True


@dataclass
class ClientQuotaTracker:
    """Tracks spend and enforces optional self-imposed budgets.

    Thread-safe.  The historical :meth:`check` / :meth:`record` pair is
    kept for sequential callers, but it is **racy under concurrency**:
    a burst of threads can all pass ``check`` before any of them
    ``record``s, overshooting ``max_calls`` and ``max_cost``.  The
    invoker therefore uses the atomic :meth:`reserve` /
    :meth:`settle` / :meth:`cancel` path, which charges the call slot
    and the estimated cost in the same critical section as the check.
    """

    budgets: dict[str, ServiceBudget] = field(default_factory=dict)
    _spend: dict[str, _Spend] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def set_budget(self, service: str, max_calls: int | None = None,
                   max_cost: float | None = None) -> None:
        """Set (or replace) this service's self-imposed budget."""
        with self._lock:
            self.budgets[service] = ServiceBudget(max_calls=max_calls,
                                                  max_cost=max_cost)

    def _check_locked(self, service: str, upcoming_cost: float) -> None:
        budget = self.budgets.get(service)
        if budget is None:
            return
        spend = self._spend.get(service, _Spend())
        if budget.max_calls is not None and spend.calls + 1 > budget.max_calls:
            raise BudgetExceededError(service, "calls", budget.max_calls)
        if budget.max_cost is not None and spend.cost + upcoming_cost > budget.max_cost:
            raise BudgetExceededError(service, "cost", budget.max_cost)

    def check(self, service: str, upcoming_cost: float = 0.0) -> None:
        """Raise :class:`BudgetExceededError` if one more call would overspend.

        Check-only: nothing is charged, so two threads that both pass
        can still jointly overspend.  Concurrent callers should use
        :meth:`reserve` instead.
        """
        with self._lock:
            self._check_locked(service, upcoming_cost)

    def has_cost_limit(self, service: str) -> bool:
        """Whether this service has a ``max_cost`` budget configured.

        The invoker uses this to skip computing a cost estimate on the
        hot path when no ledger would ever look at it.
        """
        with self._lock:
            budget = self.budgets.get(service)
            return budget is not None and budget.max_cost is not None

    def reserve(self, service: str,
                estimated_cost: float = 0.0) -> QuotaReservation:
        """Atomically check the budget **and** charge one call.

        The call slot and ``estimated_cost`` are charged in the same
        critical section as the check, so a concurrent burst cannot
        overshoot ``max_calls`` (each admitted call holds its slot) or
        ``max_cost`` beyond estimate error.  Pair with :meth:`settle`
        on success (adjusts to the actual billed cost) or
        :meth:`cancel` on failure (refunds slot and estimate).
        """
        with self._lock:
            self._check_locked(service, estimated_cost)
            spend = self._spend.setdefault(service, _Spend())
            spend.calls += 1
            spend.cost += estimated_cost
        return QuotaReservation(service, estimated_cost)

    def settle(self, reservation: QuotaReservation, actual_cost: float) -> None:
        """True a reservation up to the cost the service actually billed."""
        with self._lock:
            if not reservation.open:
                raise ValueError("reservation already settled or cancelled")
            reservation.open = False
            spend = self._spend.setdefault(reservation.service, _Spend())
            spend.cost += actual_cost - reservation.estimated_cost

    def cancel(self, reservation: QuotaReservation) -> None:
        """Refund a reservation whose call never completed."""
        with self._lock:
            if not reservation.open:
                raise ValueError("reservation already settled or cancelled")
            reservation.open = False
            spend = self._spend.setdefault(reservation.service, _Spend())
            spend.calls -= 1
            spend.cost -= reservation.estimated_cost

    def record(self, service: str, cost: float) -> None:
        """Charge one completed call's cost against the ledger."""
        with self._lock:
            spend = self._spend.setdefault(service, _Spend())
            spend.calls += 1
            spend.cost += cost

    def calls(self, service: str) -> int:
        """Calls recorded for this service."""
        with self._lock:
            return self._spend.get(service, _Spend()).calls

    def cost(self, service: str) -> float:
        """Spend recorded for this service."""
        with self._lock:
            return self._spend.get(service, _Spend()).cost

    def total_cost(self) -> float:
        """Spend recorded across every service."""
        with self._lock:
            return sum(spend.cost for spend in self._spend.values())

    def remaining_calls(self, service: str) -> int | None:
        """Calls left under the budget (None = unlimited)."""
        with self._lock:
            budget = self.budgets.get(service)
            if budget is None or budget.max_calls is None:
                return None
            spend = self._spend.get(service, _Spend())
            return max(0, budget.max_calls - spend.calls)
