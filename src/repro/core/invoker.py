"""RichClient: the Rich SDK's facade.

Wraps a :class:`repro.services.base.ServiceRegistry` and layers on the
paper's features in one coherent client:

* synchronous invocation with monitoring, caching, client-side budget
  enforcement and optional per-response quality rating;
* asynchronous invocation returning :class:`ListenableFuture`s, and
  parallel fan-out over a bounded thread pool;
* ranked failover across services of a kind (retry each per its
  policy, move down the ranking);
* redundant multi-service invocation for comparison/combination.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.core.caching import DEFAULT_CACHEABLE_OPERATIONS, ServiceCache, cache_key
from repro.core.futures import CallbackExecutor, ListenableFuture
from repro.core.latency import LatencyPredictor
from repro.core.monitoring import InvocationRecord, ServiceMonitor
from repro.core.quota import ClientQuotaTracker
from repro.core.ranking import ScoreFormula, ServiceRanker, Weights
from repro.core.ratelimit import ServiceRateLimiter
from repro.core.retry import AttemptLog, FailoverInvoker, RetryPolicy
from repro.obs import Observability
from repro.services.base import ServiceRegistry, ServiceRequest
from repro.util.clock import Clock

QualityRater = Callable[[object], float]
"""User-provided function rating a response's quality (higher = better)."""


@dataclass(frozen=True)
class InvocationResult:
    """What the client hands back for one logical invocation."""

    value: object
    latency: float
    cost: float
    service: str
    operation: str
    cached: bool = False
    attempts: tuple[AttemptLog, ...] = ()


class RichClient:
    """The paper's rich SDK, as one client object.

    All collaborators are injectable; by default the client builds its
    own monitor, predictor, ranker, cache (1024 entries, no TTL),
    failover invoker and thread pool, sharing the registry's simulated
    clock throughout.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        monitor: ServiceMonitor | None = None,
        cache: ServiceCache | None = None,
        predictor: LatencyPredictor | None = None,
        ranker: ServiceRanker | None = None,
        failover: FailoverInvoker | None = None,
        quota: ClientQuotaTracker | None = None,
        executor: CallbackExecutor | None = None,
        cacheable_operations: frozenset[str] = DEFAULT_CACHEABLE_OPERATIONS,
        quality_raters: Mapping[str, QualityRater] | None = None,
        obs: Observability | None = None,
        rate_limiter: ServiceRateLimiter | None = None,
    ) -> None:
        self.registry = registry
        self.clock = self._registry_clock(registry)
        self.obs = obs if obs is not None else Observability(clock=self.clock)
        self.monitor = monitor if monitor is not None else ServiceMonitor()
        self.cache = cache if cache is not None else ServiceCache(
            capacity=1024, ttl=None, clock=self.clock
        )
        self.predictor = predictor if predictor is not None else LatencyPredictor(self.monitor)
        self.ranker = ranker if ranker is not None else ServiceRanker(
            self.monitor, self.predictor
        )
        self.failover = failover if failover is not None else FailoverInvoker(
            clock=self.clock
        )
        self.quota = quota if quota is not None else ClientQuotaTracker()
        self.executor = executor if executor is not None else CallbackExecutor(max_workers=8)
        self.cacheable_operations = cacheable_operations
        # Per-operation quality raters, e.g. {"analyze": rate_analysis}.
        self.quality_raters = dict(quality_raters or {})
        # Proactive client-side rate limiting (None = unlimited): invoke
        # raises RateLimitExceededError instead of tripping the server.
        self.rate_limiter = rate_limiter
        if self.obs.enabled:
            self._wire_observability()

    def _wire_observability(self) -> None:
        """Thread the obs bundle through every hot-path collaborator.

        The monitor's ``record`` is the metrics choke point, the cache
        mirrors its hit/miss stats, the failover invoker emits attempt
        spans, and each (typically shared) transport reports wire spans
        to whichever client bound it first.
        """
        self.monitor.bind_metrics(self.obs.metrics)
        self.cache.bind_metrics(self.obs.metrics)
        self.failover.bind_obs(self.obs)
        seen = set()
        for service in self.registry:
            transport = service.transport
            if id(transport) not in seen:
                seen.add(id(transport))
                transport.bind_obs(self.obs)

    @staticmethod
    def _registry_clock(registry: ServiceRegistry) -> Clock:
        for service in registry:
            return service.transport.clock
        from repro.util.clock import ManualClock

        return ManualClock()

    # -- core invocation -------------------------------------------------------

    def invoke(
        self,
        service_name: str,
        operation: str,
        payload: Mapping[str, object] | None = None,
        timeout: float | None = None,
        use_cache: bool = True,
        quality_rater: QualityRater | None = None,
    ) -> InvocationResult:
        """Invoke one service synchronously.

        Serves cacheable operations from the local cache when possible
        (a hit costs no latency, no money and no quota).  Successful
        remote calls are recorded in the monitor together with their
        latency parameters; failures are recorded and re-raised.

        Every remote call runs inside an ``sdk.invoke`` span (nesting
        under whatever span is current, e.g. a failover attempt), and
        the resulting monitor record carries the trace id.  Cache hits
        are counted in the metrics and monitor; they only produce a
        zero-duration span when an enclosing trace is active, keeping
        the hit fast path cheap.
        """
        payload = dict(payload or {})
        service = self.registry.get(service_name)
        cacheable = use_cache and operation in self.cacheable_operations
        key = cache_key(service_name, operation, payload) if cacheable else None
        tracer = self.obs.tracer

        if key is not None:
            hit = self.cache.get(key)
            if hit is not None:
                now = self.clock.now()
                trace_id = None
                if tracer.enabled and tracer.current_span() is not None:
                    span = tracer.instant_span(
                        "sdk.invoke",
                        {"service": service_name, "operation": operation,
                         "cached": True, "obs.category": "cache"},
                        timestamp=now)
                    trace_id = span.trace_id
                self.monitor.record(
                    InvocationRecord(
                        service=service_name,
                        operation=operation,
                        timestamp=now,
                        latency=0.0,
                        cost=0.0,
                        success=True,
                        cached=True,
                        trace_id=trace_id,
                    )
                )
                return InvocationResult(
                    value=hit,
                    latency=0.0,
                    cost=0.0,
                    service=service_name,
                    operation=operation,
                    cached=True,
                )

        with tracer.span("sdk.invoke",
                         {"service": service_name, "operation": operation}) as span:
            trace_id = span.trace_id
            self.quota.check(service_name)
            if self.rate_limiter is not None:
                self.rate_limiter.acquire_or_raise(service_name)
            params = service.latency_params(ServiceRequest(operation, payload))
            rater = quality_rater or self.quality_raters.get(operation)
            try:
                response = service.invoke(operation, payload, timeout=timeout)
            except Exception as error:
                self.monitor.record(
                    InvocationRecord(
                        service=service_name,
                        operation=operation,
                        timestamp=self.clock.now(),
                        latency=None,
                        cost=0.0,
                        success=False,
                        error=repr(error),
                        latency_params=params,
                        trace_id=trace_id,
                    )
                )
                raise

            quality = rater(response.value) if rater is not None else None
            self.quota.record(service_name, response.cost)
            self.monitor.record(
                InvocationRecord(
                    service=service_name,
                    operation=operation,
                    timestamp=self.clock.now(),
                    latency=response.latency,
                    cost=response.cost,
                    success=True,
                    latency_params=params,
                    quality=quality,
                    trace_id=trace_id,
                )
            )
            span.set_attribute("latency", response.latency)
            span.set_attribute("cost", response.cost)
            if key is not None:
                self.cache.put(key, response.value)
            if operation in ("put", "delete"):
                # A mutation makes this service's cached reads suspect —
                # the consistency issue §2 warns about.
                self.cache.invalidate_service(service_name)
            return InvocationResult(
                value=response.value,
                latency=response.latency,
                cost=response.cost,
                service=service_name,
                operation=operation,
            )

    # -- asynchronous invocation -------------------------------------------------

    def invoke_async(
        self,
        service_name: str,
        operation: str,
        payload: Mapping[str, object] | None = None,
        timeout: float | None = None,
        use_cache: bool = True,
    ) -> ListenableFuture[InvocationResult]:
        """Invoke on the thread pool; returns a listenable future.

        Register callbacks with ``future.add_listener`` — e.g. the
        paper's example of being notified when a cloud-database store
        completes without blocking the application.
        """
        return self.executor.submit(
            self.invoke, service_name, operation, payload,
            timeout=timeout, use_cache=use_cache,
        )

    def invoke_all(
        self,
        calls: Sequence[tuple[str, str, Mapping[str, object]]],
        timeout: float | None = None,
        use_cache: bool = True,
    ) -> list[InvocationResult | Exception]:
        """Run many calls in parallel; preserves order.

        Failed calls come back as their exception rather than raising,
        so one bad service does not lose the other results.
        """
        futures = [
            self.invoke_async(service, operation, payload,
                              timeout=timeout, use_cache=use_cache)
            for service, operation, payload in calls
        ]
        results: list[InvocationResult | Exception] = []
        for future in futures:
            error = future.exception()
            results.append(error if error is not None else future.get())
        return results

    # -- ranked failover -----------------------------------------------------------

    def invoke_with_failover(
        self,
        kind: str,
        operation: str,
        payload: Mapping[str, object] | None = None,
        timeout: float | None = None,
        weights: Weights = Weights(),
        formula: str | ScoreFormula = "weighted",
        use_cache: bool = True,
    ) -> InvocationResult:
        """Invoke the best-ranked service of ``kind``, failing over down
        the ranking until one responds (§2.1's strategy).

        Runs inside an ``sdk.invoke_with_failover`` root span; each
        attempt becomes a child span and backoff sleeps become events,
        so the attribution analyzer can split the call's wall time
        between retry waits and wire time."""
        with self.obs.tracer.span("sdk.invoke_with_failover",
                                  {"kind": kind, "operation": operation}):
            candidates = [service.name
                          for service in self.registry.services_of_kind(kind)]
            if not candidates:
                raise ValueError(f"no services of kind {kind!r}")
            request = ServiceRequest(operation, dict(payload or {}))
            params = self.registry.get(candidates[0]).latency_params(request)
            ranked = [name for name, _ in
                      self.ranker.rank(candidates, params, formula, weights)]

            served_by, result, attempts = self.failover.invoke(
                ranked,
                lambda name: self.invoke(name, operation, payload,
                                         timeout=timeout, use_cache=use_cache),
            )
        return InvocationResult(
            value=result.value,
            latency=result.latency,
            cost=result.cost,
            service=served_by,
            operation=operation,
            cached=result.cached,
            attempts=tuple(attempts),
        )

    # -- redundant multi-service invocation ------------------------------------------

    def invoke_redundant(
        self,
        service_names: Sequence[str],
        operation: str,
        payload: Mapping[str, object] | None = None,
        timeout: float | None = None,
        parallel: bool = True,
        use_cache: bool = True,
    ) -> dict[str, InvocationResult | Exception]:
        """Invoke the *same* request on several services.

        §2.1: invoke more than one service to add redundancy, to
        compare providers, or to combine their outputs (see
        :class:`repro.core.aggregation.MultiServiceCombiner`).
        Returns per-service results; failures are captured per service.
        """
        names = list(service_names)
        if parallel:
            outcomes = self.invoke_all(
                [(name, operation, dict(payload or {})) for name in names],
                timeout=timeout, use_cache=use_cache,
            )
            return dict(zip(names, outcomes))
        results: dict[str, InvocationResult | Exception] = {}
        for name in names:
            try:
                results[name] = self.invoke(name, operation, payload,
                                            timeout=timeout, use_cache=use_cache)
            except Exception as error:
                results[name] = error
        return results

    # -- convenience -----------------------------------------------------------------

    def rank_services(
        self,
        kind: str,
        latency_params: Mapping[str, float] | None = None,
        weights: Weights = Weights(),
        formula: str | ScoreFormula = "weighted",
    ) -> list[tuple[str, float]]:
        """Rank every registered service of ``kind`` (best first)."""
        names = [service.name for service in self.registry.services_of_kind(kind)]
        return self.ranker.rank(names, latency_params, formula, weights)

    def best_service(
        self,
        kind: str,
        latency_params: Mapping[str, float] | None = None,
        weights: Weights = Weights(),
        formula: str | ScoreFormula = "weighted",
    ) -> str:
        """The top-ranked service of ``kind``."""
        ranked = self.rank_services(kind, latency_params, weights, formula)
        if not ranked:
            raise ValueError(f"no services of kind {kind!r}")
        return ranked[0][0]

    def service_summaries(self) -> list[dict]:
        """Monitoring summaries for every service seen so far."""
        return [self.monitor.summary(name) for name in self.monitor.services()]

    def close(self) -> None:
        """Shut down the thread pool."""
        self.executor.shutdown()

    def __enter__(self) -> "RichClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
