"""RichClient: the Rich SDK's facade.

Wraps a :class:`repro.services.base.ServiceRegistry` and layers on the
paper's features in one coherent client:

* synchronous invocation with monitoring, caching, client-side budget
  enforcement and optional per-response quality rating;
* asynchronous invocation returning :class:`ListenableFuture`s, and
  parallel fan-out over a bounded thread pool;
* ranked failover across services of a kind (retry each per its
  policy, move down the ranking);
* redundant multi-service invocation for comparison/combination.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, replace

from repro.core.admission import AdmissionController, AdmissionRejectedError
from repro.core.batching import MicroBatcher, RequestCoalescer
from repro.core.caching import DEFAULT_CACHEABLE_OPERATIONS, ServiceCache, cache_key
from repro.core.futures import CallbackExecutor, ListenableFuture
from repro.core.latency import LatencyPredictor
from repro.core.monitoring import InvocationRecord, ServiceMonitor
from repro.obs import names
from repro.core.quota import ClientQuotaTracker
from repro.core.ranking import ScoreFormula, ServiceRanker, Weights
from repro.core.ratelimit import ServiceRateLimiter
from repro.core.retry import AttemptLog, FailoverInvoker, RetryPolicy
from repro.obs import Observability
from repro.services.base import ServiceRegistry, ServiceRequest
from repro.simnet.errors import NetworkError
from repro.tenancy.model import Tenant
from repro.tenancy.runtime import REASON_SHED, Tenancy
from repro.util.clock import Clock
from repro.util.deadline import Deadline, DeadlineExceededError

QualityRater = Callable[[object], float]
"""User-provided function rating a response's quality (higher = better)."""

#: Failures that may be answered with a stale cached value instead of
#: an exception when ``serve_stale_on_error`` is enabled: transient
#: network-side errors, shed admissions, and exhausted deadlines (a
#: zero-cost stale answer is exactly what an out-of-budget caller can
#: still use).  Client policy violations (budget, rate limit) are not
#: degradable — hiding them would defeat the policy.
DEGRADABLE_ERRORS = (NetworkError, AdmissionRejectedError,
                     DeadlineExceededError)


@dataclass(frozen=True)
class InvocationResult:
    """What the client hands back for one logical invocation.

    ``cached`` marks a local cache hit (zero latency, zero cost);
    ``coalesced`` marks a result shared from another caller's in-flight
    upstream call (the leader paid the cost, so this result reports
    cost 0); ``batched`` marks an item served by a batched transport
    call, whose ``latency`` is the whole batch's round-trip time (that
    is what this caller actually waited).  ``degraded`` marks an answer
    produced by graceful degradation — a stale cache serve or a
    partial aggregation — rather than a fresh upstream response;
    ``stale_age`` carries the served entry's age for stale serves.
    """

    value: object
    latency: float
    cost: float
    service: str
    operation: str
    cached: bool = False
    attempts: tuple[AttemptLog, ...] = ()
    coalesced: bool = False
    batched: bool = False
    degraded: bool = False
    stale_age: float | None = None


class RichClient:
    """The paper's rich SDK, as one client object.

    All collaborators are injectable; by default the client builds its
    own monitor, predictor, ranker, cache (1024 entries, no TTL),
    failover invoker, single-flight request coalescer and thread pool,
    sharing the registry's simulated clock throughout.  Admission
    control (per-service bulkheads) is opt-in: pass an
    :class:`AdmissionController` to bound per-service concurrency and
    shed overload with 429-style fast failures.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        monitor: ServiceMonitor | None = None,
        cache: ServiceCache | None = None,
        predictor: LatencyPredictor | None = None,
        ranker: ServiceRanker | None = None,
        failover: FailoverInvoker | None = None,
        quota: ClientQuotaTracker | None = None,
        executor: CallbackExecutor | None = None,
        cacheable_operations: frozenset[str] = DEFAULT_CACHEABLE_OPERATIONS,
        quality_raters: Mapping[str, QualityRater] | None = None,
        obs: Observability | None = None,
        rate_limiter: ServiceRateLimiter | None = None,
        coalescer: RequestCoalescer | None = None,
        admission: AdmissionController | None = None,
        tenancy: Tenancy | None = None,
        coalesce_identical: bool = True,
        serve_stale_on_error: bool = False,
        stale_while_revalidate: bool = False,
        use_async_core: bool = False,
    ) -> None:
        """Build the client around ``registry``.

        Args:
            registry: the services this client can reach.
            monitor/cache/predictor/ranker/failover/quota/executor:
                optional collaborator overrides; defaults are built
                around the registry's clock.
            cacheable_operations: operations safe to serve from cache
                (and to coalesce — both require idempotent reads).
            quality_raters: per-operation response quality functions.
            obs: observability bundle; ``Observability.disabled()``
                yields a zero-telemetry client.
            rate_limiter: proactive client-side token buckets (None =
                unlimited); invoke raises RateLimitExceededError
                instead of tripping the server.
            coalescer: single-flight table sharing concurrent identical
                requests; a default one is created unless
                ``coalesce_identical`` is False.
            admission: per-service bulkheads; None = no admission
                control.
            tenancy: the multi-tenant serving layer
                (:class:`repro.tenancy.Tenancy`); when set, calls made
                inside a :func:`~repro.tenancy.context.tenant_scope`
                are authorized against the tenant's budget and rate
                limit, cached in a per-tenant namespace, labelled for
                weighted-fair admission and counted in the tenant
                metrics.  None (the default) = untenanted, behavior
                unchanged.
            coalesce_identical: set False to disable coalescing without
                supplying a coalescer.
            serve_stale_on_error: degrade gracefully — when a remote
                call fails with a transient error (see
                :data:`DEGRADABLE_ERRORS`), answer from an
                expired-but-retained cache entry (``degraded=True``)
                instead of raising.  Requires a cache built with
                ``stale_grace``.
            stale_while_revalidate: serve a stale entry immediately on
                a cache miss while refreshing it asynchronously on the
                thread pool (the refresh repopulates the cache).
            use_async_core: route ``invoke`` / ``invoke_async`` /
                ``invoke_batched`` (and everything built on them)
                through the asyncio core (:mod:`repro.core.aio`) via a
                loop-runner shim instead of the thread pool.  The API,
                results, error types and metric/span names are
                unchanged; the difference is that waits happen on one
                event loop, so in-flight concurrency is no longer
                bounded by threads.
        """
        self.registry = registry
        self.clock = self._registry_clock(registry)
        self.obs = obs if obs is not None else Observability(clock=self.clock)
        self.monitor = monitor if monitor is not None else ServiceMonitor()
        self.cache = cache if cache is not None else ServiceCache(
            capacity=1024, ttl=None, clock=self.clock
        )
        self.predictor = predictor if predictor is not None else LatencyPredictor(self.monitor)
        self.ranker = ranker if ranker is not None else ServiceRanker(
            self.monitor, self.predictor
        )
        self.failover = failover if failover is not None else FailoverInvoker(
            clock=self.clock
        )
        self.quota = quota if quota is not None else ClientQuotaTracker()
        self.executor = executor if executor is not None else CallbackExecutor(max_workers=8)
        self.cacheable_operations = cacheable_operations
        # Per-operation quality raters, e.g. {"analyze": rate_analysis}.
        self.quality_raters = dict(quality_raters or {})
        # Proactive client-side rate limiting (None = unlimited): invoke
        # raises RateLimitExceededError instead of tripping the server.
        self.rate_limiter = rate_limiter
        if coalescer is None and coalesce_identical:
            coalescer = RequestCoalescer()
        self.coalescer = coalescer
        self.admission = admission
        self.tenancy = tenancy
        if tenancy is not None:
            tenancy.attach_clock(self.clock)
        self.serve_stale_on_error = serve_stale_on_error
        self.stale_while_revalidate = stale_while_revalidate
        self.use_async_core = use_async_core
        # Lazy async-core state: the AsyncInvoker mirror and the
        # loop-runner shim are only built when first used.
        self._aio = None
        self._runner = None
        self._aio_lock = threading.Lock()
        # Keys with an in-flight stale-while-revalidate refresh.
        self._swr_refreshing: set[str] = set()
        self._swr_lock = threading.Lock()
        # Batch metrics, bound lazily in _wire_observability.
        self._metric_batch_flushes = None
        self._metric_batch_items = None
        self._metric_batch_size = None
        self._metric_deadline_expired = None
        self._metric_degraded = None
        if self.obs.enabled:
            self._wire_observability()

    def _wire_observability(self) -> None:
        """Thread the obs bundle through every hot-path collaborator.

        The monitor's ``record`` is the metrics choke point, the cache
        mirrors its hit/miss stats, the failover invoker emits attempt
        spans, the coalescer/admission controller mirror their shed and
        share counters, and each (typically shared) transport reports
        wire spans to whichever client bound it first.
        """
        self.monitor.bind_metrics(self.obs.metrics)
        self.cache.bind_metrics(self.obs.metrics)
        self.failover.bind_obs(self.obs)
        if self.coalescer is not None:
            self.coalescer.bind_metrics(self.obs.metrics)
        if self.admission is not None:
            self.admission.bind_metrics(self.obs.metrics)
        if self.tenancy is not None:
            self.tenancy.bind_metrics(self.obs.metrics)
        metrics = self.obs.metrics
        self._metric_batch_flushes = metrics.counter(
            names.BATCH_FLUSHES_TOTAL, "Batched transport calls sent.").bind()
        self._metric_batch_items = metrics.counter(
            names.BATCH_ITEMS_TOTAL, "Requests shipped inside batched calls.").bind()
        self._metric_batch_size = metrics.histogram(
            names.BATCH_SIZE, "Items per batched transport call.",
            low=0.0, high=64.0, bins=16)
        self._metric_deadline_expired = metrics.counter(
            names.DEADLINE_EXPIRED_TOTAL,
            "Calls refused or cut short because the deadline was spent.").bind()
        self._metric_degraded = metrics.counter(
            names.DEGRADED_RESPONSES_TOTAL,
            "Answers produced by graceful degradation (stale or partial).").bind()
        seen = set()
        for service in self.registry:
            transport = service.transport
            if id(transport) not in seen:
                seen.add(id(transport))
                transport.bind_obs(self.obs)

    # -- async core ------------------------------------------------------------

    @property
    def aio(self):
        """The event-loop mirror of this client (lazy, cached).

        An :class:`repro.core.aio.AsyncInvoker` sharing this client's
        monitor, cache, quota, tenancy and observability — the
        ``await``-able API for callers that already run an event loop.
        The import is deferred to keep ``repro.core.invoker`` free of a
        package cycle with :mod:`repro.core.aio`.
        """
        if self._aio is None:
            from repro.core.aio import AsyncInvoker

            with self._aio_lock:
                if self._aio is None:
                    self._aio = AsyncInvoker(self)
        return self._aio

    def _loop_runner(self):
        """The facade shim's loop runner (lazy, cached)."""
        if self._runner is None:
            from repro.core.aio import LoopRunner

            with self._aio_lock:
                if self._runner is None:
                    self._runner = LoopRunner()
        return self._runner

    @staticmethod
    def _registry_clock(registry: ServiceRegistry) -> Clock:
        for service in registry:
            return service.transport.clock
        from repro.util.clock import ManualClock

        return ManualClock()

    # -- tenancy ---------------------------------------------------------------

    def _active_tenant(self) -> Tenant | None:
        """The resolved tenant for the current context, or None.

        Raises :class:`~repro.tenancy.model.TenantSuspendedError` /
        :class:`~repro.tenancy.model.UnknownTenantError` when the scope
        names a tenant the registry refuses — refusal happens before
        any cache probe or protection spends work on the call.
        """
        if self.tenancy is None:
            return None
        return self.tenancy.resolve()

    def _cache_tenant(self) -> str | None:
        """Cache namespace for the active tenant (None = shared).

        Tenants with ``isolated_cache=False`` opt back into the shared
        namespace (useful for public reference data every tenant reads
        identically).
        """
        tenant = self._active_tenant()
        if tenant is None or not tenant.isolated_cache:
            return None
        return tenant.tenant_id

    # -- core invocation -------------------------------------------------------

    def cached_result(
        self,
        service_name: str,
        operation: str,
        payload: Mapping[str, object],
        use_cache: bool = True,
        allow_stale: bool = True,
    ) -> InvocationResult | None:
        """Serve one request from the local cache, or return None.

        A hit costs no latency, no money and no quota; it is counted in
        the cache metrics and recorded in the monitor (as a cached,
        zero-latency success).  A hit only produces a zero-duration
        span when an enclosing trace is active, keeping the fast path
        cheap.  Used by :meth:`invoke`, :meth:`invoke_many` and the
        :class:`MicroBatcher` so every entry point shares one probe
        path.

        With ``stale_while_revalidate`` enabled, an expired-but-
        retained entry is served immediately (``degraded=True``) while
        an asynchronous refresh repopulates the cache; ``allow_stale=
        False`` disables that path (the refresh call itself uses it to
        avoid serving stale to its own probe).
        """
        if not use_cache or operation not in self.cacheable_operations:
            return None
        key = cache_key(service_name, operation, dict(payload),
                        tenant=self._cache_tenant())
        hit = self.cache.get(key)
        if hit is None:
            if allow_stale and self.stale_while_revalidate:
                return self._swr_serve(service_name, operation, payload, key)
            return None
        tracer = self.obs.tracer
        now = self.clock.now()
        trace_id = None
        if tracer.enabled and tracer.current_span() is not None:
            span = tracer.instant_span(
                names.SPAN_SDK_INVOKE,
                {"service": service_name, "operation": operation,
                 "cached": True, "obs.category": "cache"},
                timestamp=now)
            trace_id = span.trace_id
        self.monitor.record(
            InvocationRecord(
                service=service_name,
                operation=operation,
                timestamp=now,
                latency=0.0,
                cost=0.0,
                success=True,
                cached=True,
                trace_id=trace_id,
            )
        )
        return InvocationResult(
            value=hit,
            latency=0.0,
            cost=0.0,
            service=service_name,
            operation=operation,
            cached=True,
        )

    # -- graceful degradation ---------------------------------------------------

    def _record_degraded(self, service_name: str, operation: str,
                         stale) -> InvocationResult:
        """Account one degraded (stale) serve and build its result."""
        self.monitor.record(
            InvocationRecord(
                service=service_name,
                operation=operation,
                timestamp=self.clock.now(),
                latency=0.0,
                cost=0.0,
                success=True,
                cached=True,
            )
        )
        if self._metric_degraded is not None:
            self._metric_degraded.inc()
        return InvocationResult(
            value=stale.value,
            latency=0.0,
            cost=0.0,
            service=service_name,
            operation=operation,
            cached=True,
            degraded=True,
            stale_age=stale.age,
        )

    def _serve_stale(self, service_name: str, operation: str,
                     key: str | None,
                     error: BaseException) -> InvocationResult | None:
        """Serve-stale-on-error: a degraded answer for a failed call.

        Only fires when the client opted in, the request was cacheable
        and the failure is transient (:data:`DEGRADABLE_ERRORS`); the
        original failure has already been recorded by the remote path.
        """
        if (key is None or not self.serve_stale_on_error
                or not isinstance(error, DEGRADABLE_ERRORS)):
            return None
        stale = self.cache.get_stale(key)
        if stale is None:
            return None
        return self._record_degraded(service_name, operation, stale)

    def _swr_serve(self, service_name: str, operation: str,
                   payload: Mapping[str, object],
                   key: str) -> InvocationResult | None:
        """Stale-while-revalidate: serve stale now, refresh in background."""
        stale = self.cache.get_stale(key)
        if stale is None:
            return None
        self._refresh_async(service_name, operation, payload, key)
        return self._record_degraded(service_name, operation, stale)

    def _refresh_async(self, service_name: str, operation: str,
                       payload: Mapping[str, object], key: str):
        """Launch (at most one) background refresh for a stale key."""
        with self._swr_lock:
            if key in self._swr_refreshing:
                return None
            self._swr_refreshing.add(key)
        future = self.executor.submit(
            self.invoke, service_name, operation, dict(payload),
            allow_stale=False)

        def _finished(done) -> None:
            done.exception()  # a failed refresh keeps the stale entry
            with self._swr_lock:
                self._swr_refreshing.discard(key)

        future.add_listener(_finished)
        return future

    def _deadline_guard(self, deadline: Deadline | None, context: str) -> None:
        """Raise (and count) when the caller's budget is already spent."""
        if deadline is None:
            return
        try:
            deadline.check(context)
        except DeadlineExceededError:
            if self._metric_deadline_expired is not None:
                self._metric_deadline_expired.inc()
            raise

    def invoke(
        self,
        service_name: str,
        operation: str,
        payload: Mapping[str, object] | None = None,
        timeout: float | None = None,
        use_cache: bool = True,
        quality_rater: QualityRater | None = None,
        coalesce: bool = True,
        deadline: Deadline | None = None,
        allow_stale: bool = True,
    ) -> InvocationResult:
        """Invoke one service synchronously.

        Serves cacheable operations from the local cache when possible
        (a hit costs no latency, no money and no quota).  On a miss,
        concurrent identical requests are **coalesced**: the first
        caller leads one upstream call, every other caller blocks on
        the shared flight and receives the same result (or the same
        error) with ``coalesced=True`` and cost 0 — the cache is
        populated exactly once.  Pass ``coalesce=False`` to force an
        independent upstream call (the hedged invoker does this for its
        backup leg, which must not wait behind the primary's flight).
        Successful remote calls are recorded in the monitor together
        with their latency parameters; failures are recorded and
        re-raised.

        Every remote call runs inside an ``sdk.invoke`` span (nesting
        under whatever span is current, e.g. a failover attempt), and
        the resulting monitor record carries the trace id.

        Raises whatever the remote call raises, plus
        :class:`~repro.core.quota.BudgetExceededError` /
        :class:`~repro.core.ratelimit.RateLimitExceededError` /
        :class:`~repro.core.admission.AdmissionRejectedError` from the
        client-side protections, in that order.

        A ``deadline`` (:class:`repro.util.deadline.Deadline`) bounds
        the whole invocation end to end: an already-expired budget
        fails fast (or serves stale, when enabled) before any
        protection is consulted, follower flight waits and the wire
        timeout are clamped to the remaining budget, and the bulkhead
        never queues past it.  ``allow_stale=False`` disables the
        degraded serve paths for this call (background refreshes use
        it).

        With ``use_async_core=True`` the whole call runs as a
        coroutine on the client's loop runner; semantics, errors and
        telemetry are unchanged.
        """
        if self.use_async_core:
            return self._loop_runner().run(self.aio.ainvoke(
                service_name, operation, payload, timeout=timeout,
                use_cache=use_cache, quality_rater=quality_rater,
                coalesce=coalesce, deadline=deadline,
                allow_stale=allow_stale))
        payload = dict(payload or {})
        service = self.registry.get(service_name)
        hit = self.cached_result(service_name, operation, payload, use_cache,
                                 allow_stale=allow_stale)
        if hit is not None:
            return hit

        cacheable = use_cache and operation in self.cacheable_operations
        key = (cache_key(service_name, operation, payload,
                         tenant=self._cache_tenant())
               if cacheable else None)

        if deadline is not None and deadline.expired():
            # Spent budget: a stale answer is the only useful response.
            try:
                self._deadline_guard(deadline, f"invoke {service_name}.{operation}")
            except DeadlineExceededError as error:
                degraded = (self._serve_stale(service_name, operation, key, error)
                            if allow_stale else None)
                if degraded is not None:
                    return degraded
                raise

        flight = None
        if self.coalescer is not None and coalesce and key is not None:
            leader, flight = self.coalescer.lead_or_join(key)
            if not leader:
                # Follower: the leader pays the wire call, the quota and
                # the monitor record; we report the shared outcome.
                wait = deadline.clamp(timeout) if deadline is not None else timeout
                shared = flight.result(timeout=self._real_timeout(wait))
                return replace(shared, coalesced=True, cost=0.0)
        try:
            result = self._invoke_remote(
                service, service_name, operation, payload, timeout,
                key, quality_rater, deadline=deadline)
        except Exception as error:
            if flight is not None:
                self.coalescer.fail(flight, error)
            degraded = (self._serve_stale(service_name, operation, key, error)
                        if allow_stale else None)
            if degraded is not None:
                return degraded
            raise
        if flight is not None:
            self.coalescer.complete(flight, result)
        return result

    def _real_timeout(self, timeout: float | None) -> float | None:
        """Simulated timeout -> wall seconds for blocking waits."""
        if timeout is None:
            return None
        return timeout * getattr(self.clock, "time_scale", 1.0)

    def _invoke_remote(
        self,
        service,
        service_name: str,
        operation: str,
        payload: dict,
        timeout: float | None,
        key: str | None,
        quality_rater: QualityRater | None,
        deadline: Deadline | None = None,
    ) -> InvocationResult:
        """One real upstream call: protections, span, monitor, cache.

        The client-side protections run in order: tenant authorization
        (rate limit then budget, when a tenant scope is active), the
        client-wide budget reservation, rate limiter, then admission
        control — the bulkhead permit is held for exactly the duration
        of the wire call, so it bounds concurrency rather than call
        counts.  Budgets are charged atomically up front (a call slot
        plus the cost-model estimate) and settled to the billed cost on
        success or refunded on failure, so a concurrent burst cannot
        overshoot.  With a ``deadline``, the bulkhead queues only
        within the remaining budget and the wire timeout is clamped to
        whatever budget survives the queue wait.
        """
        tracer = self.obs.tracer
        with tracer.span(names.SPAN_SDK_INVOKE,
                         {"service": service_name, "operation": operation}) as span:
            trace_id = span.trace_id
            tenant = self._active_tenant()
            if tenant is not None:
                span.set_attribute("tenant", tenant.tenant_id)
            # The cost estimate feeds the atomic budget reservations; it
            # is only computed when some ledger will actually use it.
            estimate = 0.0
            if tenant is not None or self.quota.has_cost_limit(service_name):
                estimate = service.cost_model.cost(
                    ServiceRequest(operation, payload))
            charge = (self.tenancy.authorize(tenant, estimate)
                      if tenant is not None else None)
            reservation = None
            try:
                reservation = self.quota.reserve(service_name, estimate)
                if self.rate_limiter is not None:
                    self.rate_limiter.acquire_or_raise(service_name)
                bulkhead = (self.admission.bulkhead_for(service_name)
                            if self.admission is not None else None)
                if bulkhead is not None:
                    try:
                        bulkhead.acquire(
                            deadline=deadline,
                            tenant=tenant.tenant_id if tenant is not None else None)
                    except AdmissionRejectedError:
                        if tenant is not None:
                            self.tenancy.count_rejection(
                                tenant.tenant_id, REASON_SHED)
                        raise
            except Exception:
                if reservation is not None:
                    self.quota.cancel(reservation)
                if charge is not None:
                    self.tenancy.cancel(tenant, charge)
                raise
            params = service.latency_params(ServiceRequest(operation, payload))
            rater = quality_rater or self.quality_raters.get(operation)
            try:
                if deadline is not None:
                    self._deadline_guard(
                        deadline, f"invoke {service_name}.{operation}")
                    timeout = deadline.clamp(timeout)
                response = service.invoke(operation, payload, timeout=timeout)
            except Exception as error:
                self.monitor.record(
                    InvocationRecord(
                        service=service_name,
                        operation=operation,
                        timestamp=self.clock.now(),
                        latency=None,
                        cost=0.0,
                        success=False,
                        error=repr(error),
                        latency_params=params,
                        trace_id=trace_id,
                    )
                )
                self.quota.cancel(reservation)
                if charge is not None:
                    self.tenancy.cancel(tenant, charge)
                raise
            finally:
                if bulkhead is not None:
                    bulkhead.release()

            quality = rater(response.value) if rater is not None else None
            self.quota.settle(reservation, response.cost)
            if charge is not None:
                self.tenancy.settle(tenant, charge, response.cost)
            self.monitor.record(
                InvocationRecord(
                    service=service_name,
                    operation=operation,
                    timestamp=self.clock.now(),
                    latency=response.latency,
                    cost=response.cost,
                    success=True,
                    latency_params=params,
                    quality=quality,
                    trace_id=trace_id,
                )
            )
            span.set_attribute("latency", response.latency)
            span.set_attribute("cost", response.cost)
            if key is not None:
                self.cache.put(key, response.value)
            if operation in ("put", "delete"):
                # A mutation makes this service's cached reads suspect —
                # the consistency issue §2 warns about.
                self.cache.invalidate_service(service_name)
            return InvocationResult(
                value=response.value,
                latency=response.latency,
                cost=response.cost,
                service=service_name,
                operation=operation,
            )

    # -- asynchronous invocation -------------------------------------------------

    def invoke_async(
        self,
        service_name: str,
        operation: str,
        payload: Mapping[str, object] | None = None,
        timeout: float | None = None,
        use_cache: bool = True,
        coalesce: bool = True,
        deadline: Deadline | None = None,
    ) -> ListenableFuture[InvocationResult]:
        """Invoke on the thread pool; returns a listenable future.

        Register callbacks with ``future.add_listener`` — e.g. the
        paper's example of being notified when a cloud-database store
        completes without blocking the application.  ``coalesce=False``
        forces an independent upstream call even when an identical
        request is already in flight (hedging relies on this).  A
        ``deadline`` is carried into the pooled call unchanged — it is
        an absolute expiry, so handing it across threads keeps the
        original budget.

        With ``use_async_core=True`` the call becomes an event-loop
        task instead of occupying a pool thread; the returned
        listenable settles from the loop with identical semantics.
        """
        if self.use_async_core:
            return self._loop_runner().submit_listenable(self.aio.ainvoke(
                service_name, operation, payload, timeout=timeout,
                use_cache=use_cache, coalesce=coalesce, deadline=deadline))
        return self.executor.submit(
            self.invoke, service_name, operation, payload,
            timeout=timeout, use_cache=use_cache, coalesce=coalesce,
            deadline=deadline,
        )

    # -- batched invocation ------------------------------------------------------

    def invoke_batched(
        self,
        service_name: str,
        operation: str,
        payloads: Sequence[Mapping[str, object]],
        timeout: float | None = None,
        use_cache: bool = True,
        deadline: Deadline | None = None,
    ) -> list[InvocationResult | Exception]:
        """Ship ``payloads`` to the service's batch endpoint in ONE call.

        The whole batch pays one wire round trip, one quota check, one
        rate-limiter token and holds one bulkhead permit; the service
        executes the items vectorized (compute latency is the max of
        the per-item samples, not their sum).  Per-item outcomes come
        back in input order — a failed item is returned as its
        exception, isolated from its batch-mates.  Each successful item
        is recorded in the monitor, charged to the quota tracker and
        written to the cache individually.

        Raises ``ValueError`` when the service declares no batch
        support (see ``batch_max_size`` in the catalog) or the batch
        exceeds its declared limit; transport-level failures (offline,
        timeout) raise for the whole batch, because the single wire
        call failed for every item.

        Under a tenant scope the batch is authorized as **one** tenant
        call (one call slot, one rate token) charged with the summed
        per-item cost estimate, settled to the summed billed cost —
        the tenant-ledger analogue of the batch paying one wire round
        trip.

        With ``use_async_core=True`` the batch call runs as a
        coroutine on the client's loop runner, unchanged otherwise.
        """
        if self.use_async_core:
            return self._loop_runner().run(self.aio.ainvoke_batched(
                service_name, operation, payloads, timeout=timeout,
                use_cache=use_cache, deadline=deadline))
        payloads = [dict(payload) for payload in payloads]
        if not payloads:
            return []
        service = self.registry.get(service_name)
        tracer = self.obs.tracer
        with tracer.span(names.SPAN_SDK_INVOKE_BATCH,
                         {"service": service_name, "operation": operation,
                          names.BATCH_SIZE: len(payloads),
                          "obs.category": "batch"}) as span:
            trace_id = span.trace_id
            self._deadline_guard(
                deadline, f"invoke_batched {service_name}.{operation}")
            tenant = self._active_tenant()
            if tenant is not None:
                span.set_attribute("tenant", tenant.tenant_id)
            estimate = (sum(service.cost_model.cost(ServiceRequest(operation, p))
                            for p in payloads)
                        if tenant is not None else 0.0)
            charge = (self.tenancy.authorize(tenant, estimate)
                      if tenant is not None else None)
            try:
                self.quota.check(service_name)
                if self.rate_limiter is not None:
                    self.rate_limiter.acquire_or_raise(service_name)
                bulkhead = (self.admission.bulkhead_for(service_name)
                            if self.admission is not None else None)
                if bulkhead is not None:
                    try:
                        bulkhead.acquire(
                            deadline=deadline,
                            tenant=tenant.tenant_id if tenant is not None else None)
                    except AdmissionRejectedError:
                        if tenant is not None:
                            self.tenancy.count_rejection(
                                tenant.tenant_id, REASON_SHED)
                        raise
                try:
                    if deadline is not None:
                        self._deadline_guard(
                            deadline, f"invoke_batched {service_name}.{operation}")
                        timeout = deadline.clamp(timeout)
                    responses = service.invoke_batch(operation, payloads,
                                                     timeout=timeout)
                finally:
                    if bulkhead is not None:
                        bulkhead.release()
            except Exception:
                if charge is not None:
                    self.tenancy.cancel(tenant, charge)
                raise
            if charge is not None:
                billed = sum(response.cost for response in responses
                             if not isinstance(response, Exception))
                self.tenancy.settle(tenant, charge, billed)
            if self._metric_batch_flushes is not None:
                self._metric_batch_flushes.inc()
                self._metric_batch_items.inc(len(payloads))
                self._metric_batch_size.observe(float(len(payloads)))
            now = self.clock.now()
            cacheable = use_cache and operation in self.cacheable_operations
            namespace = self._cache_tenant() if cacheable else None
            batch_latency = 0.0
            outcomes: list[InvocationResult | Exception] = []
            for payload, response in zip(payloads, responses):
                if isinstance(response, Exception):
                    self.monitor.record(
                        InvocationRecord(
                            service=service_name,
                            operation=operation,
                            timestamp=now,
                            latency=None,
                            cost=0.0,
                            success=False,
                            error=repr(response),
                            trace_id=trace_id,
                        )
                    )
                    outcomes.append(response)
                    continue
                batch_latency = response.latency
                self.quota.record(service_name, response.cost)
                self.monitor.record(
                    InvocationRecord(
                        service=service_name,
                        operation=operation,
                        timestamp=now,
                        latency=response.latency,
                        cost=response.cost,
                        success=True,
                        trace_id=trace_id,
                    )
                )
                if cacheable:
                    self.cache.put(
                        cache_key(service_name, operation, payload,
                                  tenant=namespace),
                        response.value)
                outcomes.append(InvocationResult(
                    value=response.value,
                    latency=response.latency,
                    cost=response.cost,
                    service=service_name,
                    operation=operation,
                    batched=True,
                ))
            span.set_attribute("latency", batch_latency)
            return outcomes

    def invoke_many(
        self,
        service_name: str,
        operation: str,
        payloads: Sequence[Mapping[str, object]],
        timeout: float | None = None,
        use_cache: bool = True,
        deadline: Deadline | None = None,
    ) -> list[InvocationResult | Exception]:
        """Run one operation over many payloads as efficiently as possible.

        The burst-shaped front door: serves cache hits first, folds
        identical payloads within the burst into one upstream item
        (counted as coalesce hits), then ships the remaining unique
        payloads through the batch endpoint in ``batch_max_size``
        chunks — or falls back to sequential :meth:`invoke` calls when
        the service declares no batch support.  Results come back in
        input order; folded duplicates share the leader's result with
        ``coalesced=True`` and cost 0.  Per-item failures are returned
        as exceptions rather than raised.
        """
        payloads = [dict(payload) for payload in payloads]
        service = self.registry.get(service_name)
        results: list[InvocationResult | Exception | None] = [None] * len(payloads)

        remaining: list[int] = []
        for index, payload in enumerate(payloads):
            hit = self.cached_result(service_name, operation, payload, use_cache)
            if hit is not None:
                results[index] = hit
            else:
                remaining.append(index)

        # In-batch dedup: identical payloads ride one upstream item.
        namespace = self._cache_tenant()
        groups: dict[str, list[int]] = {}
        for index in remaining:
            key = cache_key(service_name, operation, payloads[index],
                            tenant=namespace)
            groups.setdefault(key, []).append(index)
        folded = len(remaining) - len(groups)
        if folded and self.coalescer is not None:
            self.coalescer.count_folded(folded)
        leaders = [indices[0] for indices in groups.values()]

        if service.supports_batching and leaders:
            limit = service.batch_max_size
            for start in range(0, len(leaders), limit):
                chunk = leaders[start:start + limit]
                try:
                    outcomes = self.invoke_batched(
                        service_name, operation,
                        [payloads[index] for index in chunk],
                        timeout=timeout, use_cache=use_cache,
                        deadline=deadline)
                except DeadlineExceededError as error:
                    outcomes = [error] * len(chunk)
                for index, outcome in zip(chunk, outcomes):
                    results[index] = outcome
        else:
            for index in leaders:
                try:
                    results[index] = self.invoke(
                        service_name, operation, payloads[index],
                        timeout=timeout, use_cache=use_cache,
                        deadline=deadline)
                except Exception as error:
                    results[index] = error

        for indices in groups.values():
            shared = results[indices[0]]
            for index in indices[1:]:
                if isinstance(shared, InvocationResult):
                    results[index] = replace(shared, coalesced=True, cost=0.0)
                else:
                    results[index] = shared
        return results

    def batcher(self, max_batch_size: int | None = None,
                max_wait: float = 0.05) -> MicroBatcher:
        """A :class:`MicroBatcher` bound to this client.

        ``max_batch_size`` caps windows below the service's declared
        limit (None = use the catalog's ``batch_max_size`` as-is);
        ``max_wait`` is the bounded window in simulated seconds.
        """
        return MicroBatcher(self, max_batch_size=max_batch_size,
                            max_wait=max_wait)

    def invoke_all(
        self,
        calls: Sequence[tuple[str, str, Mapping[str, object]]],
        timeout: float | None = None,
        use_cache: bool = True,
        deadline: Deadline | None = None,
    ) -> list[InvocationResult | Exception]:
        """Run many calls in parallel; preserves order.

        Failed calls come back as their exception rather than raising,
        so one bad service does not lose the other results.  One shared
        ``deadline`` bounds every leg — it is absolute, so the legs
        race the same expiry rather than each getting a fresh budget.
        """
        futures = [
            self.invoke_async(service, operation, payload,
                              timeout=timeout, use_cache=use_cache,
                              deadline=deadline)
            for service, operation, payload in calls
        ]
        results: list[InvocationResult | Exception] = []
        for future in futures:
            error = future.exception()
            results.append(error if error is not None else future.get())
        return results

    # -- ranked failover -----------------------------------------------------------

    def invoke_with_failover(
        self,
        kind: str,
        operation: str,
        payload: Mapping[str, object] | None = None,
        timeout: float | None = None,
        weights: Weights = Weights(),
        formula: str | ScoreFormula = "weighted",
        use_cache: bool = True,
        deadline: Deadline | None = None,
    ) -> InvocationResult:
        """Invoke the best-ranked service of ``kind``, failing over down
        the ranking until one responds (§2.1's strategy).

        Runs inside an ``sdk.invoke_with_failover`` root span; each
        attempt becomes a child span and backoff sleeps become events,
        so the attribution analyzer can split the call's wall time
        between retry waits and wire time.  A ``deadline`` bounds the
        whole failover walk: per-candidate retry loops stop when the
        remaining budget cannot cover the next backoff, and no new
        candidate is tried past expiry."""
        with self.obs.tracer.span(names.SPAN_SDK_INVOKE_WITH_FAILOVER,
                                  {"kind": kind, "operation": operation}):
            candidates = [service.name
                          for service in self.registry.services_of_kind(kind)]
            if not candidates:
                raise ValueError(f"no services of kind {kind!r}")
            request = ServiceRequest(operation, dict(payload or {}))
            params = self.registry.get(candidates[0]).latency_params(request)
            ranked = [name for name, _ in
                      self.ranker.rank(candidates, params, formula, weights)]

            served_by, result, attempts = self.failover.invoke(
                ranked,
                lambda name: self.invoke(name, operation, payload,
                                         timeout=timeout, use_cache=use_cache,
                                         deadline=deadline),
                deadline=deadline,
            )
        return InvocationResult(
            value=result.value,
            latency=result.latency,
            cost=result.cost,
            service=served_by,
            operation=operation,
            cached=result.cached,
            attempts=tuple(attempts),
            degraded=result.degraded,
            stale_age=result.stale_age,
        )

    # -- redundant multi-service invocation ------------------------------------------

    def invoke_redundant(
        self,
        service_names: Sequence[str],
        operation: str,
        payload: Mapping[str, object] | None = None,
        timeout: float | None = None,
        parallel: bool = True,
        use_cache: bool = True,
        deadline: Deadline | None = None,
    ) -> dict[str, InvocationResult | Exception]:
        """Invoke the *same* request on several services.

        §2.1: invoke more than one service to add redundancy, to
        compare providers, or to combine their outputs (see
        :class:`repro.core.aggregation.MultiServiceCombiner`).
        Returns per-service results; failures are captured per service,
        so a partial aggregation (``combine_partial``) can still be
        built from whoever answered within the shared ``deadline``.
        """
        names = list(service_names)
        if parallel:
            outcomes = self.invoke_all(
                [(name, operation, dict(payload or {})) for name in names],
                timeout=timeout, use_cache=use_cache, deadline=deadline,
            )
            return dict(zip(names, outcomes))
        results: dict[str, InvocationResult | Exception] = {}
        for name in names:
            try:
                results[name] = self.invoke(name, operation, payload,
                                            timeout=timeout, use_cache=use_cache,
                                            deadline=deadline)
            except Exception as error:
                results[name] = error
        return results

    # -- convenience -----------------------------------------------------------------

    def rank_services(
        self,
        kind: str,
        latency_params: Mapping[str, float] | None = None,
        weights: Weights = Weights(),
        formula: str | ScoreFormula = "weighted",
    ) -> list[tuple[str, float]]:
        """Rank every registered service of ``kind`` (best first)."""
        names = [service.name for service in self.registry.services_of_kind(kind)]
        return self.ranker.rank(names, latency_params, formula, weights)

    def best_service(
        self,
        kind: str,
        latency_params: Mapping[str, float] | None = None,
        weights: Weights = Weights(),
        formula: str | ScoreFormula = "weighted",
    ) -> str:
        """The top-ranked service of ``kind``."""
        ranked = self.rank_services(kind, latency_params, weights, formula)
        if not ranked:
            raise ValueError(f"no services of kind {kind!r}")
        return ranked[0][0]

    def service_summaries(self) -> list[dict]:
        """Monitoring summaries for every service seen so far."""
        return [self.monitor.summary(name) for name in self.monitor.services()]

    def close(self) -> None:
        """Shut down the thread pool (and the loop runner, if started)."""
        self.executor.shutdown()
        if self._runner is not None:
            self._runner.shutdown()
            self._runner = None

    def __enter__(self) -> "RichClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
