"""The image analogue of the Figure-3 pipeline.

"Similar types of analyses can be performed on other types of data such
as image files.  Search engines can identify images matching a query;
these images can be passed to an image analysis service and/or stored
locally" (§2.2).

:class:`ImageSearchAnalyzer` searches for images, stores their
descriptors locally (so re-analysis needs no network), classifies each
image with one or several visual recognition providers, combines the
providers' verdicts by agreement, and aggregates the label distribution
across the whole result set.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Sequence

from repro.core.invoker import RichClient
from repro.stores.kvstore import InMemoryKeyValueStore, KeyValueStore


class ImageSearchAnalyzer:
    """Search → store → classify → aggregate, for images."""

    def __init__(
        self,
        client: RichClient,
        search_service: str = "pixfinder",
        store: KeyValueStore | None = None,
    ) -> None:
        self.client = client
        self.search_service = search_service
        self.store = store if store is not None else InMemoryKeyValueStore()

    # -- search and local storage -------------------------------------------

    def search_images(self, query: str, limit: int = 10) -> list[dict]:
        """Find images and store each descriptor locally."""
        result = self.client.invoke(
            self.search_service, "search_images",
            {"query": query, "limit": limit})
        hits = result.value["results"]
        for hit in hits:
            self.store.put(f"img::{hit['image_id']}", {
                "descriptor": hit["descriptor"],
                "tags": hit["tags"],
                "query": query,
                "stored_at": self.client.clock.now(),
            })
        return hits

    def stored_image(self, image_id: str) -> dict | None:
        """An archived image record by id, or None."""
        value = self.store.get(f"img::{image_id}", default=None)
        return value if isinstance(value, dict) else None

    # -- classification -------------------------------------------------------

    def classify(self, descriptor: list[float], provider: str) -> list[dict]:
        """One provider's ranked labels for one image."""
        result = self.client.invoke(provider, "classify",
                                    {"descriptor": descriptor})
        return result.value["classes"]

    def classify_with_agreement(
        self, descriptor: list[float], providers: Sequence[str]
    ) -> dict:
        """Several providers vote; confidence = agreement fraction.

        Mirrors the entity-combination rule of §2.1 applied to image
        labels: a label named top-1 by more providers is more credible.
        """
        votes: Counter[str] = Counter()
        per_provider: dict[str, str] = {}
        for provider in providers:
            top = self.classify(descriptor, provider)[0]["label"]
            votes[top] += 1
            per_provider[provider] = top
        label, count = max(sorted(votes.items()), key=lambda item: item[1])
        return {
            "label": label,
            "confidence": count / len(providers),
            "votes": per_provider,
        }

    # -- the full pipeline -------------------------------------------------------

    def analyze_image_search(
        self,
        query: str,
        providers: Sequence[str],
        limit: int = 10,
    ) -> dict:
        """Search, store, classify every hit, aggregate the label mix.

        Returns the per-image verdicts and the aggregate label
        distribution — e.g. how *on-topic* the image search results for
        a query actually are.
        """
        hits = self.search_images(query, limit=limit)
        verdicts = []
        label_counts: Counter[str] = Counter()
        agreement_by_label: dict[str, list[float]] = defaultdict(list)
        for hit in hits:
            verdict = self.classify_with_agreement(hit["descriptor"], providers)
            verdicts.append({"image_id": hit["image_id"], **verdict})
            label_counts[verdict["label"]] += 1
            agreement_by_label[verdict["label"]].append(verdict["confidence"])
        on_topic = label_counts.get(query, 0)
        return {
            "query": query,
            "images_analyzed": len(hits),
            "verdicts": verdicts,
            "label_distribution": dict(label_counts),
            "on_topic_fraction": on_topic / len(hits) if hits else 0.0,
            "mean_agreement": {
                label: sum(values) / len(values)
                for label, values in agreement_by_label.items()
            },
        }

    def reanalyze_stored(self, providers: Sequence[str]) -> dict:
        """Re-classify every locally stored image without re-searching."""
        label_counts: Counter[str] = Counter()
        analyzed = 0
        for key in self.store.keys("img::"):
            record = self.store.get(key)
            verdict = self.classify_with_agreement(record["descriptor"], providers)
            label_counts[verdict["label"]] += 1
            analyzed += 1
        return {"images_analyzed": analyzed,
                "label_distribution": dict(label_counts)}
