"""Service scoring and ranking — Equations 1 and 2 of the paper.

Equation 1 (raw weighted score)::

    S = alpha1 * r + beta1 * c - gamma1 * q

Equation 2 (normalized against the candidate set's maxima)::

    Sn = alpha2 * r/r_max + beta2 * c/c_max - gamma2 * q/q_max

where ``r`` is predicted response time, ``c`` predicted monetary cost
and ``q`` predicted quality (higher is better).  **Lower scores are
better**; ranking sorts ascending by score.  Custom scoring formulas
are supported, as the paper requires.

Predictions come from collected monitoring data.  When a service has
insufficient history, the paper prescribes defaults: "the average value
for similar services, the median value for similar services, or default
values provided by the user" — all three fallbacks are implemented.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.analytics.stats import mean, median
from repro.core.latency import LatencyPredictor
from repro.core.monitoring import ServiceMonitor
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class Weights:
    """Relative importance of response time, cost and quality.

    Applies to either equation (alpha/beta/gamma 1 or 2).
    """

    response_time: float = 1.0
    cost: float = 1.0
    quality: float = 1.0


@dataclass(frozen=True)
class Estimate:
    """Predicted (r, c, q) for one service, with fallback provenance."""

    service: str
    response_time: float
    cost: float
    quality: float
    defaults_used: tuple[str, ...] = field(default=())


def weighted_score(response_time: float, cost: float, quality: float,
                   weights: Weights = Weights()) -> float:
    """Equation 1: raw weighted score (lower is better)."""
    return (
        weights.response_time * response_time
        + weights.cost * cost
        - weights.quality * quality
    )


def normalized_score(
    response_time: float,
    cost: float,
    quality: float,
    max_response_time: float,
    max_cost: float,
    max_quality: float,
    weights: Weights = Weights(),
) -> float:
    """Equation 2: each term normalized by the candidate set's maximum.

    The paper assumes r, c, q non-negative; a zero maximum makes that
    term vanish for every candidate (all equal), so it contributes 0.
    """
    for name, value in (("response_time", response_time), ("cost", cost),
                        ("quality", quality)):
        if value < 0:
            raise ValueError(f"Equation 2 requires non-negative {name}, got {value}")
    time_term = response_time / max_response_time if max_response_time > 0 else 0.0
    cost_term = cost / max_cost if max_cost > 0 else 0.0
    quality_term = quality / max_quality if max_quality > 0 else 0.0
    return (
        weights.response_time * time_term
        + weights.cost * cost_term
        - weights.quality * quality_term
    )


ScoreFormula = Callable[[Estimate, Sequence[Estimate]], float]
"""Custom formula: (this service's estimate, all candidates) -> score."""


class ServiceRanker:
    """Ranks services with similar functionality from monitoring data."""

    def __init__(
        self,
        monitor: ServiceMonitor,
        predictor: LatencyPredictor | None = None,
        fallback: str = "mean",
        user_defaults: Mapping[str, float] | None = None,
    ) -> None:
        if fallback not in ("mean", "median", "user"):
            raise ConfigurationError(
                f"fallback must be 'mean', 'median' or 'user', got {fallback!r}"
            )
        self.monitor = monitor
        self.predictor = predictor if predictor is not None else LatencyPredictor(monitor)
        self.fallback = fallback
        # User-provided defaults for services with no history at all.
        self.user_defaults = {
            "response_time": 1.0,
            "cost": 0.0,
            "quality": 0.0,
            **(dict(user_defaults) if user_defaults else {}),
        }

    # -- estimation -----------------------------------------------------------

    def _fallback_value(self, known: list[float], dimension: str) -> float:
        if self.fallback == "user" or not known:
            return self.user_defaults[dimension]
        if self.fallback == "median":
            return median(known)
        return mean(known)

    def estimates(
        self,
        services: Sequence[str],
        latency_params: Mapping[str, float] | None = None,
    ) -> list[Estimate]:
        """Predicted (r, c, q) per candidate, filling gaps per the paper."""
        raw: dict[str, dict[str, float | None]] = {}
        for service in services:
            raw[service] = {
                "response_time": self.predictor.predict(service, latency_params),
                "cost": self.monitor.mean_cost(service),
                "quality": self.monitor.mean_quality(service),
            }
        estimates = []
        for service in services:
            values = {}
            defaults_used = []
            for dimension in ("response_time", "cost", "quality"):
                value = raw[service][dimension]
                if value is None:
                    known = [
                        raw[other][dimension]
                        for other in services
                        if other != service and raw[other][dimension] is not None
                    ]
                    value = self._fallback_value(known, dimension)
                    defaults_used.append(dimension)
                values[dimension] = value
            estimates.append(
                Estimate(
                    service=service,
                    response_time=values["response_time"],
                    cost=values["cost"],
                    quality=values["quality"],
                    defaults_used=tuple(defaults_used),
                )
            )
        return estimates

    # -- ranking ---------------------------------------------------------------

    def score(
        self,
        estimate: Estimate,
        candidates: Sequence[Estimate],
        formula: str | ScoreFormula = "weighted",
        weights: Weights = Weights(),
    ) -> float:
        """Score one estimate with Eq.1, Eq.2 or a custom formula."""
        if callable(formula):
            return formula(estimate, candidates)
        if formula == "weighted":
            return weighted_score(
                estimate.response_time, estimate.cost, estimate.quality, weights
            )
        if formula == "normalized":
            return normalized_score(
                estimate.response_time,
                estimate.cost,
                estimate.quality,
                max(candidate.response_time for candidate in candidates),
                max(candidate.cost for candidate in candidates),
                max(candidate.quality for candidate in candidates),
                weights,
            )
        raise ConfigurationError(f"unknown formula {formula!r}")

    def rank(
        self,
        services: Sequence[str],
        latency_params: Mapping[str, float] | None = None,
        formula: str | ScoreFormula = "weighted",
        weights: Weights = Weights(),
    ) -> list[tuple[str, float]]:
        """Candidates sorted ascending by score (best first).

        "The service with the lowest score is the most desirable one."
        """
        if not services:
            return []
        estimates = self.estimates(services, latency_params)
        scored = [
            (estimate.service, self.score(estimate, estimates, formula, weights))
            for estimate in estimates
        ]
        scored.sort(key=lambda item: (item[1], item[0]))
        return scored

    def best(
        self,
        services: Sequence[str],
        latency_params: Mapping[str, float] | None = None,
        formula: str | ScoreFormula = "weighted",
        weights: Weights = Weights(),
    ) -> str:
        """The top-ranked service name."""
        ranked = self.rank(services, latency_params, formula, weights)
        if not ranked:
            raise ValueError("cannot pick the best of zero services")
        return ranked[0][0]
