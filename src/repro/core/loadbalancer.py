"""Load balancing across services with similar functionality.

The paper's SDK chooses *the best* service per request; a natural
production extension (and a useful ablation against pure best-pick) is
to *spread* requests across the candidate set.  Four policies:

* :class:`RoundRobinBalancer` — equal rotation;
* :class:`WeightedScoreBalancer` — random choice weighted by ranking
  score (better-ranked services get proportionally more traffic, but
  weaker ones stay warm and keep their monitoring history fresh);
* :class:`LeastSpendBalancer` — send each request to the candidate with
  the lowest accumulated monetary spend, equalizing bills;
* :class:`StickyBalancer` — hash affinity: the same request key always
  lands on the same service (maximizes that service's cache locality).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence

from repro.core.monitoring import ServiceMonitor
from repro.core.ranking import ServiceRanker, Weights
from repro.util.rng import SeededRng


class Balancer(ABC):
    """Chooses which of several equivalent services takes a request."""

    @abstractmethod
    def choose(self, candidates: Sequence[str],
               request_key: str | None = None) -> str:
        """Pick a service for one request."""

    def _require(self, candidates: Sequence[str]) -> None:
        if not candidates:
            raise ValueError("no candidate services to balance across")


class RoundRobinBalancer(Balancer):
    """Strict rotation, independent of request content."""

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, candidates: Sequence[str],
               request_key: str | None = None) -> str:
        """Next candidate in rotation."""
        self._require(candidates)
        chosen = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return chosen


class WeightedScoreBalancer(Balancer):
    """Traffic proportional to ranking goodness.

    Scores come from the SDK's ranker (lower = better); they are
    converted to weights by rank position (1, 1/2, 1/3, ...) so the
    distribution is robust to the scores' absolute scale.
    """

    def __init__(self, ranker: ServiceRanker, weights: Weights = Weights(),
                 seed: int = 0) -> None:
        self.ranker = ranker
        self.weights = weights
        self._rng = SeededRng(seed)

    def choose(self, candidates: Sequence[str],
               request_key: str | None = None,
               latency_params: Mapping[str, float] | None = None) -> str:
        """Weighted-random candidate, biased toward the live ranking."""
        self._require(candidates)
        ranked = self.ranker.rank(list(candidates), latency_params,
                                  weights=self.weights)
        names = [name for name, _ in ranked]
        harmonic = [1.0 / (position + 1) for position in range(len(names))]
        return self._rng.weighted_choice(names, harmonic)


class LeastSpendBalancer(Balancer):
    """Route to the candidate we have spent the least money on."""

    def __init__(self, monitor: ServiceMonitor) -> None:
        self.monitor = monitor

    def choose(self, candidates: Sequence[str],
               request_key: str | None = None) -> str:
        """The candidate with the lowest total spend so far."""
        self._require(candidates)
        return min(candidates,
                   key=lambda name: (self.monitor.total_cost(name), name))


class StickyBalancer(Balancer):
    """Hash affinity: one request key, one service, forever.

    Maximizes per-service cache locality when the services themselves
    cache (and keeps A/B comparisons clean: each document is always
    judged by the same provider).
    """

    def choose(self, candidates: Sequence[str],
               request_key: str | None = None) -> str:
        """The candidate this request key always hashes to."""
        self._require(candidates)
        if request_key is None:
            return candidates[0]
        digest = hashlib.sha256(request_key.encode()).digest()
        index = int.from_bytes(digest[:4], "big") % len(candidates)
        return candidates[index]


def traffic_distribution(balancer: Balancer, candidates: Sequence[str],
                         request_keys: Sequence[str]) -> dict[str, int]:
    """How a key stream would be spread — used by tests and benches."""
    counts = {name: 0 for name in candidates}
    for key in request_keys:
        counts[balancer.choose(candidates, request_key=key)] += 1
    return counts
