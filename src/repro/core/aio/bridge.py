"""Bridges between :class:`ListenableFuture` and asyncio.

The two cores meet at exactly two seams: sync code waiting on async
work (handled by :class:`~repro.core.aio.runner.LoopRunner`) and
futures crossing between the idioms, handled here.  Both directions
preserve the error/result unchanged; neither blocks.
"""

from __future__ import annotations

import asyncio

from repro.core.futures import ListenableFuture


def listenable_to_asyncio(
    listenable: ListenableFuture,
    loop: asyncio.AbstractEventLoop | None = None,
) -> asyncio.Future:
    """Mirror a :class:`ListenableFuture` into an asyncio future.

    The listener fires on whatever thread settles the listenable, so
    the asyncio future is settled via ``call_soon_threadsafe`` — safe
    from any thread, delivered on the loop.  Cancelling the returned
    asyncio future detaches the waiter only; the underlying listenable
    (and the work behind it) keeps running, which matches the
    thread-pool core's inability to interrupt a worker.
    """
    if loop is None:
        loop = asyncio.get_running_loop()
    future: asyncio.Future = loop.create_future()

    def settle(done: ListenableFuture) -> None:
        error = done.exception()

        def deliver() -> None:
            if future.cancelled():
                return
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(done.get())

        loop.call_soon_threadsafe(deliver)

    listenable.add_listener(settle)
    return future


def task_to_listenable(task: asyncio.Task) -> ListenableFuture:
    """Mirror an asyncio task into a :class:`ListenableFuture`.

    Listeners run on the loop thread when the task finishes; a
    cancelled task settles the listenable with
    ``asyncio.CancelledError``.  Must be called from the loop that owns
    the task (``add_done_callback`` is not thread-safe).
    """
    listenable: ListenableFuture = ListenableFuture()

    def settle(finished: asyncio.Task) -> None:
        if finished.cancelled():
            listenable.set_exception(asyncio.CancelledError())
            return
        error = finished.exception()
        if error is not None:
            listenable.set_exception(error)
        else:
            listenable.set_result(finished.result())

    task.add_done_callback(settle)
    return listenable
