"""Hedged requests as cancellable tasks.

The event-loop mirror of :class:`~repro.core.hedging.HedgedInvoker`
with the one upgrade threads could not provide: when a leg wins the
race, the **losing leg is cancelled** instead of running to completion
in the background.  A cancelled leg releases its bulkhead permit and
refunds its reservations (see
:meth:`~repro.core.aio.invoker.AsyncInvoker._ainvoke_remote`), so
hedging no longer pays for two full calls when one answer suffices.

Like the sync hedger, this requires a scaled real clock — hedging
races timers against in-flight calls, which a virtual clock cannot
express.  Stats and metric names are shared with the sync hedger.
"""

from __future__ import annotations

import asyncio
from collections.abc import Mapping

from repro.core.aio.invoker import AsyncInvoker
from repro.core.hedging import HedgeStats
from repro.core.invoker import InvocationResult
from repro.core.ranking import Weights
from repro.obs import names
from repro.util.deadline import Deadline


class AsyncHedgedInvoker:
    """Race a cancellable backup task against a slow primary.

    The primary leg goes through :meth:`AsyncInvoker.ainvoke` (cache,
    coalescing, admission); the backup leg uses ``coalesce=False`` so
    it never joins the flight it is hedging.  Cancelling the caller's
    task cancels both in-flight legs.
    """

    def __init__(
        self,
        invoker: AsyncInvoker,
        deadline_percentile: float = 0.95,
        default_deadline: float = 0.5,
        weights: Weights = Weights(),
    ) -> None:
        """Build the hedger over ``invoker`` (same knobs as the sync one)."""
        if not 0.0 < deadline_percentile < 1.0:
            raise ValueError(
                f"deadline_percentile must be in (0, 1), got {deadline_percentile}")
        self.invoker = invoker
        self.client = invoker.client
        self.deadline_percentile = deadline_percentile
        self.default_deadline = default_deadline
        self.weights = weights
        self.stats = HedgeStats()
        obs = invoker.obs
        if obs.enabled:
            self._metric_requests = obs.metrics.counter(
                names.HEDGE_REQUESTS_TOTAL, "Requests that went through the hedged invoker.")
            self._metric_fired = obs.metrics.counter(
                names.HEDGES_FIRED_TOTAL, "Requests whose backup call was actually sent.")
            self._metric_wins = obs.metrics.counter(
                names.HEDGE_WINS_TOTAL, "Requests won by the backup call.")
        else:
            self._metric_requests = self._metric_fired = self._metric_wins = None

    def deadline_for(self, service: str) -> float:
        """The hedge deadline: the service's observed latency percentile."""
        latencies = self.invoker.monitor.latencies(service)
        if len(latencies) < 5:
            return self.default_deadline
        from repro.analytics.stats import percentile

        return percentile(latencies, self.deadline_percentile)

    async def ainvoke(
        self,
        kind: str,
        operation: str,
        payload: Mapping[str, object] | None = None,
        use_cache: bool = True,
        candidates: list[str] | None = None,
        deadline: Deadline | None = None,
    ) -> InvocationResult:
        """Invoke with hedging across the top two ranked services.

        Mirrors :meth:`~repro.core.hedging.HedgedInvoker.invoke`: the
        backup fires when the primary is slower than its observed
        percentile (or already failed), never past the caller's
        ``deadline``; the first successful leg wins and **the loser is
        cancelled**.  Cancelling this coroutine cancels both legs.
        """
        with self.invoker.obs.tracer.span(
                names.SPAN_SDK_HEDGED_INVOKE, {"kind": kind, "operation": operation}):
            return await self._ainvoke_traced(kind, operation, payload,
                                              use_cache, candidates, deadline)

    async def _ainvoke_traced(
        self,
        kind: str,
        operation: str,
        payload: Mapping[str, object] | None,
        use_cache: bool,
        candidates: list[str] | None,
        deadline: Deadline | None,
    ) -> InvocationResult:
        tracer = self.invoker.obs.tracer
        if candidates is None:
            candidates = [service.name for service in
                          self.invoker.registry.services_of_kind(kind)]
            if not candidates:
                raise ValueError(f"no services of kind {kind!r}")
            ranked = [name for name, _ in self.invoker.ranker.rank(
                candidates, weights=self.weights)]
        else:
            if not candidates:
                raise ValueError("empty candidates override")
            ranked = list(candidates)
        primary = ranked[0]
        self.stats.requests += 1
        if self._metric_requests is not None:
            self._metric_requests.inc()
        start = self.invoker.clock.now()

        if len(ranked) == 1:
            result = await self.invoker.ainvoke(primary, operation, payload,
                                                use_cache=use_cache,
                                                deadline=deadline)
            self.stats.primary_wins += 1
            self.stats.latencies.append(self.invoker.clock.now() - start)
            return result

        backup = ranked[1]
        primary_task = asyncio.ensure_future(self.invoker.ainvoke(
            primary, operation, payload, use_cache=use_cache,
            deadline=deadline))

        hedge_after = self.deadline_for(primary)
        if deadline is not None:
            hedge_after = min(hedge_after, deadline.remaining())
        real_deadline = hedge_after * getattr(
            self.invoker.clock, "time_scale", 1.0)
        wait_start = self.invoker.clock.now()
        try:
            done, _pending = await asyncio.wait({primary_task},
                                                timeout=real_deadline)
        except BaseException:
            primary_task.cancel()
            raise
        tracer.add_event("hedge.wait",
                         {"service": primary,
                          "seconds": self.invoker.clock.now() - wait_start,
                          "deadline": hedge_after})
        primary_failed = bool(done) and primary_task.exception() is not None
        fired_hedge = not done or primary_failed
        if fired_hedge and deadline is not None and deadline.expired():
            # A backup launched past the deadline cannot produce a
            # usable answer; ride out the primary leg instead.
            fired_hedge = False
        if not fired_hedge:
            try:
                result = await primary_task
            except BaseException:
                primary_task.cancel()
                raise
            self.stats.primary_wins += 1
            self.stats.latencies.append(self.invoker.clock.now() - start)
            return result

        self.stats.hedges_fired += 1
        if self._metric_fired is not None:
            self._metric_fired.inc()
        backup_task = asyncio.ensure_future(self.invoker.ainvoke(
            backup, operation, payload, use_cache=use_cache,
            coalesce=False, deadline=deadline))
        try:
            role, result = await self._race(primary_task, backup_task)
        except BaseException:
            primary_task.cancel()
            backup_task.cancel()
            raise
        if role == "primary":
            self.stats.primary_wins += 1
        else:
            self.stats.hedge_wins += 1
            if self._metric_wins is not None:
                self._metric_wins.inc()
        self.stats.latencies.append(self.invoker.clock.now() - start)
        return result

    async def _race(self, primary_task: asyncio.Task,
                    backup_task: asyncio.Task):
        """First successful leg wins; the loser is cancelled.

        When both legs fail, the first-completed leg's error is raised
        (the sync hedger's behavior).  The losing task is cancelled and
        awaited so its cleanup (permit release, refunds) has run before
        this coroutine returns.
        """
        tasks = {primary_task, backup_task}
        errors: list[BaseException] = []
        while tasks:
            done, tasks = await asyncio.wait(
                tasks, return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                if task.cancelled():
                    errors.append(asyncio.CancelledError())
                    continue
                error = task.exception()
                if error is not None:
                    errors.append(error)
                    continue
                for loser in tasks:
                    loser.cancel()
                if tasks:
                    await asyncio.gather(*tasks, return_exceptions=True)
                role = "primary" if task is primary_task else "backup"
                return role, task.result()
        raise errors[0]
