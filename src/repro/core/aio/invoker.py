"""AsyncInvoker: the event-loop mirror of :class:`RichClient`.

One :class:`AsyncInvoker` wraps an existing
:class:`~repro.core.invoker.RichClient` and re-implements its hot path
as coroutines.  Everything *stateful* is shared with the client —
registry, monitor, cache, latency predictor, ranker, quota ledger,
rate limiter, tenancy, observability — so results, records and metrics
are identical whichever core served a call.  Only the *waiting*
machinery differs: coalescing, admission and retries are loop-native
(:mod:`repro.core.aio.coalesce`, :mod:`repro.core.aio.admission`,
:mod:`repro.core.aio.retry`), and wire latency is awaited through
:meth:`repro.simnet.transport.Transport.acall`.

Cancellation contract (applies to every coroutine here):

* cancelling a call releases its bulkhead permit and **refunds** its
  quota/tenant reservations — protections are never leaked;
* once the wire call has returned, the success path (settle, record,
  cache) runs without suspension points, so accounting is at-most-once
  and never torn by cancellation;
* a cancelled coalescing *leader* fails the shared flight with its
  cancellation (followers see the error); a cancelled *follower*
  detaches silently.
"""

from __future__ import annotations

import asyncio
from collections.abc import Mapping, Sequence
from dataclasses import replace

from repro.core.aio.admission import AsyncAdmissionController
from repro.core.aio.coalesce import AsyncCoalescer
from repro.core.aio.retry import AsyncFailoverInvoker
from repro.core.admission import AdmissionRejectedError
from repro.core.caching import cache_key
from repro.core.invoker import InvocationResult, QualityRater, RichClient
from repro.core.monitoring import InvocationRecord
from repro.core.ranking import ScoreFormula, Weights
from repro.obs import names
from repro.services.base import ServiceRequest
from repro.tenancy.runtime import REASON_SHED
from repro.util.deadline import Deadline, DeadlineExceededError


class AsyncInvoker:
    """The Rich SDK's facade as coroutines, sharing one client's state.

    Construct via :attr:`RichClient.aio` (lazy, cached) or directly
    from a client.  All coroutines must run on a single event loop;
    the :class:`~repro.core.aio.runner.LoopRunner` shim provides one
    for blocking callers.
    """

    def __init__(self, client: RichClient) -> None:
        """Wrap ``client``, cloning its admission/failover policies.

        The coalescer and admission bulkheads are loop-native clones
        (same policy, same metric names, independent permit state);
        everything else is the client's own object.
        """
        self.client = client
        self.clock = client.clock
        self.obs = client.obs
        self.registry = client.registry
        self.monitor = client.monitor
        self.cache = client.cache
        self.quota = client.quota
        self.rate_limiter = client.rate_limiter
        self.tenancy = client.tenancy
        self.cacheable_operations = client.cacheable_operations
        self.quality_raters = client.quality_raters
        self.ranker = client.ranker
        self.coalescer = (AsyncCoalescer()
                          if client.coalescer is not None else None)
        self.admission = (AsyncAdmissionController.from_sync(client.admission)
                          if client.admission is not None else None)
        self.failover = AsyncFailoverInvoker(
            default_policy=client.failover.default_policy,
            per_service=client.failover.per_service,
            clock=self.clock,
        )
        if self.obs.enabled:
            if self.coalescer is not None:
                self.coalescer.bind_metrics(self.obs.metrics)
            if self.admission is not None:
                self.admission.bind_metrics(self.obs.metrics)
            self.failover.bind_obs(self.obs)

    # -- core invocation ---------------------------------------------------

    async def ainvoke(
        self,
        service_name: str,
        operation: str,
        payload: Mapping[str, object] | None = None,
        timeout: float | None = None,
        use_cache: bool = True,
        quality_rater: QualityRater | None = None,
        coalesce: bool = True,
        deadline: Deadline | None = None,
        allow_stale: bool = True,
    ) -> InvocationResult:
        """Invoke one service on the event loop.

        The awaitable mirror of :meth:`RichClient.invoke`: same cache
        probe, coalescing, protections, span names, monitor records,
        error types and graceful-degradation paths.  See the module
        docstring for the cancellation contract.
        """
        payload = dict(payload or {})
        service = self.registry.get(service_name)
        hit = self.client.cached_result(service_name, operation, payload,
                                        use_cache, allow_stale=allow_stale)
        if hit is not None:
            return hit

        cacheable = use_cache and operation in self.cacheable_operations
        key = (cache_key(service_name, operation, payload,
                         tenant=self.client._cache_tenant())
               if cacheable else None)

        if deadline is not None and deadline.expired():
            try:
                self.client._deadline_guard(
                    deadline, f"invoke {service_name}.{operation}")
            except DeadlineExceededError as error:
                degraded = (self.client._serve_stale(
                    service_name, operation, key, error)
                    if allow_stale else None)
                if degraded is not None:
                    return degraded
                raise

        flight = None
        if self.coalescer is not None and coalesce and key is not None:
            leader, flight = self.coalescer.lead_or_join(key)
            if not leader:
                wait = deadline.clamp(timeout) if deadline is not None else timeout
                shared = await flight.result(
                    timeout=self.client._real_timeout(wait))
                return replace(shared, coalesced=True, cost=0.0)
        try:
            result = await self._ainvoke_remote(
                service, service_name, operation, payload, timeout,
                key, quality_rater, deadline=deadline)
        except BaseException as error:
            if flight is not None:
                # Fail the flight (cancellation included) so followers
                # are never stranded on a dead leader.
                self.coalescer.fail(flight, error)
            if not isinstance(error, Exception):
                raise
            degraded = (self.client._serve_stale(
                service_name, operation, key, error)
                if allow_stale else None)
            if degraded is not None:
                return degraded
            raise
        if flight is not None:
            self.coalescer.complete(flight, result)
        return result

    async def _ainvoke_remote(
        self,
        service,
        service_name: str,
        operation: str,
        payload: dict,
        timeout: float | None,
        key: str | None,
        quality_rater: QualityRater | None,
        deadline: Deadline | None = None,
    ) -> InvocationResult:
        """One real upstream call: protections, span, monitor, cache.

        Same protection order as the sync core (tenant authorization,
        quota reservation, rate limiter, bulkhead).  Cleanup handlers
        catch ``BaseException`` so cancellation refunds reservations
        and releases the permit; after the wire call returns there are
        no suspension points, so settle/record/cache are atomic.
        """
        tracer = self.obs.tracer
        with tracer.span(names.SPAN_SDK_INVOKE,
                         {"service": service_name, "operation": operation}) as span:
            trace_id = span.trace_id
            tenant = self.client._active_tenant()
            if tenant is not None:
                span.set_attribute("tenant", tenant.tenant_id)
            estimate = 0.0
            if tenant is not None or self.quota.has_cost_limit(service_name):
                estimate = service.cost_model.cost(
                    ServiceRequest(operation, payload))
            charge = (self.tenancy.authorize(tenant, estimate)
                      if tenant is not None else None)
            reservation = None
            try:
                reservation = self.quota.reserve(service_name, estimate)
                if self.rate_limiter is not None:
                    self.rate_limiter.acquire_or_raise(service_name)
                bulkhead = (self.admission.bulkhead_for(service_name)
                            if self.admission is not None else None)
                if bulkhead is not None:
                    try:
                        await bulkhead.acquire(
                            deadline=deadline,
                            tenant=tenant.tenant_id if tenant is not None else None)
                    except AdmissionRejectedError:
                        if tenant is not None:
                            self.tenancy.count_rejection(
                                tenant.tenant_id, REASON_SHED)
                        raise
            except BaseException:
                if reservation is not None:
                    self.quota.cancel(reservation)
                if charge is not None:
                    self.tenancy.cancel(tenant, charge)
                raise
            params = service.latency_params(ServiceRequest(operation, payload))
            rater = quality_rater or self.quality_raters.get(operation)
            try:
                if deadline is not None:
                    self.client._deadline_guard(
                        deadline, f"invoke {service_name}.{operation}")
                    timeout = deadline.clamp(timeout)
                response = await service.ainvoke(operation, payload,
                                                 timeout=timeout)
            except BaseException as error:
                if isinstance(error, Exception):
                    self.monitor.record(
                        InvocationRecord(
                            service=service_name,
                            operation=operation,
                            timestamp=self.clock.now(),
                            latency=None,
                            cost=0.0,
                            success=False,
                            error=repr(error),
                            latency_params=params,
                            trace_id=trace_id,
                        )
                    )
                self.quota.cancel(reservation)
                if charge is not None:
                    self.tenancy.cancel(tenant, charge)
                raise
            finally:
                if bulkhead is not None:
                    bulkhead.release()

            quality = rater(response.value) if rater is not None else None
            self.quota.settle(reservation, response.cost)
            if charge is not None:
                self.tenancy.settle(tenant, charge, response.cost)
            self.monitor.record(
                InvocationRecord(
                    service=service_name,
                    operation=operation,
                    timestamp=self.clock.now(),
                    latency=response.latency,
                    cost=response.cost,
                    success=True,
                    latency_params=params,
                    quality=quality,
                    trace_id=trace_id,
                )
            )
            span.set_attribute("latency", response.latency)
            span.set_attribute("cost", response.cost)
            if key is not None:
                self.cache.put(key, response.value)
            if operation in ("put", "delete"):
                self.cache.invalidate_service(service_name)
            return InvocationResult(
                value=response.value,
                latency=response.latency,
                cost=response.cost,
                service=service_name,
                operation=operation,
            )

    # -- batched invocation ------------------------------------------------

    async def ainvoke_batched(
        self,
        service_name: str,
        operation: str,
        payloads: Sequence[Mapping[str, object]],
        timeout: float | None = None,
        use_cache: bool = True,
        deadline: Deadline | None = None,
    ) -> list[InvocationResult | Exception]:
        """Ship ``payloads`` to the service's batch endpoint in one call.

        The awaitable mirror of :meth:`RichClient.invoke_batched`: one
        awaited round trip, one tenant charge, one bulkhead permit,
        per-item outcomes in input order.  Cancellation mid-wire
        abandons every item at once (they share the single call) and
        refunds the tenant charge; admission and accounting are never
        leaked.
        """
        payloads = [dict(payload) for payload in payloads]
        if not payloads:
            return []
        service = self.registry.get(service_name)
        tracer = self.obs.tracer
        with tracer.span(names.SPAN_SDK_INVOKE_BATCH,
                         {"service": service_name, "operation": operation,
                          names.BATCH_SIZE: len(payloads),
                          "obs.category": "batch"}) as span:
            trace_id = span.trace_id
            self.client._deadline_guard(
                deadline, f"invoke_batched {service_name}.{operation}")
            tenant = self.client._active_tenant()
            if tenant is not None:
                span.set_attribute("tenant", tenant.tenant_id)
            estimate = (sum(service.cost_model.cost(ServiceRequest(operation, p))
                            for p in payloads)
                        if tenant is not None else 0.0)
            charge = (self.tenancy.authorize(tenant, estimate)
                      if tenant is not None else None)
            try:
                self.quota.check(service_name)
                if self.rate_limiter is not None:
                    self.rate_limiter.acquire_or_raise(service_name)
                bulkhead = (self.admission.bulkhead_for(service_name)
                            if self.admission is not None else None)
                if bulkhead is not None:
                    try:
                        await bulkhead.acquire(
                            deadline=deadline,
                            tenant=tenant.tenant_id if tenant is not None else None)
                    except AdmissionRejectedError:
                        if tenant is not None:
                            self.tenancy.count_rejection(
                                tenant.tenant_id, REASON_SHED)
                        raise
                try:
                    if deadline is not None:
                        self.client._deadline_guard(
                            deadline, f"invoke_batched {service_name}.{operation}")
                        timeout = deadline.clamp(timeout)
                    responses = await service.ainvoke_batch(
                        operation, payloads, timeout=timeout)
                finally:
                    if bulkhead is not None:
                        bulkhead.release()
            except BaseException:
                if charge is not None:
                    self.tenancy.cancel(tenant, charge)
                raise
            if charge is not None:
                billed = sum(response.cost for response in responses
                             if not isinstance(response, Exception))
                self.tenancy.settle(tenant, charge, billed)
            if self.client._metric_batch_flushes is not None:
                self.client._metric_batch_flushes.inc()
                self.client._metric_batch_items.inc(len(payloads))
                self.client._metric_batch_size.observe(float(len(payloads)))
            now = self.clock.now()
            cacheable = use_cache and operation in self.cacheable_operations
            namespace = self.client._cache_tenant() if cacheable else None
            batch_latency = 0.0
            outcomes: list[InvocationResult | Exception] = []
            for payload, response in zip(payloads, responses):
                if isinstance(response, Exception):
                    self.monitor.record(
                        InvocationRecord(
                            service=service_name,
                            operation=operation,
                            timestamp=now,
                            latency=None,
                            cost=0.0,
                            success=False,
                            error=repr(response),
                            trace_id=trace_id,
                        )
                    )
                    outcomes.append(response)
                    continue
                batch_latency = response.latency
                self.quota.record(service_name, response.cost)
                self.monitor.record(
                    InvocationRecord(
                        service=service_name,
                        operation=operation,
                        timestamp=now,
                        latency=response.latency,
                        cost=response.cost,
                        success=True,
                        trace_id=trace_id,
                    )
                )
                if cacheable:
                    self.cache.put(
                        cache_key(service_name, operation, payload,
                                  tenant=namespace),
                        response.value)
                outcomes.append(InvocationResult(
                    value=response.value,
                    latency=response.latency,
                    cost=response.cost,
                    service=service_name,
                    operation=operation,
                    batched=True,
                ))
            span.set_attribute("latency", batch_latency)
            return outcomes

    async def ainvoke_many(
        self,
        service_name: str,
        operation: str,
        payloads: Sequence[Mapping[str, object]],
        timeout: float | None = None,
        use_cache: bool = True,
        deadline: Deadline | None = None,
    ) -> list[InvocationResult | Exception]:
        """Run one operation over many payloads as efficiently as possible.

        The awaitable mirror of :meth:`RichClient.invoke_many`: cache
        hits first, in-burst dedup (counted as coalesce hits), then
        batch-endpoint chunks or sequential awaited calls.  Per-item
        failures come back as exceptions; cancellation aborts the
        remaining chunks (already-returned items are simply lost with
        the coroutine, their server-side effects stand).
        """
        payloads = [dict(payload) for payload in payloads]
        service = self.registry.get(service_name)
        results: list[InvocationResult | Exception | None] = [None] * len(payloads)

        remaining: list[int] = []
        for index, payload in enumerate(payloads):
            hit = self.client.cached_result(service_name, operation, payload,
                                            use_cache)
            if hit is not None:
                results[index] = hit
            else:
                remaining.append(index)

        namespace = self.client._cache_tenant()
        groups: dict[str, list[int]] = {}
        for index in remaining:
            key = cache_key(service_name, operation, payloads[index],
                            tenant=namespace)
            groups.setdefault(key, []).append(index)
        folded = len(remaining) - len(groups)
        if folded and self.coalescer is not None:
            self.coalescer.count_folded(folded)
        leaders = [indices[0] for indices in groups.values()]

        if service.supports_batching and leaders:
            limit = service.batch_max_size
            for start in range(0, len(leaders), limit):
                chunk = leaders[start:start + limit]
                try:
                    outcomes = await self.ainvoke_batched(
                        service_name, operation,
                        [payloads[index] for index in chunk],
                        timeout=timeout, use_cache=use_cache,
                        deadline=deadline)
                except DeadlineExceededError as error:
                    outcomes = [error] * len(chunk)
                for index, outcome in zip(chunk, outcomes):
                    results[index] = outcome
        else:
            for index in leaders:
                try:
                    results[index] = await self.ainvoke(
                        service_name, operation, payloads[index],
                        timeout=timeout, use_cache=use_cache,
                        deadline=deadline)
                except Exception as error:
                    results[index] = error

        for indices in groups.values():
            shared = results[indices[0]]
            for index in indices[1:]:
                if isinstance(shared, InvocationResult):
                    results[index] = replace(shared, coalesced=True, cost=0.0)
                else:
                    results[index] = shared
        return results

    # -- fan-out -----------------------------------------------------------

    async def ainvoke_all(
        self,
        calls: Sequence[tuple[str, str, Mapping[str, object]]],
        timeout: float | None = None,
        use_cache: bool = True,
        deadline: Deadline | None = None,
    ) -> list[InvocationResult | Exception]:
        """Run many calls concurrently as tasks; preserves order.

        The awaitable mirror of :meth:`RichClient.invoke_all` — except
        the legs are event-loop tasks, so fan-out width is no longer
        bounded by a thread pool.  Per-leg failures come back as their
        exception; cancelling this coroutine cancels every in-flight
        leg (the legs are child tasks of the gather).
        """
        async def one(service: str, operation: str,
                      payload: Mapping[str, object]):
            try:
                return await self.ainvoke(service, operation, payload,
                                          timeout=timeout, use_cache=use_cache,
                                          deadline=deadline)
            except Exception as error:  # noqa: BLE001 — per-leg isolation
                return error

        return list(await asyncio.gather(
            *(one(service, operation, payload)
              for service, operation, payload in calls)))

    # -- ranked failover ---------------------------------------------------

    async def ainvoke_with_failover(
        self,
        kind: str,
        operation: str,
        payload: Mapping[str, object] | None = None,
        timeout: float | None = None,
        weights: Weights = Weights(),
        formula: str | ScoreFormula = "weighted",
        use_cache: bool = True,
        deadline: Deadline | None = None,
    ) -> InvocationResult:
        """Invoke the best-ranked service of ``kind`` with failover.

        The awaitable mirror of
        :meth:`RichClient.invoke_with_failover`: same ranking, same
        span structure, backoffs awaited.  Cancellation stops the walk
        immediately — no further candidate is contacted.
        """
        with self.obs.tracer.span(names.SPAN_SDK_INVOKE_WITH_FAILOVER,
                                  {"kind": kind, "operation": operation}):
            candidates = [service.name
                          for service in self.registry.services_of_kind(kind)]
            if not candidates:
                raise ValueError(f"no services of kind {kind!r}")
            request = ServiceRequest(operation, dict(payload or {}))
            params = self.registry.get(candidates[0]).latency_params(request)
            ranked = [name for name, _ in
                      self.ranker.rank(candidates, params, formula, weights)]

            served_by, result, attempts = await self.failover.ainvoke(
                ranked,
                lambda name: self.ainvoke(name, operation, payload,
                                          timeout=timeout, use_cache=use_cache,
                                          deadline=deadline),
                deadline=deadline,
            )
        return InvocationResult(
            value=result.value,
            latency=result.latency,
            cost=result.cost,
            service=served_by,
            operation=operation,
            cached=result.cached,
            attempts=tuple(attempts),
            degraded=result.degraded,
            stale_age=result.stale_age,
        )

    # -- redundant multi-service invocation --------------------------------

    async def ainvoke_redundant(
        self,
        service_names: Sequence[str],
        operation: str,
        payload: Mapping[str, object] | None = None,
        timeout: float | None = None,
        parallel: bool = True,
        use_cache: bool = True,
        deadline: Deadline | None = None,
    ) -> dict[str, InvocationResult | Exception]:
        """Invoke the same request on several services.

        The awaitable mirror of :meth:`RichClient.invoke_redundant`;
        ``parallel=True`` fans the legs out as tasks via
        :meth:`ainvoke_all`, which cancellation tears down together.
        """
        ordered = list(service_names)
        if parallel:
            outcomes = await self.ainvoke_all(
                [(name, operation, dict(payload or {})) for name in ordered],
                timeout=timeout, use_cache=use_cache, deadline=deadline,
            )
            return dict(zip(ordered, outcomes))
        results: dict[str, InvocationResult | Exception] = {}
        for name in ordered:
            try:
                results[name] = await self.ainvoke(
                    name, operation, payload, timeout=timeout,
                    use_cache=use_cache, deadline=deadline)
            except Exception as error:
                results[name] = error
        return results

    # -- convenience -------------------------------------------------------

    def batcher(self, max_batch_size: int | None = None,
                max_wait: float = 0.05):
        """An :class:`~repro.core.aio.batching.AsyncMicroBatcher` bound here."""
        from repro.core.aio.batching import AsyncMicroBatcher

        return AsyncMicroBatcher(self, max_batch_size=max_batch_size,
                                 max_wait=max_wait)
