"""The sync facade's loop-runner shim.

:class:`LoopRunner` owns one event loop on a dedicated daemon thread.
Blocking callers (the existing ``RichClient.invoke*`` API, tests,
benchmarks) hand it coroutines; the runner schedules each as a task on
the loop **inside a copy of the caller's contextvars**, so a tenant
scope or an open trace span that is current on the submitting thread is
still current inside the coroutine — the same propagation guarantee
:class:`~repro.core.futures.CallbackExecutor` gives pooled work.
"""

from __future__ import annotations

import asyncio
import contextvars
import threading
from collections.abc import Coroutine
from concurrent.futures import Future

from repro.core.futures import ListenableFuture


class LoopRunner:
    """One background event loop serving blocking callers.

    Thread-safe: any number of threads may :meth:`submit` or
    :meth:`run` concurrently; each coroutine becomes an independent
    task on the single loop.  The runner is lazy-starting in
    :class:`~repro.core.invoker.RichClient` and idles at zero cost —
    the loop thread sleeps in the selector when no task is live.
    """

    def __init__(self, name: str = "repro-aio") -> None:
        """Start the loop thread and wait until the loop is running."""
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        # The loop thread is a process-lifetime service: it must NOT
        # inherit whichever tenant/trace scope happened to construct it
        # — each submitted coroutine carries its own context instead.
        self._thread = threading.Thread(target=self._serve, name=name,  # repro: ignore[RA011] — service thread; per-task context enters via submit()'s Context.run
                                        daemon=True)
        self._thread.start()
        self._started.wait()

    def _serve(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        try:
            self._loop.run_forever()
        finally:
            # Cancel stragglers so shutdown never leaks pending tasks.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            self._loop.close()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The runner's event loop (for bridges and tests)."""
        return self._loop

    def submit(self, coro: Coroutine) -> Future:
        """Schedule ``coro`` on the loop; returns a concurrent future.

        The submitting thread's contextvars are copied onto the task
        (``create_task`` runs under ``Context.run``, which works on
        Python 3.10 where ``create_task(context=...)`` does not exist).
        Cancelling the returned future does **not** cancel the task —
        use :meth:`submit_listenable` + task handles for cancellable
        work; the sync facade never cancels, it only waits.
        """
        if not self._loop.is_running():
            raise RuntimeError("LoopRunner is shut down")
        done: Future = Future()
        context = contextvars.copy_context()

        def schedule() -> None:
            task = context.run(self._loop.create_task, coro)
            task.add_done_callback(lambda finished: _transfer(finished, done))

        self._loop.call_soon_threadsafe(schedule)
        return done

    def run(self, coro: Coroutine, timeout: float | None = None):
        """Run ``coro`` to completion and return its result (blocking).

        This is the facade shim: exceptions (including
        ``asyncio.CancelledError``) propagate unchanged to the caller.
        Must not be called from the loop thread itself — that would
        deadlock the loop on its own work.
        """
        if threading.current_thread() is self._thread:
            raise RuntimeError(
                "LoopRunner.run called from the loop thread; await instead")
        return self.submit(coro).result(timeout=timeout)

    def submit_listenable(self, coro: Coroutine) -> ListenableFuture:
        """Schedule ``coro``; returns a :class:`ListenableFuture`.

        The listenable settles from the loop thread when the task
        finishes, so listeners observe the same serialized-delivery
        guarantees as the thread-pool core.
        """
        listenable: ListenableFuture = ListenableFuture()

        def relay(done: Future) -> None:
            error = done.exception()
            if error is not None:
                listenable.set_exception(error)
            else:
                listenable.set_result(done.result())

        self.submit(coro).add_done_callback(relay)
        return listenable

    def shutdown(self) -> None:
        """Stop the loop, cancel leftover tasks and join the thread."""
        if self._loop.is_closed():
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()

    def __enter__(self) -> "LoopRunner":
        """Context-manager entry: the runner itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: shut the loop down."""
        self.shutdown()


def _transfer(task: asyncio.Task, done: Future) -> None:
    """Mirror a finished task into a concurrent future (loop thread)."""
    if task.cancelled():
        done.set_exception(asyncio.CancelledError())
        return
    error = task.exception()
    if error is not None:
        done.set_exception(error)
    else:
        done.set_result(task.result())
