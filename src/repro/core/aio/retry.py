"""Retries and ranked failover as awaitables.

The event-loop mirror of :mod:`repro.core.retry`: the same policies,
attempt logs, error types and span/metric names, with backoff waits
awaited (:func:`repro.util.clock.acharge`) instead of slept and each
attempt awaiting an async ``invoke_once``.

Cancellation: ``asyncio.CancelledError`` is never retryable (it is not
a :class:`~repro.simnet.NetworkError`), so cancelling the task aborts
the retry loop — and the failover walk — immediately, mid-backoff or
mid-attempt, with no further candidates tried.
"""

from __future__ import annotations

from collections.abc import Awaitable, Callable, Sequence
from typing import TypeVar

from repro.core.retry import (
    AllServicesFailedError,
    AttemptLog,
    FailoverInvoker,
    RetriesExhaustedError,
    RetryPolicy,
)
from repro.obs import names
from repro.util.clock import Clock, acharge

T = TypeVar("T")


async def ainvoke_with_retry(
    invoke_once: Callable[[], Awaitable[T]],
    policy: RetryPolicy,
    clock: Clock | None = None,
    service: str = "<service>",
    log: list[AttemptLog] | None = None,
    tracer=None,
    backoff_counter=None,
    deadline=None,
) -> T:
    """Await ``invoke_once`` under a retry policy.

    Mirrors :func:`repro.core.retry.invoke_with_retry` exactly — same
    deadline truncation, attempt spans, backoff events and
    :class:`~repro.core.retry.RetriesExhaustedError` — except backoffs
    are awaited, so other tasks run during the wait.  At-most-once per
    attempt: cancellation between attempts retries nothing further;
    cancellation *during* an attempt propagates from that attempt
    (non-retryable by construction).
    """
    last_error: BaseException | None = None
    for attempt in range(policy.max_attempts):
        delay = policy.delay_before_attempt(attempt)
        if deadline is not None and last_error is not None:
            remaining = deadline.remaining()
            if remaining <= 0.0 or remaining < delay:
                raise RetriesExhaustedError(
                    service, attempt, last_error, deadline=deadline,
                    deadline_truncated=True) from last_error
        if delay and clock is not None:
            if tracer is not None:
                tracer.add_event(
                    "retry.backoff",
                    {"service": service, "attempt": attempt, "seconds": delay})
            if backoff_counter is not None:
                backoff_counter.inc(delay, service=service)
            await acharge(clock, delay)
        try:
            if tracer is not None and tracer.enabled:
                with tracer.span(names.SPAN_FAILOVER_ATTEMPT,
                                 {"service": service, "attempt": attempt}):
                    result = await invoke_once()
            else:
                result = await invoke_once()
        except BaseException as error:  # noqa: BLE001 — classified below
            if not policy.is_retryable(error):
                raise
            last_error = error
            if log is not None:
                log.append(AttemptLog(service, attempt, repr(error)))
            continue
        if log is not None:
            log.append(AttemptLog(service, attempt, None))
        return result
    assert last_error is not None
    raise RetriesExhaustedError(service, policy.max_attempts, last_error,
                                deadline=deadline) from last_error


class AsyncFailoverInvoker(FailoverInvoker):
    """Ranked failover whose per-candidate retry loops are awaitable.

    Inherits policy lookup, observability binding and configuration
    from :class:`~repro.core.retry.FailoverInvoker`; only the walk is
    async.  The sync :meth:`~repro.core.retry.FailoverInvoker.invoke`
    remains available (it is unaware of the event loop).
    """

    async def ainvoke(
        self,
        ordered_services: Sequence[str],
        invoke_once: Callable[[str], Awaitable[T]],
        deadline=None,
    ) -> tuple[str, T, list[AttemptLog]]:
        """Await the first responsive service down the ranking.

        Mirrors :meth:`~repro.core.retry.FailoverInvoker.invoke`:
        returns ``(service, result, attempts)`` or raises
        :class:`~repro.core.retry.AllServicesFailedError`.  A
        ``deadline`` stops the walk once the budget is spent.
        Cancellation aborts the walk wherever it stands — no further
        candidate is contacted.
        """
        if not ordered_services:
            raise ValueError("no candidate services to invoke")
        attempts: list[AttemptLog] = []
        last_exhausted: RetriesExhaustedError | None = None
        for service in ordered_services:
            if (deadline is not None and deadline.expired()
                    and attempts):
                break
            try:
                result = await ainvoke_with_retry(
                    lambda service=service: invoke_once(service),
                    self.policy_for(service),
                    clock=self.clock,
                    service=service,
                    log=attempts,
                    tracer=self.tracer,
                    backoff_counter=self._metric_backoff,
                    deadline=deadline,
                )
            except RetriesExhaustedError as error:
                last_exhausted = error
                if self._metric_exhausted is not None:
                    self._metric_exhausted.inc(service=service)
                continue
            return service, result, attempts
        raise AllServicesFailedError(attempts) from last_exhausted
