"""Admission control as awaitables: async bulkheads with DRR fairness.

The event-loop analogue of :mod:`repro.core.admission`.  Semantics are
kept deliberately identical so the sync/async parity tests can compare
shed reasons and stats field-for-field:

* fast fail with :data:`~repro.core.admission.REASON_QUEUE_FULL` when
  the wait queue is at capacity;
* bounded queue waits shed with
  :data:`~repro.core.admission.REASON_QUEUE_TIMEOUT` (or
  :data:`~repro.core.admission.REASON_DEADLINE` when the caller's
  budget clamped the window);
* under a **virtual clock**, waiting charges the whole queue window and
  re-probes — the same deterministic worst-case model the sync bulkhead
  uses, because a single-threaded simulation cannot free a permit while
  "waiting";
* under a **scaled real clock**, waiters park on asyncio futures: FIFO
  mode wakes in arrival order, ``fair=True`` drains waiters by deficit
  round robin over per-tenant sub-queues
  (:class:`~repro.tenancy.scheduling.DrrScheduler`), with permits
  *granted* to the scheduler's choice so wake-up order can never
  override DRR order.

Everything runs on one loop, so no locks — mutation between awaits is
atomic by construction.
"""

from __future__ import annotations

import asyncio
from collections import deque
from collections.abc import Callable, Mapping

from repro.core.admission import (
    REASON_DEADLINE,
    REASON_QUEUE_FULL,
    REASON_QUEUE_TIMEOUT,
    AdmissionController,
    AdmissionLimit,
    AdmissionRejectedError,
    BulkheadStats,
)
from repro.obs import names
from repro.tenancy.scheduling import DrrScheduler
from repro.util.clock import Clock, acharge


class AsyncBulkhead:
    """One service's concurrency limit plus bounded wait queue (async).

    Every successful :meth:`acquire` must be paired with
    :meth:`release`.  Cancellation-safe: a waiter cancelled mid-queue
    withdraws cleanly (its slot is not leaked and, in fair mode, its
    DRR ticket is removed or re-granted); a cancelled *admitted* caller
    is the caller's responsibility to release, which
    :class:`~repro.core.aio.invoker.AsyncInvoker` does in a
    ``finally``.
    """

    def __init__(self, clock: Clock, service: str,
                 limit: AdmissionLimit | None = None,
                 fair: bool = False,
                 weight_of: Callable[[str], float] | None = None) -> None:
        """Build the bulkhead; ``fair=True`` enables DRR queue draining."""
        self.clock = clock
        self.service = service
        self.limit = limit if limit is not None else AdmissionLimit()
        self.stats = BulkheadStats()
        self._inflight = 0
        self._waiting = 0
        self._fifo: deque[asyncio.Future] = deque()
        self._fair: DrrScheduler | None = (
            DrrScheduler(weight_of=weight_of) if fair else None)
        # Ticket (a waiter's future) currently granted the next permit.
        self._granted: asyncio.Future | None = None
        self._gauge_inflight = None
        self._gauge_queue = None
        self._metric_admitted = None
        self._metric_shed = None
        self._metric_wait = None
        self._metric_fair_grants = None

    def bind_metrics(self, registry) -> None:
        """Mirror accounting into the same instruments the sync core uses."""
        self._gauge_inflight = registry.gauge(
            names.ADMISSION_INFLIGHT, "Calls currently holding a bulkhead permit.")
        self._gauge_queue = registry.gauge(
            names.ADMISSION_QUEUE_DEPTH, "Callers waiting for a bulkhead permit.")
        self._metric_admitted = registry.counter(
            names.ADMISSION_ADMITTED_TOTAL, "Calls admitted through the bulkhead.")
        self._metric_shed = registry.counter(
            names.ADMISSION_SHED_TOTAL,
            "Calls shed by admission control, by service and reason.")
        self._metric_wait = registry.counter(
            names.ADMISSION_QUEUE_WAIT_SECONDS_TOTAL,
            "Simulated seconds spent queued for a bulkhead permit.")
        if self._fair is not None:
            self._metric_fair_grants = registry.counter(
                names.ADMISSION_FAIR_GRANTS_TOTAL,
                "Permits granted by the weighted-fair (DRR) scheduler.")

    @property
    def inflight(self) -> int:
        """Calls currently holding a permit."""
        return self._inflight

    @property
    def queue_depth(self) -> int:
        """Callers currently waiting for a permit."""
        return self._waiting

    def try_acquire(self) -> bool:
        """Take a permit if one is free right now; never waits or sheds."""
        if self._inflight < self.limit.max_concurrent:
            self._admit()
            return True
        return False

    def _fast_path_open(self) -> bool:
        """May a newcomer take a free permit without queueing?

        FIFO mode lets newcomers barge on any free permit (the sync
        bulkhead behaves the same).  Fair mode makes newcomers queue
        behind existing waiters and outstanding grants, or they would
        jump the DRR order.
        """
        if self._inflight >= self.limit.max_concurrent:
            return False
        if self._fair is None:
            return True
        return self._granted is None and not self._fair

    def _maybe_grant(self) -> None:
        """Hand the next free permit to the DRR-chosen waiter."""
        if (self._fair is not None and self._granted is None
                and self._inflight < self.limit.max_concurrent and self._fair):
            ticket = self._fair.pop_next()
            if ticket is not None:
                self._granted = ticket
                self.stats.fair_grants += 1
                if self._metric_fair_grants is not None:
                    self._metric_fair_grants.inc(service=self.service)
                if not ticket.done():
                    ticket.set_result(None)

    def _count_shed(self, reason: str, tenant: str | None) -> None:
        if reason == REASON_QUEUE_FULL:
            self.stats.shed_queue_full += 1
        elif reason == REASON_DEADLINE:
            self.stats.shed_deadline += 1
        else:
            self.stats.shed_timeout += 1
        if tenant is not None:
            self.stats.shed_by_tenant[tenant] = (
                self.stats.shed_by_tenant.get(tenant, 0) + 1)
        if self._metric_shed is not None:
            labels = {"service": self.service, "reason": reason}
            if tenant is not None:
                labels["tenant"] = tenant
            self._metric_shed.inc(**labels)

    def _queue_window(self, deadline) -> tuple[float, str]:
        """The bounded wait window and the shed reason if it lapses."""
        timeout = self.limit.queue_timeout
        if deadline is not None:
            timeout = min(timeout, deadline.remaining())
        reason = (REASON_DEADLINE
                  if timeout < self.limit.queue_timeout
                  else REASON_QUEUE_TIMEOUT)
        return timeout, reason

    async def acquire(self, deadline=None, tenant: str | None = None) -> float:
        """Take a permit, awaiting briefly if the bulkhead is full.

        Returns the (simulated) seconds spent waiting.  Raises
        :class:`~repro.core.admission.AdmissionRejectedError` with the
        same reasons and ``retry_after`` semantics as the sync
        bulkhead.  Cancellation while queued withdraws this waiter
        without leaking queue slots or DRR tickets; no permit is held,
        so there is nothing to release.
        """
        if self._fast_path_open():
            self._admit()
            return 0.0
        if deadline is not None and deadline.remaining() <= 0.0:
            self._count_shed(REASON_DEADLINE, tenant)
            raise AdmissionRejectedError(
                self.service, REASON_DEADLINE,
                retry_after=self.limit.queue_timeout)
        if self._waiting >= self.limit.max_queue:
            self._count_shed(REASON_QUEUE_FULL, tenant)
            raise AdmissionRejectedError(
                self.service, REASON_QUEUE_FULL,
                retry_after=self.limit.queue_timeout)
        self._waiting += 1
        self.stats.queued += 1
        if self._gauge_queue is not None:
            self._gauge_queue.set(self._waiting, service=self.service)
        try:
            timeout, reason = self._queue_window(deadline)
            time_scale = getattr(self.clock, "time_scale", None)
            started = self.clock.now()
            if time_scale is None:
                # Virtual clock: charge the whole window, then re-probe —
                # the sync bulkhead's deterministic worst-case model.
                await acharge(self.clock, timeout)
                if self._inflight >= self.limit.max_concurrent:
                    return self._timed_out(started, reason, tenant)
                self._admit()
                waited = timeout
            elif self._fair is not None:
                waited = await self._wait_fair(started, timeout, reason,
                                               tenant, time_scale)
            else:
                waited = await self._wait_fifo(started, timeout, reason,
                                               tenant, time_scale)
        finally:
            self._waiting -= 1
            if self._gauge_queue is not None:
                self._gauge_queue.set(self._waiting, service=self.service)
        self.stats.total_queue_wait += waited
        if self._metric_wait is not None:
            self._metric_wait.inc(waited, service=self.service)
        return waited

    async def _wait_fifo(self, started: float, timeout: float, reason: str,
                         tenant: str | None, time_scale: float) -> float:
        """Park on a wake-up future until a permit frees (FIFO order)."""
        wait_until = started + timeout
        while self._inflight >= self.limit.max_concurrent:
            remaining = wait_until - self.clock.now()
            if remaining <= 0:
                return self._timed_out(started, reason, tenant)
            waiter = asyncio.get_running_loop().create_future()
            self._fifo.append(waiter)
            try:
                await asyncio.wait_for(waiter, remaining * time_scale)
            except asyncio.TimeoutError:  # repro: ignore[RA002] — loop re-checks and sheds on lapse
                continue
            finally:
                if waiter in self._fifo:
                    self._fifo.remove(waiter)
        self._admit()
        return self.clock.now() - started

    async def _wait_fair(self, started: float, timeout: float, reason: str,
                         tenant: str | None, time_scale: float) -> float:
        """Wait until the DRR scheduler grants this ticket a permit."""
        ticket = asyncio.get_running_loop().create_future()
        self._fair.push(tenant, ticket)
        self._maybe_grant()
        try:
            await asyncio.wait_for(ticket, timeout * time_scale)
        except asyncio.TimeoutError:
            self._withdraw(ticket, tenant)
            return self._timed_out(started, reason, tenant)
        except BaseException:
            self._withdraw(ticket, tenant)
            raise
        # Granted: the permit was reserved for this ticket (_granted
        # closes the fast path), so admission cannot race.
        self._granted = None
        self._admit()
        self._maybe_grant()
        return self.clock.now() - started

    def _withdraw(self, ticket: asyncio.Future, tenant: str | None) -> None:
        """Remove a fair-mode waiter that is giving up."""
        if self._granted is ticket:
            self._granted = None
            self._maybe_grant()
        else:
            self._fair.remove(tenant, ticket)

    def _timed_out(self, started: float, reason: str,
                   tenant: str | None) -> float:
        waited = self.clock.now() - started
        self.stats.total_queue_wait += waited
        if self._metric_wait is not None:
            self._metric_wait.inc(waited, service=self.service)
        self._count_shed(reason, tenant)
        raise AdmissionRejectedError(self.service, reason,
                                     retry_after=self.limit.queue_timeout)

    def _admit(self) -> None:
        self._inflight += 1
        self.stats.admitted += 1
        self.stats.peak_inflight = max(self.stats.peak_inflight, self._inflight)
        if self._gauge_inflight is not None:
            self._gauge_inflight.set(self._inflight, service=self.service)
        if self._metric_admitted is not None:
            self._metric_admitted.inc(service=self.service)

    def release(self) -> None:
        """Return a permit and wake the next waiter (FIFO or DRR grant)."""
        if self._inflight <= 0:
            raise RuntimeError(
                f"bulkhead for {self.service!r}: release without acquire")
        self._inflight -= 1
        if self._gauge_inflight is not None:
            self._gauge_inflight.set(self._inflight, service=self.service)
        if self._fair is not None:
            self._maybe_grant()
        else:
            while self._fifo:
                waiter = self._fifo.popleft()
                if not waiter.done():
                    waiter.set_result(None)
                    break


class AsyncAdmissionController:
    """Per-service async bulkheads sharing one clock and default sizing.

    Mirrors :class:`~repro.core.admission.AdmissionController`'s
    configuration surface; :meth:`from_sync` clones a sync controller's
    limits so a :class:`~repro.core.aio.invoker.AsyncInvoker` applies
    the same admission policy its parent client does.  Permits are
    **not** shared with the sync controller — each core bounds its own
    in-flight calls — but both report into the same metric names.
    """

    def __init__(self, clock: Clock,
                 default_limit: AdmissionLimit | None = None,
                 limits: Mapping[str, AdmissionLimit] | None = None,
                 fair: bool = False,
                 weight_of: Callable[[str], float] | None = None) -> None:
        """Build the controller (same parameters as the sync one)."""
        self.clock = clock
        self.default_limit = default_limit
        self.fair = fair
        self.weight_of = weight_of
        self._limits = dict(limits or {})
        self._bulkheads: dict[str, AsyncBulkhead] = {}
        self._metrics = None

    @classmethod
    def from_sync(cls, controller: AdmissionController) -> "AsyncAdmissionController":
        """Clone a sync controller's policy (limits, fairness, clock)."""
        return cls(
            clock=controller.clock,
            default_limit=controller.default_limit,
            # Reaching into the sync controller's limit table is the
            # point: the async core must enforce the *same* policy.
            limits=dict(controller._limits),
            fair=controller.fair,
            weight_of=controller.weight_of,
        )

    def bind_metrics(self, registry) -> None:
        """Mirror every bulkhead's accounting into ``registry``."""
        self._metrics = registry
        for bulkhead in self._bulkheads.values():
            bulkhead.bind_metrics(registry)

    def configure(self, service: str, limit: AdmissionLimit) -> AsyncBulkhead:
        """Set one service's bulkhead sizing and return its bulkhead."""
        self._limits[service] = limit
        self._bulkheads.pop(service, None)
        return self.bulkhead_for(service)

    def bulkhead_for(self, service: str) -> AsyncBulkhead | None:
        """The service's bulkhead, or None when it is unlimited."""
        bulkhead = self._bulkheads.get(service)
        if bulkhead is not None:
            return bulkhead
        limit = self._limits.get(service, self.default_limit)
        if limit is None:
            return None
        bulkhead = AsyncBulkhead(self.clock, service, limit,
                                 fair=self.fair, weight_of=self.weight_of)
        if self._metrics is not None:
            bulkhead.bind_metrics(self._metrics)
        self._bulkheads[service] = bulkhead
        return bulkhead

    def shed_total(self) -> int:
        """Requests shed across every bulkhead so far."""
        return sum(bulkhead.stats.shed
                   for bulkhead in self._bulkheads.values())
