"""Single-flight request coalescing on asyncio futures.

The event-loop analogue of
:class:`~repro.core.batching.RequestCoalescer`: concurrent identical
requests share one upstream call.  The leader task performs the real
work; follower tasks await the shared flight **behind a shield**, so
cancelling one follower detaches only that follower — the flight (and
the leader's upstream call) survives for everyone else.  Cancelling
the *leader* fails the flight with its cancellation, waking followers
with the same error rather than stranding them.

Accounting reuses :class:`~repro.core.batching.CoalesceStats` and the
same metric names, so dashboards see one coalescing picture regardless
of which core served the traffic.
"""

from __future__ import annotations

import asyncio

from repro.core.batching import CoalesceStats
from repro.obs import names


class AsyncFlight:
    """One in-flight upstream call shared by any number of awaiters.

    The leader settles the flight exactly once with :meth:`complete`
    or :meth:`fail`; followers :meth:`result` it.  Single-threaded by
    construction (everything happens on one loop), so no locking.
    """

    def __init__(self, key: str) -> None:
        """Create an unsettled flight for ``key`` on the running loop."""
        self.key = key
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()

    def complete(self, value) -> bool:
        """Settle successfully; False when already settled."""
        if self.future.done():
            return False
        self.future.set_result(value)
        return True

    def fail(self, error: BaseException) -> bool:
        """Settle with an error; False when already settled."""
        if self.future.done():
            return False
        self.future.set_exception(error)
        return True

    async def result(self, timeout: float | None = None):
        """Await the shared outcome (shielded).

        Cancelling the awaiting task detaches only this awaiter; a
        ``timeout`` (wall seconds) bounds the wait with
        ``asyncio.TimeoutError`` without disturbing the flight.
        """
        if timeout is None:
            return await asyncio.shield(self.future)
        return await asyncio.wait_for(asyncio.shield(self.future), timeout)


class AsyncCoalescer:
    """Single-flight table keyed by the full request (loop-local).

    Mirrors :class:`~repro.core.batching.RequestCoalescer`'s contract:
    ``lead_or_join`` installs or joins a flight, the leader must settle
    via :meth:`complete`/:meth:`fail`, and the table entry is removed
    on settlement so later identical requests start fresh.
    """

    def __init__(self) -> None:
        """Create an empty flight table with fresh stats."""
        self.stats = CoalesceStats()
        self._flights: dict[str, AsyncFlight] = {}
        self._metric_flights = None
        self._metric_hits = None
        self._metric_cancelled = None

    def bind_metrics(self, registry) -> None:
        """Mirror accounting into the same counters the sync core uses."""
        self._metric_flights = registry.counter(
            names.COALESCE_FLIGHTS_TOTAL,
            "Upstream flights led by the request coalescer.").bind()
        self._metric_hits = registry.counter(
            names.COALESCE_HITS_TOTAL,
            "Duplicate in-flight requests folded into a shared flight.").bind()
        self._metric_cancelled = registry.counter(
            names.COALESCE_CANCELLED_TOTAL,
            "Coalesced flights cancelled because every waiter left.").bind()

    def __len__(self) -> int:
        """Flights currently in the table."""
        return len(self._flights)

    def lead_or_join(self, key: str) -> tuple[bool, AsyncFlight]:
        """Install a new flight for ``key`` or join the in-flight one.

        Returns ``(is_leader, flight)``.  Must be called from the loop.
        """
        flight = self._flights.get(key)
        if flight is not None:
            self.stats.coalesced += 1
            if self._metric_hits is not None:
                self._metric_hits.inc()
            return False, flight
        flight = AsyncFlight(key)
        self._flights[key] = flight
        self.stats.flights += 1
        if self._metric_flights is not None:
            self._metric_flights.inc()
        return True, flight

    def complete(self, flight: AsyncFlight, value) -> None:
        """Leader callback: publish the result to every awaiter."""
        self._discard(flight)
        flight.complete(value)

    def fail(self, flight: AsyncFlight, error: BaseException) -> None:
        """Leader callback: share the upstream error with every awaiter.

        Counted as a cancellation when the error is the leader's own
        ``asyncio.CancelledError`` — the flight died waiterless.
        """
        self._discard(flight)
        if flight.fail(error) and isinstance(error, asyncio.CancelledError):
            self.stats.cancelled += 1
            if self._metric_cancelled is not None:
                self._metric_cancelled.inc()

    def count_folded(self, amount: int = 1) -> None:
        """Account duplicates folded outside the flight table.

        ``ainvoke_many`` deduplicates identical payloads within a
        burst; those shares land on the same coalesce-hits counter.
        """
        if amount > 0:
            self.stats.coalesced += amount
            if self._metric_hits is not None:
                self._metric_hits.inc(amount)

    def _discard(self, flight: AsyncFlight) -> None:
        if self._flights.get(flight.key) is flight:
            del self._flights[flight.key]
