"""Micro-batching on asyncio futures — bounded windows, no threads.

The event-loop mirror of :class:`~repro.core.batching.MicroBatcher`:
:meth:`AsyncMicroBatcher.submit` enqueues a request into a per-
(service, operation) window and returns an ``asyncio.Future`` for its
individual result.  A window flushes when it reaches the batch-size
limit or on the first submit/tick after ``max_wait`` simulated
seconds — the same deterministic, clock-driven design as the sync
batcher (no background task), with the flush awaited through
:meth:`~repro.core.aio.invoker.AsyncInvoker.ainvoke_batched`.

Reuses :class:`~repro.core.batching.BatchStats` so both batchers
report identically.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.core.batching import BatchStats
from repro.util.deadline import Deadline


@dataclass
class _AsyncWindow:
    """One (service, operation) batch window awaiting flush."""

    service: str
    operation: str
    #: Absolute flush deadline (opened_at + max_wait), computed once.
    deadline: float
    items: list[tuple[dict, asyncio.Future]] = field(default_factory=list)
    #: Tightest end-to-end caller deadline riding in this window.
    call_deadline: Deadline | None = None


class AsyncMicroBatcher:
    """Bounded-window batcher over an :class:`AsyncInvoker`.

    Single-loop by construction: no locks.  Cancelling a rider's
    future before the flush detaches that rider only (its payload
    still ships with the window — the wire call is shared); a
    whole-batch failure fails every still-attached rider's future.
    """

    def __init__(self, invoker, max_batch_size: int | None = None,
                 max_wait: float = 0.05) -> None:
        """Build the batcher (same knobs as the sync one)."""
        if max_batch_size is not None and max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self.invoker = invoker
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        self.stats = BatchStats()
        self._windows: dict[tuple[str, str], _AsyncWindow] = {}

    def _limit_for(self, service_name: str) -> int:
        service = self.invoker.registry.get(service_name)
        declared = service.batch_max_size
        if declared is None:
            raise ValueError(
                f"service {service_name!r} does not declare batch support")
        if self.max_batch_size is None:
            return declared
        return min(declared, self.max_batch_size)

    async def submit(self, service_name: str, operation: str,
                     payload: dict | None = None,
                     use_cache: bool = True,
                     deadline: Deadline | None = None) -> asyncio.Future:
        """Queue one request; returns the future for its own result.

        Cache hits resolve immediately without entering a window.  A
        full (or expired) window flushes — awaited — before this
        coroutine returns; the returned future may therefore already
        be settled.  Cancellation during the flush cancels the whole
        batch call (every rider fails with the cancellation).
        """
        payload = dict(payload or {})
        limit = self._limit_for(service_name)
        loop = asyncio.get_running_loop()
        cached = self.invoker.client.cached_result(
            service_name, operation, payload, use_cache=use_cache)
        if cached is not None:
            future = loop.create_future()
            future.set_result(cached)
            return future
        future = loop.create_future()
        now = self.invoker.clock.now()
        window = self._windows.get((service_name, operation))
        if window is None:
            window = _AsyncWindow(service_name, operation,
                                  deadline=now + self.max_wait)
            self._windows[(service_name, operation)] = window
        window.items.append((payload, future))
        if deadline is not None and (
                window.call_deadline is None
                or deadline.expires_at < window.call_deadline.expires_at):
            window.call_deadline = deadline
        self.stats.submitted += 1
        flush_window = None
        if len(window.items) >= limit:
            flush_window = self._take(window)
            self.stats.size_flushes += 1
        elif now >= window.deadline:
            flush_window = self._take(window)
            self.stats.deadline_flushes += 1
        if flush_window is not None:
            await self._flush_window(flush_window, use_cache=use_cache)
        return future

    async def flush_due(self) -> int:
        """Flush every window older than ``max_wait``; returns items sent."""
        now = self.invoker.clock.now()
        due: list[_AsyncWindow] = []
        for window in list(self._windows.values()):
            if now >= window.deadline:
                due.append(self._take(window))
                self.stats.deadline_flushes += 1
        sent = 0
        for window in due:
            sent += await self._flush_window(window)
        return sent

    async def flush_all(self) -> int:
        """Flush every open window regardless of age; returns items sent."""
        taken = [self._take(window)
                 for window in list(self._windows.values())]
        if not taken:
            self.stats.empty_flushes += 1
            return 0
        sent = 0
        for window in taken:
            sent += await self._flush_window(window)
        return sent

    def pending(self) -> int:
        """Items currently queued across all open windows."""
        return sum(len(window.items) for window in self._windows.values())

    def _take(self, window: _AsyncWindow) -> _AsyncWindow:
        del self._windows[(window.service, window.operation)]
        return window

    async def _flush_window(self, window: _AsyncWindow,
                            use_cache: bool = True) -> int:
        """Send one detached window as a single awaited batch call."""
        if not window.items:
            self.stats.empty_flushes += 1
            return 0
        payloads = [payload for payload, _ in window.items]
        try:
            outcomes = await self.invoker.ainvoke_batched(
                window.service, window.operation, payloads,
                use_cache=use_cache, deadline=window.call_deadline)
        except BaseException as error:
            # A whole-batch failure (offline, timeout, spent deadline,
            # cancellation) fails every rider's future rather than
            # raising only into the caller that triggered the flush.
            for _, future in window.items:
                if not future.done():
                    future.set_exception(error)
            self._account_flush(window)
            if isinstance(error, asyncio.CancelledError):
                raise
            return len(window.items)
        self._account_flush(window)
        for (_, future), outcome in zip(window.items, outcomes):
            if future.done():
                continue  # rider cancelled while the batch was in flight
            if isinstance(outcome, BaseException):
                future.set_exception(outcome)
            else:
                future.set_result(outcome)
        return len(window.items)

    def _account_flush(self, window: _AsyncWindow) -> None:
        self.stats.flushes += 1
        self.stats.items_flushed += len(window.items)
        self.stats.max_batch = max(self.stats.max_batch, len(window.items))
