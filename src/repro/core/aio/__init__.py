"""The asyncio-native invocation core (event-loop hot path).

The thread-per-in-flight-call :class:`~repro.core.futures.ListenableFuture`
core caps concurrency at thread-pool scale.  This package rebuilds the
invocation hot path on one event loop:

* :class:`AsyncInvoker` — ``await``-able mirror of
  :class:`~repro.core.invoker.RichClient` (``ainvoke`` /
  ``ainvoke_batched`` / ``ainvoke_many`` / ``ainvoke_all`` /
  ``ainvoke_with_failover`` / ``ainvoke_redundant``), sharing the
  client's monitor, cache, quota, tenancy and observability so both
  cores report into the same metric names and span names;
* :class:`LoopRunner` — the sync facade's shim: a dedicated event-loop
  thread that runs coroutines on behalf of blocking callers, copying
  the caller's contextvars (tenant scope, trace span) onto the task;
* :class:`AsyncBulkhead` / :class:`AsyncAdmissionController` —
  admission queues and DRR fair scheduling as awaitables;
* :class:`AsyncCoalescer` — single-flight coalescing on asyncio
  futures (followers await a shielded shared flight);
* :class:`AsyncHedgedInvoker` — hedges as cancellable tasks (the
  losing leg is cancelled, not abandoned);
* :class:`AsyncMicroBatcher` — bounded batch windows on asyncio
  futures, no background thread;
* :func:`ainvoke_with_retry` / :class:`AsyncFailoverInvoker` — the
  retry/failover walk with backoffs awaited instead of slept.

Concurrency and cancellation rules are documented per-coroutine and in
``docs/async-guide.md``.
"""

from repro.core.aio.admission import AsyncAdmissionController, AsyncBulkhead
from repro.core.aio.batching import AsyncMicroBatcher
from repro.core.aio.bridge import listenable_to_asyncio, task_to_listenable
from repro.core.aio.coalesce import AsyncCoalescer, AsyncFlight
from repro.core.aio.hedging import AsyncHedgedInvoker
from repro.core.aio.invoker import AsyncInvoker
from repro.core.aio.retry import AsyncFailoverInvoker, ainvoke_with_retry
from repro.core.aio.runner import LoopRunner

__all__ = [
    "AsyncAdmissionController",
    "AsyncBulkhead",
    "AsyncCoalescer",
    "AsyncFailoverInvoker",
    "AsyncFlight",
    "AsyncHedgedInvoker",
    "AsyncInvoker",
    "AsyncMicroBatcher",
    "LoopRunner",
    "ainvoke_with_retry",
    "listenable_to_asyncio",
    "task_to_listenable",
]
