"""Latency distributions for simulated services and transports.

The paper's SDK records latency as a function of user-supplied *latency
parameters* (e.g. the size of an argument) and predicts future latency
from that history.  To make that machinery testable we need services
whose latency genuinely depends on such parameters:
:class:`SizeDependentLatency` implements the paper's running example of
a storage service whose time to store an object of size ``a`` grows
with ``a``, with configurable slope so that service *s1* can win for
small objects while *s2* wins for large ones.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping

from repro.util.rng import SeededRng

Params = Mapping[str, float]


class LatencyDistribution(ABC):
    """Maps a request's latency parameters to a sampled latency in seconds."""

    @abstractmethod
    def sample(self, rng: SeededRng, params: Params) -> float:
        """Draw one latency for a request with the given parameters."""

    def mean(self, params: Params) -> float:
        """Analytic mean latency for the given parameters, if known.

        Used by tests and benchmark harnesses to compare measured
        behaviour against ground truth; subclasses should override when
        a closed form exists.
        """
        raise NotImplementedError


class ConstantLatency(LatencyDistribution):
    """Always the same latency; the degenerate but very testable case."""

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"latency must be non-negative, got {seconds}")
        self.seconds = seconds

    def sample(self, rng: SeededRng, params: Params) -> float:
        return self.seconds

    def mean(self, params: Params) -> float:
        return self.seconds


class UniformLatency(LatencyDistribution):
    """Uniform latency in ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: SeededRng, params: Params) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self, params: Params) -> float:
        return (self.low + self.high) / 2


class LogNormalLatency(LatencyDistribution):
    """Lognormal latency around a median — the canonical WAN shape.

    ``median`` is the 50th percentile in seconds; ``sigma`` controls the
    heaviness of the tail.
    """

    def __init__(self, median: float, sigma: float = 0.25) -> None:
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.median = median
        self.sigma = sigma
        import math

        self._mu = math.log(median)

    def sample(self, rng: SeededRng, params: Params) -> float:
        return rng.lognormal(self._mu, self.sigma)

    def mean(self, params: Params) -> float:
        import math

        return math.exp(self._mu + self.sigma**2 / 2)


class SizeDependentLatency(LatencyDistribution):
    """Latency that is affine in one latency parameter, plus noise.

    ``latency = base + slope * params[param]``, multiplied by a lognormal
    noise factor with median 1.  This realizes the paper's example where
    the time to store an object of size ``a`` increases with ``a`` and
    different services have different base/slope trade-offs.
    """

    def __init__(
        self,
        base: float,
        slope: float,
        param: str = "size",
        noise_sigma: float = 0.05,
    ) -> None:
        if base < 0 or slope < 0:
            raise ValueError(f"base and slope must be non-negative, got {base}, {slope}")
        self.base = base
        self.slope = slope
        self.param = param
        self.noise_sigma = noise_sigma

    def deterministic(self, params: Params) -> float:
        """The noise-free latency for the given parameters."""
        return self.base + self.slope * float(params.get(self.param, 0.0))

    def sample(self, rng: SeededRng, params: Params) -> float:
        noise = rng.lognormal(0.0, self.noise_sigma) if self.noise_sigma > 0 else 1.0
        return self.deterministic(params) * noise

    def mean(self, params: Params) -> float:
        import math

        return self.deterministic(params) * math.exp(self.noise_sigma**2 / 2)

    def crossover_with(self, other: "SizeDependentLatency") -> float | None:
        """Parameter value at which this service's mean latency equals ``other``'s.

        Returns ``None`` when the two affine curves are parallel (no
        crossover) or identical.  Benchmark F2.latparam checks that the
        SDK's regression predictor recovers this analytic crossover.
        """
        if self.slope == other.slope:
            return None
        crossing = (other.base - self.base) / (self.slope - other.slope)
        return crossing if crossing >= 0 else None


class CompositeLatency(LatencyDistribution):
    """Sum of several distributions (e.g. network RTT + compute time)."""

    def __init__(self, *components: LatencyDistribution) -> None:
        if not components:
            raise ValueError("CompositeLatency needs at least one component")
        self.components = components

    def sample(self, rng: SeededRng, params: Params) -> float:
        return sum(component.sample(rng, params) for component in self.components)

    def mean(self, params: Params) -> float:
        return sum(component.mean(params) for component in self.components)
