"""Connectivity model: is the client online right now?

Section 3 of the paper stresses that the personalized knowledge base
must keep working while disconnected and resynchronize later.  The
transport consults a :class:`ConnectivityModel` before every call;
:class:`ScriptedConnectivity` lets tests and benchmarks script exact
offline windows on the simulation clock.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right


class ConnectivityModel(ABC):
    """Decides whether the network is reachable at a given time."""

    @abstractmethod
    def is_online(self, now: float) -> bool:
        """True when calls issued at time ``now`` can reach the network."""


class AlwaysOnline(ConnectivityModel):
    """The trivial model: the network never goes away."""

    def is_online(self, now: float) -> bool:
        return True


class ScriptedConnectivity(ConnectivityModel):
    """Connectivity that toggles at scripted times.

    ``transitions`` is a sorted list of times at which the state flips,
    starting from ``initially_online``.  For example
    ``ScriptedConnectivity([10, 20])`` is online during ``[0, 10)``,
    offline during ``[10, 20)``, and online again from ``20`` on.
    """

    def __init__(self, transitions: list[float], initially_online: bool = True) -> None:
        if sorted(transitions) != list(transitions):
            raise ValueError(f"transitions must be sorted, got {transitions}")
        self.transitions = list(transitions)
        self.initially_online = initially_online

    @classmethod
    def from_windows(cls, offline_windows: list[tuple[float, float]]
                     ) -> "ScriptedConnectivity":
        """Build from explicit ``(start, end)`` offline windows.

        Windows may overlap or touch; they are merged before being
        flattened into transitions.  This is the injection point the
        chaos harness uses to compile :class:`~repro.chaos.plan.Partition`
        and :class:`~repro.chaos.plan.FlappingLink` specs into a model.
        """
        merged: list[list[float]] = []
        for start, end in sorted(offline_windows):
            if end < start:
                raise ValueError(
                    f"window end must be >= start, got ({start}, {end})")
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        transitions: list[float] = []
        for start, end in merged:
            transitions.extend((start, end))
        return cls(transitions)

    def is_online(self, now: float) -> bool:
        flips = bisect_right(self.transitions, now)
        online = self.initially_online
        if flips % 2:
            online = not online
        return online

    def next_transition_after(self, now: float) -> float | None:
        """Time of the next state change strictly after ``now``, if any."""
        index = bisect_right(self.transitions, now)
        if index < len(self.transitions):
            return self.transitions[index]
        return None


class ComposedConnectivity(ConnectivityModel):
    """Online only when *every* composed model is online.

    Lets a chaos scenario overlay scripted outages on top of whatever
    model the world was built with, without replacing it.
    """

    def __init__(self, *models: ConnectivityModel) -> None:
        if not models:
            raise ValueError("at least one model is required")
        self.models = list(models)

    def is_online(self, now: float) -> bool:
        return all(model.is_online(now) for model in self.models)


class ManualConnectivity(ConnectivityModel):
    """Connectivity toggled imperatively — convenient in interactive tests."""

    def __init__(self, online: bool = True) -> None:
        self._online = online

    def is_online(self, now: float) -> bool:
        return self._online

    def go_offline(self) -> None:
        self._online = False

    def go_online(self) -> None:
        self._online = True
