"""Connectivity model: is the client online right now?

Section 3 of the paper stresses that the personalized knowledge base
must keep working while disconnected and resynchronize later.  The
transport consults a :class:`ConnectivityModel` before every call;
:class:`ScriptedConnectivity` lets tests and benchmarks script exact
offline windows on the simulation clock.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right


class ConnectivityModel(ABC):
    """Decides whether the network is reachable at a given time."""

    @abstractmethod
    def is_online(self, now: float) -> bool:
        """True when calls issued at time ``now`` can reach the network."""


class AlwaysOnline(ConnectivityModel):
    """The trivial model: the network never goes away."""

    def is_online(self, now: float) -> bool:
        return True


class ScriptedConnectivity(ConnectivityModel):
    """Connectivity that toggles at scripted times.

    ``transitions`` is a sorted list of times at which the state flips,
    starting from ``initially_online``.  For example
    ``ScriptedConnectivity([10, 20])`` is online during ``[0, 10)``,
    offline during ``[10, 20)``, and online again from ``20`` on.
    """

    def __init__(self, transitions: list[float], initially_online: bool = True) -> None:
        if sorted(transitions) != list(transitions):
            raise ValueError(f"transitions must be sorted, got {transitions}")
        self.transitions = list(transitions)
        self.initially_online = initially_online

    def is_online(self, now: float) -> bool:
        flips = bisect_right(self.transitions, now)
        online = self.initially_online
        if flips % 2:
            online = not online
        return online

    def next_transition_after(self, now: float) -> float | None:
        """Time of the next state change strictly after ``now``, if any."""
        index = bisect_right(self.transitions, now)
        if index < len(self.transitions):
            return self.transitions[index]
        return None


class ManualConnectivity(ConnectivityModel):
    """Connectivity toggled imperatively — convenient in interactive tests."""

    def __init__(self, online: bool = True) -> None:
        self._online = online

    def is_online(self, now: float) -> bool:
        return self._online

    def go_offline(self) -> None:
        self._online = False

    def go_online(self) -> None:
        self._online = True
